//! Umbrella crate for the CAP'NN reproduction (DAC 2020).
//!
//! Re-exports the workspace's crates under one roof so examples, integration
//! tests and downstream users can depend on a single package:
//!
//! * [`core`] — the paper's contribution: CAP'NN-B/W/M pruning, user
//!   profiles, the ε-bounded threshold search and the cloud/device split;
//! * [`nn`] — the trained-CNN substrate (layers, training, prune masks,
//!   model-size accounting);
//! * [`data`] — synthetic class-family datasets and usage distributions;
//! * [`profile`] — firing-rate profiling, confusion matrices, quantization;
//! * [`baselines`] — class-unaware pruning and a CAPTOR-style comparator;
//! * [`accel`] — the TPU-like analytical energy/latency model;
//! * [`telemetry`] — serving metrics: counters, histograms, snapshots;
//! * [`tensor`] — the dense `f32` tensor math underneath it all.
//!
//! # Examples
//!
//! ```
//! use capnn_repro::core::{PruningConfig, UserProfile};
//!
//! let profile = UserProfile::new(vec![3, 7], vec![0.9, 0.1])?;
//! assert_eq!(profile.k(), 2);
//! assert!(PruningConfig::paper().validate().is_ok());
//! # Ok::<(), capnn_repro::core::CapnnError>(())
//! ```
//!
//! See `examples/quickstart.rs` for the full offline-profile → personalize →
//! deploy flow.

pub use capnn_accel as accel;
pub use capnn_baselines as baselines;
pub use capnn_core as core;
pub use capnn_data as data;
pub use capnn_nn as nn;
pub use capnn_profile as profile;
pub use capnn_telemetry as telemetry;
pub use capnn_tensor as tensor;
