#!/usr/bin/env bash
# CI gate: formatting, lints, build and the tier-1 test suite.
#
# Usage: scripts/check.sh
# Any failure aborts with a nonzero exit code.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> all checks passed"
