#!/usr/bin/env bash
# CI gate: formatting, lints, build and the tier-1 test suite.
#
# Usage: scripts/check.sh
# Any failure aborts with a nonzero exit code.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> perf bins smoke (CAPNN_BENCH_SMOKE=1: tiny iterations, no results/ write)"
# perf_speedup gates on int8-plan top-1 argmax agreement vs the f32 plan
# >= 99% over the 128-sample eval set (the accuracy-delta gate). With
# --sweep it also walks the hybrid N:M tier across the 0/10/25/50/75%
# prune grid and gates on the 25% point: the gated 2:4 hybrid plan must
# be >= 1.0x the dense plan from the same mask, with per-point top-1
# agreement >= 99% vs the dense f32 plan.
# perf_serving additionally gates on vgg_tiny batch-32 speedup_vs_batch1
# >= 1.8x on multi-core hosts (the panel-packed conv engine's regression
# guard) and on serving_mlp batch-32 int8 speedup vs f32 >= 1.3x on AVX2
# hosts; runners missing the cores/AVX2 skip those checks with a logged
# notice.
CAPNN_BENCH_SMOKE=1 cargo run --release -p capnn-bench --bin perf_speedup -- --sweep
CAPNN_BENCH_SMOKE=1 cargo run --release -p capnn-bench --bin perf_serving
# perf_cache replays a 10^5-distinct-profile Zipfian stream through the
# fleet plan cache and gates on the working-budget row: hit rate >= 90%,
# resident bytes <= budget, and cache-served plans argmax-bit-compatible
# with fresh per-profile compiles.
CAPNN_BENCH_SMOKE=1 cargo run --release -p capnn-bench --bin perf_cache
# perf_server drives the multi-tenant serving front-end with ~1k Zipfian
# requests and gates on: zero failed requests (no panics anywhere in the
# queue/worker path), p99 latency ceiling, plan-cache hit rate >= 90%,
# and served outputs argmax-bit-compatible with direct engine execution.
CAPNN_BENCH_SMOKE=1 cargo run --release -p capnn-bench --bin perf_server
# perf_drift shifts every user's traffic mid-stream and gates on the
# drift-to-swap pipeline: at least one hot-swap, no failed swaps or
# responses, served top-1 accuracy recovery after the shift, phase-B p99 within
# 3x of phase A (swaps stay off the request path), and a bitwise
# staleness probe. Writes results/BENCH_drift.json in smoke mode too.
CAPNN_BENCH_SMOKE=1 cargo run --release -p capnn-bench --bin perf_drift

echo "==> telemetry smoke (CAPNN_TELEMETRY=1: probes on, snapshot to stderr only)"
# perf_speedup asserts the conv probes (plan.conv_pack_ns histogram +
# per-conv-step *_conv_gflops gauges) land in the snapshot, plus the
# hybrid-tier probes (plan.nm_pack_ns, plan.nm_density, *_nm_gflops and
# — under --sweep — *_nm_int8_gops).
CAPNN_BENCH_SMOKE=1 CAPNN_TELEMETRY=1 cargo run --release -p capnn-bench --bin perf_speedup -- --sweep
CAPNN_BENCH_SMOKE=1 CAPNN_TELEMETRY=1 cargo run --release -p capnn-bench --bin perf_serving

echo "==> all checks passed"
