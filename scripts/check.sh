#!/usr/bin/env bash
# CI gate: formatting, lints, build and the tier-1 test suite.
#
# Usage: scripts/check.sh
# Any failure aborts with a nonzero exit code.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> perf bins smoke (CAPNN_BENCH_SMOKE=1: tiny iterations, no results/ write)"
# perf_serving additionally gates on vgg_tiny batch-32 speedup_vs_batch1
# >= 1.8x on multi-core hosts (the panel-packed conv engine's regression
# guard); 1-core runners skip that check with a logged notice.
CAPNN_BENCH_SMOKE=1 cargo run --release -p capnn-bench --bin perf_speedup
CAPNN_BENCH_SMOKE=1 cargo run --release -p capnn-bench --bin perf_serving

echo "==> telemetry smoke (CAPNN_TELEMETRY=1: probes on, snapshot to stderr only)"
# perf_speedup asserts the conv probes (plan.conv_pack_ns histogram +
# per-conv-step *_conv_gflops gauges) land in the snapshot.
CAPNN_BENCH_SMOKE=1 CAPNN_TELEMETRY=1 cargo run --release -p capnn-bench --bin perf_speedup
CAPNN_BENCH_SMOKE=1 CAPNN_TELEMETRY=1 cargo run --release -p capnn-bench --bin perf_serving

echo "==> all checks passed"
