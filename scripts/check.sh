#!/usr/bin/env bash
# CI gate: formatting, lints, build and the tier-1 test suite.
#
# Usage: scripts/check.sh
# Any failure aborts with a nonzero exit code.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> perf bins smoke (CAPNN_BENCH_SMOKE=1: tiny iterations, no results/ write)"
CAPNN_BENCH_SMOKE=1 cargo run --release -p capnn-bench --bin perf_speedup
CAPNN_BENCH_SMOKE=1 cargo run --release -p capnn-bench --bin perf_serving

echo "==> telemetry smoke (CAPNN_TELEMETRY=1: probes on, snapshot to stderr only)"
CAPNN_BENCH_SMOKE=1 CAPNN_TELEMETRY=1 cargo run --release -p capnn-bench --bin perf_serving

echo "==> all checks passed"
