#!/usr/bin/env bash
# Regenerates every table and figure of the paper plus all ablations.
# Usage: scripts/run_all_experiments.sh [small|full]
set -euo pipefail
export CAPNN_SCALE="${1:-small}"
cd "$(dirname "$0")/.."

bins=(
  fig4_model_size
  fig5_accuracy
  fig6_tradeoff
  table1_energy
  table2_stacking
  table3_captor
  memory_overhead
  ablation_threshold
  ablation_layers
  ablation_quant
  ablation_topc
  ablation_profile_samples
  ablation_dataflow
  ablation_metric
  analysis_selectivity
)
mkdir -p results
for bin in "${bins[@]}"; do
  echo "=== $bin (CAPNN_SCALE=$CAPNN_SCALE) ==="
  cargo run --release -p capnn-bench --bin "$bin" 2>"results/$bin.log" | tee "results/$bin.txt"
done
echo "all experiment outputs in results/"
