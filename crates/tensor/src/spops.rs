//! N:M semi-structured sparse GEMM: magnitude-based weight selection,
//! compressed panel packing and the matching f32/int8 microkernels.
//!
//! CAP'NN's channel pruning is *structured*: whole rows/columns drop out,
//! which is what lets compiled plans run dense GEMM on smaller matrices.
//! But at low prune ratios the kept matrices are nearly full-size and the
//! plan's advantage over plain dense execution shrinks. This module adds
//! the CRISP-style second tier: inside every *kept* row, keep only the
//! `N` largest-magnitude weights of each aligned group of `M` along the
//! reduction dimension (2:4 and 4:8 are the intended shapes). The kept
//! weights compress into contiguous value+index panels, and the kernels
//! skip the dropped multiplies entirely — an `N/M` MAC ratio at *any*
//! channel-prune level, which is exactly what recovers speedup in the
//! low-structured-prune regime.
//!
//! Two compressed families, mirroring the dense kernels in
//! [`crate::ops`]/[`crate::qops`]:
//!
//! * **conv**: per-output-channel patterns over the im2col reduction rows.
//!   Values `[oc][nnz]`, row indices `[oc][nnz]` ascending; every nonzero
//!   touches a *contiguous* im2col row segment, so the kernels are
//!   column-vectorized with no gathers. The int8 twin feeds `vpmaddwd` by
//!   interleaving two gathered rows on the fly (the same byte-unpack
//!   idiom as the dense int8 conv kernel).
//! * **dense**: one pattern shared by each `DENSE_JT`-column output panel
//!   (group ranking by the panel's combined column magnitude), so a kept
//!   input index loads one activation broadcast for all 8 columns —
//!   again, no per-column gathers. Values `[t][kk][DENSE_JT]`, indices
//!   `[t][kk]` ascending.
//!
//! Every optimized kernel dispatches at runtime to an AVX2 build and is
//! **bitwise identical** to its scalar reference: the f32 paths perform
//! the same mul/add sequence per output element (bias first, then kept
//! indices ascending — Rust never contracts to FMA), and the int8 paths
//! accumulate in exact `i32` where order cannot matter. Unlike the dense
//! f32 kernels there is no zero-skipping anywhere, so equality is `==`
//! on raw bits, not just value-identical-modulo-zero-signs.

use crate::ops::{min_rows_per_thread, CONV_NR, DENSE_JT, DENSE_SB};
use crate::parallel;
#[cfg(target_arch = "x86_64")]
use crate::qops::pack_i8_pair;
use crate::qops::{conv_i8_epilogue, dense_i8_epilogue, i8_inv_scale, i8_scale, quantize_i8};

/// Kept weights per reduction line of length `k` under an `n`:`m` pattern:
/// every full group of `m` keeps `n`, the tail group keeps all of itself
/// up to `n`. Uniform across lines, which keeps the compressed buffers
/// rectangular.
///
/// # Panics
///
/// Panics unless `0 < n < m`.
pub fn nm_nnz(k: usize, n: usize, m: usize) -> usize {
    assert!(n > 0 && n < m, "N:M pattern requires 0 < N < M");
    (k / m) * n + (k % m).min(n)
}

/// Ranks one group's weights by `score` and appends the kept indices
/// (top-`n` by descending score, ties broken toward the lower index) to
/// `kept`, re-sorted ascending.
fn keep_group(scores: &[(f32, usize)], n: usize, kept: &mut Vec<usize>) {
    let mut ranked: Vec<(f32, usize)> = scores.to_vec();
    ranked.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    let start = kept.len();
    kept.extend(ranked.iter().take(n).map(|&(_, i)| i));
    kept[start..].sort_unstable();
}

/// Magnitude-based N:M selection over a conv weight matrix `w` (row-major
/// `[out_c × krows]`, the [`pack_conv_panels`](crate::pack_conv_panels)
/// input layout): per output channel, each aligned group of `m` reduction
/// rows keeps its `n` largest-magnitude weights. Returns the compressed
/// `(values, indices)` pair — `values[oc·nnz + t]` with its reduction row
/// in `indices[oc·nnz + t]`, ascending per channel — where
/// `nnz ==` [`nm_nnz`]`(krows, n, m)`.
///
/// # Panics
///
/// Panics if `w.len() != out_c * krows` or the pattern is invalid.
pub fn select_nm_conv(
    w: &[f32],
    out_c: usize,
    krows: usize,
    n: usize,
    m: usize,
) -> (Vec<f32>, Vec<u32>) {
    assert_eq!(w.len(), out_c * krows, "conv weight buffer shape");
    let nnz = nm_nnz(krows.max(1), n, m).min(krows);
    let mut values = Vec::with_capacity(out_c * nnz);
    let mut indices = Vec::with_capacity(out_c * nnz);
    let mut kept = Vec::with_capacity(nnz);
    let mut scores = Vec::with_capacity(m);
    for row in w.chunks_exact(krows.max(1)) {
        kept.clear();
        let mut g0 = 0;
        while g0 < krows {
            let gn = (krows - g0).min(m);
            scores.clear();
            scores.extend((g0..g0 + gn).map(|r| (row[r].abs(), r)));
            keep_group(&scores, n, &mut kept);
            g0 += gn;
        }
        debug_assert_eq!(kept.len(), nnz);
        values.extend(kept.iter().map(|&r| row[r]));
        indices.extend(kept.iter().map(|&r| r as u32));
    }
    (values, indices)
}

/// Magnitude-based N:M selection over a transposed dense weight matrix
/// `wt` (input-major `[n_in × n_out]`, the
/// [`pack_dense_panels`](crate::pack_dense_panels) input layout). The
/// pattern is shared by each `DENSE_JT`-column output panel — groups are
/// ranked by the summed magnitude across the panel's live columns — so
/// the kernels broadcast one activation per kept index for the whole
/// panel. Returns `(values, indices)`: values `[t][kk][DENSE_JT]` (the
/// last panel's dead columns zero-padded), indices `[t][kk]` ascending,
/// with `nnz ==` [`nm_nnz`]`(n_in, n, m)` kept inputs per panel.
///
/// # Panics
///
/// Panics if `wt.len() != n_in * n_out` or the pattern is invalid.
pub fn select_nm_dense(
    wt: &[f32],
    n_in: usize,
    n_out: usize,
    n: usize,
    m: usize,
) -> (Vec<f32>, Vec<u32>) {
    assert_eq!(wt.len(), n_in * n_out, "dense weight buffer shape");
    let nnz = nm_nnz(n_in.max(1), n, m).min(n_in);
    let tiles = n_out.div_ceil(DENSE_JT);
    let mut values = vec![0.0f32; tiles * nnz * DENSE_JT];
    let mut indices = Vec::with_capacity(tiles * nnz);
    let mut kept = Vec::with_capacity(nnz);
    let mut scores = Vec::with_capacity(m);
    for t in 0..tiles {
        let j0 = t * DENSE_JT;
        let jn = (n_out - j0).min(DENSE_JT);
        kept.clear();
        let mut g0 = 0;
        while g0 < n_in {
            let gn = (n_in - g0).min(m);
            scores.clear();
            scores.extend((g0..g0 + gn).map(|c| {
                let mag: f32 = (j0..j0 + jn).map(|j| wt[c * n_out + j].abs()).sum();
                (mag, c)
            }));
            keep_group(&scores, n, &mut kept);
            g0 += gn;
        }
        debug_assert_eq!(kept.len(), nnz);
        for (kk, &c) in kept.iter().enumerate() {
            let dst = (t * nnz + kk) * DENSE_JT;
            for jj in 0..jn {
                values[dst + jj] = wt[c * n_out + j0 + jj];
            }
        }
        indices.extend(kept.iter().map(|&c| c as u32));
    }
    (values, indices)
}

/// Quantizes compressed conv N:M values (`[out_c][nnz]` from
/// [`select_nm_conv`]) with one symmetric scale per output channel —
/// the same convention as
/// [`quantize_conv_panels_i8`](crate::quantize_conv_panels_i8), computed
/// over the *kept* weights only.
pub fn quantize_nm_conv_i8(values: &[f32], out_c: usize, nnz: usize) -> (Vec<i8>, Vec<f32>) {
    assert_eq!(values.len(), out_c * nnz, "compressed value buffer shape");
    let mut data = vec![0i8; values.len()];
    let mut scales = vec![0.0f32; out_c];
    for (oc, row) in values.chunks_exact(nnz.max(1)).enumerate() {
        let m = crate::max_abs(row);
        scales[oc] = i8_scale(m);
        let inv = i8_inv_scale(m);
        for (t, &v) in row.iter().enumerate() {
            data[oc * nnz + t] = quantize_i8(v, inv);
        }
    }
    (data, scales)
}

/// Quantizes compressed dense N:M values (`[t][kk][DENSE_JT]` from
/// [`select_nm_dense`]) with one symmetric scale per output column — the
/// same convention as
/// [`quantize_dense_panels_i8`](crate::quantize_dense_panels_i8), over
/// the kept weights only. Padded columns quantize to code 0 with scale 0.
pub fn quantize_nm_dense_i8(values: &[f32], n_out: usize, nnz: usize) -> (Vec<i8>, Vec<f32>) {
    let tiles = n_out.div_ceil(DENSE_JT);
    assert_eq!(
        values.len(),
        tiles * nnz * DENSE_JT,
        "compressed value buffer shape"
    );
    let mut data = vec![0i8; values.len()];
    let mut scales = vec![0.0f32; n_out];
    for (j, scale) in scales.iter_mut().enumerate() {
        let (t, jj) = (j / DENSE_JT, j % DENSE_JT);
        let mut m = 0.0f32;
        for kk in 0..nnz {
            m = m.max(values[(t * nnz + kk) * DENSE_JT + jj].abs());
        }
        *scale = i8_scale(m);
        let inv = i8_inv_scale(m);
        for kk in 0..nnz {
            let at = (t * nnz + kk) * DENSE_JT + jj;
            data[at] = quantize_i8(values[at], inv);
        }
    }
    (data, scales)
}

// --------------------------------------------------------------------------
// f32 conv N:M kernel
// --------------------------------------------------------------------------

/// Full column strip width of the f32 N:M conv kernel (two `ymm`
/// accumulators per output channel).
const NM_CONV_JW: usize = 16;

/// N:M-compressed conv GEMM with fused bias+ReLU epilogue: the sparse
/// twin of [`conv_gemm_into`](crate::conv_gemm_into) over the same wide
/// im2col matrix.
///
/// ```text
/// out[oc][j] = bias[oc] + Σ_t values[oc][t] · cols[idx[oc][t]][j]   (then ReLU)
/// ```
///
/// Accumulation is bias first, then kept rows in ascending index order —
/// the order [`select_nm_conv`] emits — with no zero-skipping and no FMA
/// contraction, so results are **bitwise** identical to
/// [`conv_nm_gemm_reference`] across strip widths and thread counts.
/// Output rows are partitioned across `threads` workers.
#[allow(clippy::too_many_arguments)]
pub fn conv_nm_gemm_into(
    values: &[f32],
    idx: &[u32],
    bias: Option<&[f32]>,
    cols: &[f32],
    out: &mut [f32],
    out_c: usize,
    nnz: usize,
    n: usize,
    relu: bool,
    threads: usize,
) {
    assert_eq!(values.len(), out_c * nnz, "compressed value buffer");
    assert_eq!(idx.len(), out_c * nnz, "compressed index buffer");
    assert!(out.len() >= out_c * n, "output buffer");
    let max_row = idx.iter().copied().max().unwrap_or(0) as usize;
    assert!(nnz == 0 || cols.len() >= (max_row + 1) * n, "im2col buffer");
    parallel::parallel_rows_mut(
        &mut out[..out_c * n],
        out_c,
        n,
        threads,
        min_rows_per_thread(nnz.max(1), n),
        |rows, block| {
            conv_nm_rows(
                values, idx, bias, cols, block, rows.start, rows.end, nnz, n, relu,
            );
        },
    );
}

/// Runtime-dispatched worker body of [`conv_nm_gemm_into`].
#[inline]
#[allow(clippy::too_many_arguments)]
fn conv_nm_rows(
    values: &[f32],
    idx: &[u32],
    bias: Option<&[f32]>,
    cols: &[f32],
    block: &mut [f32],
    r0: usize,
    r1: usize,
    nnz: usize,
    n: usize,
    relu: bool,
) {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the avx2 target feature is present at runtime.
        unsafe { conv_nm_rows_avx2(values, idx, bias, cols, block, r0, r1, nnz, n, relu) };
        return;
    }
    conv_nm_rows_impl(values, idx, bias, cols, block, r0, r1, nnz, n, relu);
}

/// [`conv_nm_rows_impl`] compiled with the `avx2` target feature: the
/// identical safe code, auto-vectorized 8 lanes wide. Same mul/add
/// sequence per output element, so bitwise identical to the baseline.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn conv_nm_rows_avx2(
    values: &[f32],
    idx: &[u32],
    bias: Option<&[f32]>,
    cols: &[f32],
    block: &mut [f32],
    r0: usize,
    r1: usize,
    nnz: usize,
    n: usize,
    relu: bool,
) {
    conv_nm_rows_impl(values, idx, bias, cols, block, r0, r1, nnz, n, relu);
}

/// Portable body of [`conv_nm_rows`]: full [`NM_CONV_JW`]-column strips
/// keep two 8-lane accumulators live across the whole nonzero walk; tail
/// columns fall back to one element at a time with the identical
/// bias-first ascending-index accumulation.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn conv_nm_rows_impl(
    values: &[f32],
    idx: &[u32],
    bias: Option<&[f32]>,
    cols: &[f32],
    block: &mut [f32],
    r0: usize,
    r1: usize,
    nnz: usize,
    n: usize,
    relu: bool,
) {
    const HW: usize = NM_CONV_JW / 2;
    for oc in r0..r1 {
        let b = bias.map_or(0.0, |b| b[oc]);
        let vals = &values[oc * nnz..(oc + 1) * nnz];
        let ids = &idx[oc * nnz..(oc + 1) * nnz];
        let row = &mut block[(oc - r0) * n..(oc - r0 + 1) * n];
        let mut j0 = 0;
        while j0 + NM_CONV_JW <= n {
            let mut acc0 = [b; HW];
            let mut acc1 = [b; HW];
            for (&w, &r) in vals.iter().zip(ids) {
                let crow = &cols[r as usize * n + j0..r as usize * n + j0 + NM_CONV_JW];
                let (c0, c1) = crow.split_at(HW);
                for (o, &c) in acc0.iter_mut().zip(c0) {
                    *o += w * c;
                }
                for (o, &c) in acc1.iter_mut().zip(c1) {
                    *o += w * c;
                }
            }
            if relu {
                for o in acc0.iter_mut().chain(acc1.iter_mut()) {
                    *o = o.max(0.0);
                }
            }
            row[j0..j0 + HW].copy_from_slice(&acc0);
            row[j0 + HW..j0 + NM_CONV_JW].copy_from_slice(&acc1);
            j0 += NM_CONV_JW;
        }
        for (j, o) in row.iter_mut().enumerate().skip(j0) {
            let mut acc = b;
            for (&w, &r) in vals.iter().zip(ids) {
                acc += w * cols[r as usize * n + j];
            }
            *o = if relu { acc.max(0.0) } else { acc };
        }
    }
}

/// Scalar reference for [`conv_nm_gemm_into`]: plain serial loops over
/// the same compressed buffers with the identical per-element operation
/// sequence. The optimized kernel must match this bitwise.
#[allow(clippy::too_many_arguments)]
pub fn conv_nm_gemm_reference(
    values: &[f32],
    idx: &[u32],
    bias: Option<&[f32]>,
    cols: &[f32],
    out: &mut [f32],
    out_c: usize,
    nnz: usize,
    n: usize,
    relu: bool,
) {
    for oc in 0..out_c {
        let b = bias.map_or(0.0, |b| b[oc]);
        for j in 0..n {
            let mut acc = b;
            for t in 0..nnz {
                acc += values[oc * nnz + t] * cols[idx[oc * nnz + t] as usize * n + j];
            }
            out[oc * n + j] = if relu { acc.max(0.0) } else { acc };
        }
    }
}

// --------------------------------------------------------------------------
// int8 conv N:M kernel
// --------------------------------------------------------------------------

/// N:M-compressed int8 conv GEMM with the fused dequantize+bias+ReLU
/// epilogue of [`conv_gemm_i8_into`](crate::conv_gemm_i8_into): exact
/// `i32` accumulation over the kept rows only, then
/// `acc·(col_scale·w_scale) + bias` per element.
///
/// The AVX2 body walks nonzeros in pairs: the pair's two im2col rows are
/// gathered with two 8-byte loads and interleaved into 16 `i16` lanes
/// (one byte-unpack), the weight pair broadcasts as an 8-lane `i32`, and
/// one `vpmaddwd`+`vpaddd` retires 16 multiplies over an 8-column tile —
/// the same idiom as the dense int8 conv kernel, applied to *gathered*
/// row pairs. Integer sums are exact, so every path (AVX2, portable,
/// [`conv_nm_gemm_i8_reference`]) agrees bitwise.
#[allow(clippy::too_many_arguments)]
pub fn conv_nm_gemm_i8_into(
    qvalues: &[i8],
    w_scales: &[f32],
    idx: &[u32],
    cols: &[i8],
    col_scales: &[f32],
    bias: Option<&[f32]>,
    out: &mut [f32],
    out_c: usize,
    nnz: usize,
    n: usize,
    relu: bool,
    threads: usize,
) {
    assert_eq!(qvalues.len(), out_c * nnz, "compressed value buffer");
    assert_eq!(idx.len(), out_c * nnz, "compressed index buffer");
    assert!(w_scales.len() >= out_c, "per-channel weight scales");
    assert!(col_scales.len() >= n, "per-column scales");
    assert!(out.len() >= out_c * n, "output buffer");
    let max_row = idx.iter().copied().max().unwrap_or(0) as usize;
    assert!(nnz == 0 || cols.len() >= (max_row + 1) * n, "im2col buffer");
    parallel::parallel_rows_mut(
        &mut out[..out_c * n],
        out_c,
        n,
        threads,
        min_rows_per_thread(nnz.max(1), n),
        |rows, block| {
            conv_nm_i8_rows(
                qvalues, w_scales, idx, cols, col_scales, bias, block, rows.start, rows.end, nnz,
                n, relu,
            );
        },
    );
}

/// Runtime-dispatched worker body of [`conv_nm_gemm_i8_into`].
#[inline]
#[allow(clippy::too_many_arguments)]
fn conv_nm_i8_rows(
    qvalues: &[i8],
    w_scales: &[f32],
    idx: &[u32],
    cols: &[i8],
    col_scales: &[f32],
    bias: Option<&[f32]>,
    block: &mut [f32],
    r0: usize,
    r1: usize,
    nnz: usize,
    n: usize,
    relu: bool,
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the avx2 target feature is present at runtime.
        unsafe {
            conv_nm_i8_rows_avx2(
                qvalues, w_scales, idx, cols, col_scales, bias, block, r0, r1, nnz, n, relu,
            )
        };
        return;
    }
    conv_nm_i8_rows_impl(
        qvalues, w_scales, idx, cols, col_scales, bias, block, r0, r1, nnz, n, relu,
    );
}

/// `vpmaddwd` body of [`conv_nm_i8_rows`]; see [`conv_nm_gemm_i8_into`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn conv_nm_i8_rows_avx2(
    qvalues: &[i8],
    w_scales: &[f32],
    idx: &[u32],
    cols: &[i8],
    col_scales: &[f32],
    bias: Option<&[f32]>,
    block: &mut [f32],
    r0: usize,
    r1: usize,
    nnz: usize,
    n: usize,
    relu: bool,
) {
    use std::arch::x86_64::*;
    let bias_at = |oc: usize| bias.map_or(0.0, |b| b[oc]);
    let npairs = nnz.div_ceil(2);
    // Per-pair packed weights and row ids, rebuilt per output channel and
    // reused across every column tile of that channel.
    let mut wp = vec![0i32; npairs];
    let mut rp = vec![(0usize, 0usize); npairs];
    for oc in r0..r1 {
        let vals = &qvalues[oc * nnz..(oc + 1) * nnz];
        let ids = &idx[oc * nnz..(oc + 1) * nnz];
        for k in 0..npairs {
            let w0 = vals[2 * k];
            let ra = ids[2 * k] as usize;
            let (w1, rb) = if 2 * k + 1 < nnz {
                (vals[2 * k + 1], ids[2 * k + 1] as usize)
            } else {
                // odd tail: zero weight, row repeats so the load stays in
                // bounds and contributes exactly nothing
                (0, ra)
            };
            wp[k] = pack_i8_pair(w0, w1);
            rp[k] = (ra, rb);
        }
        let row = &mut block[(oc - r0) * n..(oc - r0 + 1) * n];
        let mut j0 = 0;
        while j0 + CONV_NR <= n {
            let mut acc = _mm256_setzero_si256();
            for k in 0..npairs {
                let (ra, rb) = rp[k];
                // SAFETY: j0 + CONV_NR ≤ n and both rows were bounds-checked
                // against `cols` by the caller, so the 8-byte loads are in
                // bounds.
                let c0 = _mm_loadl_epi64(cols.as_ptr().add(ra * n + j0) as *const __m128i);
                let c1 = _mm_loadl_epi64(cols.as_ptr().add(rb * n + j0) as *const __m128i);
                let cv = _mm256_cvtepi8_epi16(_mm_unpacklo_epi8(c0, c1));
                acc = _mm256_add_epi32(acc, _mm256_madd_epi16(cv, _mm256_set1_epi32(wp[k])));
            }
            let mut lanes = [0i32; CONV_NR];
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
            conv_i8_epilogue(
                &lanes,
                w_scales[oc],
                &col_scales[j0..j0 + CONV_NR],
                bias_at(oc),
                relu,
                &mut row[j0..j0 + CONV_NR],
            );
            j0 += CONV_NR;
        }
        if j0 < n {
            // scalar tail: the same exact i32 sums on the leftover columns
            let jn = n - j0;
            let mut acc = [0i32; CONV_NR];
            for (&w, &r) in vals.iter().zip(ids) {
                let crow = &cols[r as usize * n + j0..r as usize * n + j0 + jn];
                for (o, &c) in acc[..jn].iter_mut().zip(crow) {
                    *o += w as i32 * c as i32;
                }
            }
            conv_i8_epilogue(
                &acc[..jn],
                w_scales[oc],
                &col_scales[j0..j0 + jn],
                bias_at(oc),
                relu,
                &mut row[j0..j0 + jn],
            );
        }
    }
}

/// Portable body of [`conv_nm_i8_rows`]: widening `i32` multiplies over
/// 8-column strips; exact sums, so bitwise equal to the AVX2 body and the
/// reference.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn conv_nm_i8_rows_impl(
    qvalues: &[i8],
    w_scales: &[f32],
    idx: &[u32],
    cols: &[i8],
    col_scales: &[f32],
    bias: Option<&[f32]>,
    block: &mut [f32],
    r0: usize,
    r1: usize,
    nnz: usize,
    n: usize,
    relu: bool,
) {
    let bias_at = |oc: usize| bias.map_or(0.0, |b| b[oc]);
    for oc in r0..r1 {
        let vals = &qvalues[oc * nnz..(oc + 1) * nnz];
        let ids = &idx[oc * nnz..(oc + 1) * nnz];
        let row = &mut block[(oc - r0) * n..(oc - r0 + 1) * n];
        let mut j0 = 0;
        while j0 < n {
            let jn = (n - j0).min(CONV_NR);
            let mut acc = [0i32; CONV_NR];
            for (&w, &r) in vals.iter().zip(ids) {
                let w = w as i32;
                let crow = &cols[r as usize * n + j0..r as usize * n + j0 + jn];
                for (o, &c) in acc[..jn].iter_mut().zip(crow) {
                    *o += w * c as i32;
                }
            }
            conv_i8_epilogue(
                &acc[..jn],
                w_scales[oc],
                &col_scales[j0..j0 + jn],
                bias_at(oc),
                relu,
                &mut row[j0..j0 + jn],
            );
            j0 += CONV_NR;
        }
    }
}

/// Scalar reference for [`conv_nm_gemm_i8_into`]: serial loops, identical
/// epilogue expression. The optimized kernel must match this bitwise.
#[allow(clippy::too_many_arguments)]
pub fn conv_nm_gemm_i8_reference(
    qvalues: &[i8],
    w_scales: &[f32],
    idx: &[u32],
    cols: &[i8],
    col_scales: &[f32],
    bias: Option<&[f32]>,
    out: &mut [f32],
    out_c: usize,
    nnz: usize,
    n: usize,
    relu: bool,
) {
    for oc in 0..out_c {
        let b = bias.map_or(0.0, |b| b[oc]);
        for j in 0..n {
            let mut acc = 0i32;
            for t in 0..nnz {
                acc +=
                    qvalues[oc * nnz + t] as i32 * cols[idx[oc * nnz + t] as usize * n + j] as i32;
            }
            let v = acc as f32 * (col_scales[j] * w_scales[oc]) + b;
            out[oc * n + j] = if relu { v.max(0.0) } else { v };
        }
    }
}

// --------------------------------------------------------------------------
// f32 dense N:M kernel
// --------------------------------------------------------------------------

/// Per-panel activation base offsets for the dense N:M kernels: the
/// compressed index list mapped through the activation layout's affine
/// addressing (element `(b, c)` at `base(c) + b·stride`).
fn nm_dense_bases(idx: &[u32], base: impl Fn(usize) -> usize) -> Vec<usize> {
    idx.iter().map(|&c| base(c as usize)).collect()
}

/// N:M-compressed batched dense layer over a sample-major flat activation
/// (`batch × n_in`): the sparse twin of
/// [`dense_batch_into`](crate::dense_batch_into).
///
/// ```text
/// out[b][j] = bias[j] + Σ_kk values[t][kk][jj] · a[b][idx[t][kk]]   (kk ascending)
/// ```
///
/// where `t = j / DENSE_JT`, `jj = j % DENSE_JT`. No zero-skipping on
/// either path, so results are **bitwise** identical to
/// [`dense_nm_batch_reference`] for every batch size, tiling and thread
/// count.
#[allow(clippy::too_many_arguments)]
pub fn dense_nm_batch_into(
    a: &[f32],
    values: &[f32],
    idx: &[u32],
    bias: &[f32],
    out: &mut [f32],
    batch: usize,
    n_in: usize,
    n_out: usize,
    nnz: usize,
    threads: usize,
) {
    let bases = nm_dense_bases(idx, |c| c);
    dense_nm_dispatch(
        a, n_in, &bases, values, bias, out, batch, n_out, nnz, threads,
    );
}

/// [`dense_nm_batch_into`] over a *channel-major batched* CHW activation
/// (element `(b, c, p)` at `(c·batch + b)·plane + p`): the sparse twin of
/// [`dense_batch_chw_into`](crate::dense_batch_chw_into). Bitwise
/// identical to flattening followed by [`dense_nm_batch_into`].
#[allow(clippy::too_many_arguments)]
pub fn dense_nm_batch_chw_into(
    a: &[f32],
    values: &[f32],
    idx: &[u32],
    bias: &[f32],
    out: &mut [f32],
    batch: usize,
    channels: usize,
    plane: usize,
    n_out: usize,
    nnz: usize,
    threads: usize,
) {
    let _ = channels;
    let bases = nm_dense_bases(idx, |c| {
        (c / plane.max(1)) * batch * plane + c % plane.max(1)
    });
    dense_nm_dispatch(
        a, plane, &bases, values, bias, out, batch, n_out, nnz, threads,
    );
}

/// Shared sample-partitioned entry of the f32 dense N:M kernels.
#[allow(clippy::too_many_arguments)]
fn dense_nm_dispatch(
    a: &[f32],
    stride: usize,
    bases: &[usize],
    values: &[f32],
    bias: &[f32],
    out: &mut [f32],
    batch: usize,
    n_out: usize,
    nnz: usize,
    threads: usize,
) {
    let tiles = n_out.div_ceil(DENSE_JT);
    assert_eq!(
        values.len(),
        tiles * nnz * DENSE_JT,
        "compressed value buffer"
    );
    assert_eq!(bases.len(), tiles * nnz, "compressed index buffer");
    assert!(bias.len() >= n_out, "bias buffer");
    assert!(out.len() >= batch * n_out, "output buffer");
    parallel::parallel_rows_mut(
        &mut out[..batch * n_out],
        batch,
        n_out,
        threads,
        min_rows_per_thread(nnz.max(1), n_out),
        |rows, block| {
            dense_nm_rows(
                a,
                stride,
                bases,
                values,
                bias,
                block,
                rows.start,
                rows.len(),
                n_out,
                nnz,
            );
        },
    );
}

/// Runtime-dispatched worker body of the f32 dense N:M kernels.
#[inline]
#[allow(clippy::too_many_arguments)]
fn dense_nm_rows(
    a: &[f32],
    stride: usize,
    bases: &[usize],
    values: &[f32],
    bias: &[f32],
    block: &mut [f32],
    row0: usize,
    nb: usize,
    n_out: usize,
    nnz: usize,
) {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the avx2 target feature is present at runtime.
        unsafe { dense_nm_rows_avx2(a, stride, bases, values, bias, block, row0, nb, n_out, nnz) };
        return;
    }
    dense_nm_rows_impl(a, stride, bases, values, bias, block, row0, nb, n_out, nnz);
}

/// [`dense_nm_rows_impl`] compiled with the `avx2` target feature: the
/// identical safe code, auto-vectorized 8 lanes wide — bitwise identical
/// to the baseline build.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn dense_nm_rows_avx2(
    a: &[f32],
    stride: usize,
    bases: &[usize],
    values: &[f32],
    bias: &[f32],
    block: &mut [f32],
    row0: usize,
    nb: usize,
    n_out: usize,
    nnz: usize,
) {
    dense_nm_rows_impl(a, stride, bases, values, bias, block, row0, nb, n_out, nnz);
}

/// Portable body of [`dense_nm_rows`]: the `DENSE_SB × DENSE_JT` register
/// tile of the dense f32 kernel, walking the panel's compressed index
/// list instead of every input. Leftover samples run one at a time with
/// the same multiply-through policy (no zero-skipping), keeping every
/// path bitwise identical.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn dense_nm_rows_impl(
    a: &[f32],
    stride: usize,
    bases: &[usize],
    values: &[f32],
    bias: &[f32],
    block: &mut [f32],
    row0: usize,
    nb: usize,
    n_out: usize,
    nnz: usize,
) {
    let tiles = n_out.div_ceil(DENSE_JT);
    for t in 0..tiles {
        let j0 = t * DENSE_JT;
        let jn = (n_out - j0).min(DENSE_JT);
        let pvals = &values[t * nnz * DENSE_JT..(t + 1) * nnz * DENSE_JT];
        let pbase = &bases[t * nnz..(t + 1) * nnz];
        let mut s0 = 0;
        while s0 + DENSE_SB <= nb {
            let tile0 = (row0 + s0) * stride;
            let mut acc0 = [0.0f32; DENSE_JT];
            let mut acc1 = [0.0f32; DENSE_JT];
            let mut acc2 = [0.0f32; DENSE_JT];
            let mut acc3 = [0.0f32; DENSE_JT];
            acc0[..jn].copy_from_slice(&bias[j0..j0 + jn]);
            acc1[..jn].copy_from_slice(&bias[j0..j0 + jn]);
            acc2[..jn].copy_from_slice(&bias[j0..j0 + jn]);
            acc3[..jn].copy_from_slice(&bias[j0..j0 + jn]);
            for (&base, wrow) in pbase.iter().zip(pvals.chunks_exact(DENSE_JT)) {
                let wrow: &[f32; DENSE_JT] = wrow.try_into().expect("value row");
                let a0 = a[base + tile0];
                let a1 = a[base + tile0 + stride];
                let a2 = a[base + tile0 + 2 * stride];
                let a3 = a[base + tile0 + 3 * stride];
                for (o, &w) in acc0.iter_mut().zip(wrow) {
                    *o += a0 * w;
                }
                for (o, &w) in acc1.iter_mut().zip(wrow) {
                    *o += a1 * w;
                }
                for (o, &w) in acc2.iter_mut().zip(wrow) {
                    *o += a2 * w;
                }
                for (o, &w) in acc3.iter_mut().zip(wrow) {
                    *o += a3 * w;
                }
            }
            block[s0 * n_out + j0..s0 * n_out + j0 + jn].copy_from_slice(&acc0[..jn]);
            block[(s0 + 1) * n_out + j0..(s0 + 1) * n_out + j0 + jn].copy_from_slice(&acc1[..jn]);
            block[(s0 + 2) * n_out + j0..(s0 + 2) * n_out + j0 + jn].copy_from_slice(&acc2[..jn]);
            block[(s0 + 3) * n_out + j0..(s0 + 3) * n_out + j0 + jn].copy_from_slice(&acc3[..jn]);
            s0 += DENSE_SB;
        }
        while s0 < nb {
            let tile0 = (row0 + s0) * stride;
            let mut acc = [0.0f32; DENSE_JT];
            acc[..jn].copy_from_slice(&bias[j0..j0 + jn]);
            for (&base, wrow) in pbase.iter().zip(pvals.chunks_exact(DENSE_JT)) {
                let wrow: &[f32; DENSE_JT] = wrow.try_into().expect("value row");
                let ac = a[base + tile0];
                for (o, &w) in acc.iter_mut().zip(wrow) {
                    *o += ac * w;
                }
            }
            block[s0 * n_out + j0..s0 * n_out + j0 + jn].copy_from_slice(&acc[..jn]);
            s0 += 1;
        }
    }
}

/// Scalar reference for [`dense_nm_batch_into`]; the kernel must match
/// this bitwise.
#[allow(clippy::too_many_arguments)]
pub fn dense_nm_batch_reference(
    a: &[f32],
    values: &[f32],
    idx: &[u32],
    bias: &[f32],
    out: &mut [f32],
    batch: usize,
    n_in: usize,
    n_out: usize,
    nnz: usize,
) {
    for b in 0..batch {
        for j in 0..n_out {
            let (t, jj) = (j / DENSE_JT, j % DENSE_JT);
            let mut acc = bias[j];
            for kk in 0..nnz {
                let c = idx[t * nnz + kk] as usize;
                acc += values[(t * nnz + kk) * DENSE_JT + jj] * a[b * n_in + c];
            }
            out[b * n_out + j] = acc;
        }
    }
}

/// Scalar reference for [`dense_nm_batch_chw_into`]; the kernel must
/// match this bitwise.
#[allow(clippy::too_many_arguments)]
pub fn dense_nm_batch_chw_reference(
    a: &[f32],
    values: &[f32],
    idx: &[u32],
    bias: &[f32],
    out: &mut [f32],
    batch: usize,
    plane: usize,
    n_out: usize,
    nnz: usize,
) {
    for b in 0..batch {
        for j in 0..n_out {
            let (t, jj) = (j / DENSE_JT, j % DENSE_JT);
            let mut acc = bias[j];
            for kk in 0..nnz {
                let c = idx[t * nnz + kk] as usize;
                let at = (c / plane.max(1)) * batch * plane + b * plane + c % plane.max(1);
                acc += values[(t * nnz + kk) * DENSE_JT + jj] * a[at];
            }
            out[b * n_out + j] = acc;
        }
    }
}

// --------------------------------------------------------------------------
// int8 dense N:M kernel
// --------------------------------------------------------------------------

/// N:M-compressed batched int8 dense layer over a sample-major quantized
/// flat activation: the sparse twin of
/// [`dense_batch_i8_into`](crate::dense_batch_i8_into), with `qvalues`/
/// `w_scales` from [`quantize_nm_dense_i8`]. Exact `i32` accumulation
/// over the kept inputs, then the shared dense int8 epilogue
/// `acc·(a_scale·w_scale) + bias` — bitwise identical to
/// [`dense_nm_batch_i8_reference`] on every path.
#[allow(clippy::too_many_arguments)]
pub fn dense_nm_batch_i8_into(
    qa: &[i8],
    a_scales: &[f32],
    qvalues: &[i8],
    w_scales: &[f32],
    idx: &[u32],
    bias: &[f32],
    out: &mut [f32],
    batch: usize,
    n_in: usize,
    n_out: usize,
    nnz: usize,
    threads: usize,
) {
    let bases = nm_dense_bases(idx, |c| c);
    dense_nm_i8_dispatch(
        qa, n_in, &bases, a_scales, qvalues, w_scales, bias, out, batch, n_out, nnz, threads,
    );
}

/// [`dense_nm_batch_i8_into`] over a channel-major batched CHW quantized
/// activation: the sparse twin of
/// [`dense_batch_i8_chw_into`](crate::dense_batch_i8_chw_into).
#[allow(clippy::too_many_arguments)]
pub fn dense_nm_batch_i8_chw_into(
    qa: &[i8],
    a_scales: &[f32],
    qvalues: &[i8],
    w_scales: &[f32],
    idx: &[u32],
    bias: &[f32],
    out: &mut [f32],
    batch: usize,
    channels: usize,
    plane: usize,
    n_out: usize,
    nnz: usize,
    threads: usize,
) {
    let _ = channels;
    let bases = nm_dense_bases(idx, |c| {
        (c / plane.max(1)) * batch * plane + c % plane.max(1)
    });
    dense_nm_i8_dispatch(
        qa, plane, &bases, a_scales, qvalues, w_scales, bias, out, batch, n_out, nnz, threads,
    );
}

/// Shared sample-partitioned entry of the int8 dense N:M kernels.
#[allow(clippy::too_many_arguments)]
fn dense_nm_i8_dispatch(
    qa: &[i8],
    stride: usize,
    bases: &[usize],
    a_scales: &[f32],
    qvalues: &[i8],
    w_scales: &[f32],
    bias: &[f32],
    out: &mut [f32],
    batch: usize,
    n_out: usize,
    nnz: usize,
    threads: usize,
) {
    let tiles = n_out.div_ceil(DENSE_JT);
    assert_eq!(
        qvalues.len(),
        tiles * nnz * DENSE_JT,
        "compressed value buffer"
    );
    assert_eq!(bases.len(), tiles * nnz, "compressed index buffer");
    assert!(w_scales.len() >= n_out, "per-column weight scales");
    assert!(a_scales.len() >= batch, "per-sample activation scales");
    assert!(bias.len() >= n_out, "bias buffer");
    assert!(out.len() >= batch * n_out, "output buffer");
    parallel::parallel_rows_mut(
        &mut out[..batch * n_out],
        batch,
        n_out,
        threads,
        min_rows_per_thread(nnz.max(1), n_out),
        |rows, block| {
            dense_nm_i8_rows(
                qa,
                stride,
                bases,
                a_scales,
                qvalues,
                w_scales,
                bias,
                block,
                rows.start,
                rows.len(),
                n_out,
                nnz,
            );
        },
    );
}

/// Runtime-dispatched worker body of the int8 dense N:M kernels.
#[inline]
#[allow(clippy::too_many_arguments)]
fn dense_nm_i8_rows(
    qa: &[i8],
    stride: usize,
    bases: &[usize],
    a_scales: &[f32],
    qvalues: &[i8],
    w_scales: &[f32],
    bias: &[f32],
    block: &mut [f32],
    row0: usize,
    nb: usize,
    n_out: usize,
    nnz: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the avx2 target feature is present at runtime.
        unsafe {
            dense_nm_i8_rows_avx2(
                qa, stride, bases, a_scales, qvalues, w_scales, bias, block, row0, nb, n_out, nnz,
            )
        };
        return;
    }
    dense_nm_i8_rows_impl(
        qa, stride, bases, a_scales, qvalues, w_scales, bias, block, row0, nb, n_out, nnz,
    );
}

/// [`dense_nm_i8_rows_impl`] compiled with the `avx2` target feature:
/// the widening `i32` multiplies vectorize to `vpmovsxbd`+`vpmulld`
/// lanes; sums are exact either way, so bitwise identical to baseline.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn dense_nm_i8_rows_avx2(
    qa: &[i8],
    stride: usize,
    bases: &[usize],
    a_scales: &[f32],
    qvalues: &[i8],
    w_scales: &[f32],
    bias: &[f32],
    block: &mut [f32],
    row0: usize,
    nb: usize,
    n_out: usize,
    nnz: usize,
) {
    dense_nm_i8_rows_impl(
        qa, stride, bases, a_scales, qvalues, w_scales, bias, block, row0, nb, n_out, nnz,
    );
}

/// Portable body of [`dense_nm_i8_rows`]: one sample at a time, `i32`
/// accumulators over the panel's compressed index list, shared epilogue.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn dense_nm_i8_rows_impl(
    qa: &[i8],
    stride: usize,
    bases: &[usize],
    a_scales: &[f32],
    qvalues: &[i8],
    w_scales: &[f32],
    bias: &[f32],
    block: &mut [f32],
    row0: usize,
    nb: usize,
    n_out: usize,
    nnz: usize,
) {
    let tiles = n_out.div_ceil(DENSE_JT);
    for t in 0..tiles {
        let j0 = t * DENSE_JT;
        let jn = (n_out - j0).min(DENSE_JT);
        let pvals = &qvalues[t * nnz * DENSE_JT..(t + 1) * nnz * DENSE_JT];
        let pbase = &bases[t * nnz..(t + 1) * nnz];
        for s in 0..nb {
            let tile0 = (row0 + s) * stride;
            let mut acc = [0i32; DENSE_JT];
            for (&base, wrow) in pbase.iter().zip(pvals.chunks_exact(DENSE_JT)) {
                let ac = qa[base + tile0] as i32;
                for (o, &w) in acc.iter_mut().zip(wrow) {
                    *o += ac * w as i32;
                }
            }
            dense_i8_epilogue(
                &acc[..jn],
                a_scales[row0 + s],
                &w_scales[j0..j0 + jn],
                &bias[j0..j0 + jn],
                &mut block[s * n_out + j0..s * n_out + j0 + jn],
            );
        }
    }
}

/// Scalar reference for [`dense_nm_batch_i8_into`]; the kernel must match
/// this bitwise.
#[allow(clippy::too_many_arguments)]
pub fn dense_nm_batch_i8_reference(
    qa: &[i8],
    a_scales: &[f32],
    qvalues: &[i8],
    w_scales: &[f32],
    idx: &[u32],
    bias: &[f32],
    out: &mut [f32],
    batch: usize,
    n_in: usize,
    n_out: usize,
    nnz: usize,
) {
    for b in 0..batch {
        for j in 0..n_out {
            let (t, jj) = (j / DENSE_JT, j % DENSE_JT);
            let mut acc = 0i32;
            for kk in 0..nnz {
                let c = idx[t * nnz + kk] as usize;
                acc += qvalues[(t * nnz + kk) * DENSE_JT + jj] as i32 * qa[b * n_in + c] as i32;
            }
            out[b * n_out + j] = acc as f32 * (a_scales[b] * w_scales[j]) + bias[j];
        }
    }
}

/// Scalar reference for [`dense_nm_batch_i8_chw_into`]; the kernel must
/// match this bitwise.
#[allow(clippy::too_many_arguments)]
pub fn dense_nm_batch_i8_chw_reference(
    qa: &[i8],
    a_scales: &[f32],
    qvalues: &[i8],
    w_scales: &[f32],
    idx: &[u32],
    bias: &[f32],
    out: &mut [f32],
    batch: usize,
    plane: usize,
    n_out: usize,
    nnz: usize,
) {
    for b in 0..batch {
        for j in 0..n_out {
            let (t, jj) = (j / DENSE_JT, j % DENSE_JT);
            let mut acc = 0i32;
            for kk in 0..nnz {
                let c = idx[t * nnz + kk] as usize;
                let at = (c / plane.max(1)) * batch * plane + b * plane + c % plane.max(1);
                acc += qvalues[(t * nnz + kk) * DENSE_JT + jj] as i32 * qa[at] as i32;
            }
            out[b * n_out + j] = acc as f32 * (a_scales[b] * w_scales[j]) + bias[j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::XorShiftRng;

    #[test]
    fn nnz_counts_full_and_tail_groups() {
        assert_eq!(nm_nnz(8, 2, 4), 4);
        assert_eq!(nm_nnz(9, 2, 4), 5); // tail of 1 keeps 1
        assert_eq!(nm_nnz(11, 2, 4), 6); // tail of 3 keeps 2
        assert_eq!(nm_nnz(16, 4, 8), 8);
        assert_eq!(nm_nnz(3, 2, 4), 2);
        assert_eq!(nm_nnz(1, 2, 4), 1);
    }

    #[test]
    fn conv_selection_keeps_group_top_magnitudes() {
        // one row, krows = 8, 2:4 → keep the 2 largest |w| of each half
        let w = [0.1f32, -3.0, 0.2, 2.0, -0.5, 0.4, 0.0, 1.0];
        let (vals, idx) = select_nm_conv(&w, 1, 8, 2, 4);
        assert_eq!(idx, vec![1, 3, 4, 7]);
        assert_eq!(vals, vec![-3.0, 2.0, -0.5, 1.0]);
    }

    #[test]
    fn conv_selection_tie_breaks_toward_lower_index() {
        let w = [1.0f32, 1.0, 1.0, 1.0];
        let (_, idx) = select_nm_conv(&w, 1, 4, 2, 4);
        assert_eq!(idx, vec![0, 1]);
    }

    #[test]
    fn dense_selection_shares_pattern_across_panel_columns() {
        // n_in = 4, n_out = 2 (one panel), 2:4. Combined magnitudes:
        // c0: 1+1=2, c1: 5+0=5, c2: 0+4=4, c3: 1+0=1 → keep c1, c2.
        let wt = [
            1.0f32, -1.0, // c0
            5.0, 0.0, // c1
            0.0, 4.0, // c2
            -1.0, 0.0, // c3
        ];
        let (vals, idx) = select_nm_dense(&wt, 4, 2, 2, 4);
        assert_eq!(idx, vec![1, 2]);
        // values padded to DENSE_JT columns
        assert_eq!(&vals[..2], &[5.0, 0.0]);
        assert_eq!(&vals[DENSE_JT..DENSE_JT + 2], &[0.0, 4.0]);
    }

    #[test]
    fn conv_nm_kernel_matches_reference_bitwise() {
        let mut rng = XorShiftRng::new(42);
        for &(out_c, krows, n_cols) in &[(5usize, 12usize, 19usize), (8, 9, 8), (3, 4, 33)] {
            let w: Vec<f32> = (0..out_c * krows)
                .map(|_| rng.next_uniform() * 2.0 - 1.0)
                .collect();
            let cols: Vec<f32> = (0..krows * n_cols)
                .map(|_| rng.next_uniform() * 2.0 - 1.0)
                .collect();
            let bias: Vec<f32> = (0..out_c).map(|_| rng.next_uniform()).collect();
            let (vals, idx) = select_nm_conv(&w, out_c, krows, 2, 4);
            let nnz = nm_nnz(krows, 2, 4);
            let mut fast = vec![0.0f32; out_c * n_cols];
            let mut slow = vec![0.0f32; out_c * n_cols];
            for relu in [false, true] {
                conv_nm_gemm_into(
                    &vals,
                    &idx,
                    Some(&bias),
                    &cols,
                    &mut fast,
                    out_c,
                    nnz,
                    n_cols,
                    relu,
                    2,
                );
                conv_nm_gemm_reference(
                    &vals,
                    &idx,
                    Some(&bias),
                    &cols,
                    &mut slow,
                    out_c,
                    nnz,
                    n_cols,
                    relu,
                );
                assert_eq!(fast, slow);
            }
        }
    }

    #[test]
    fn conv_nm_i8_kernel_matches_reference_bitwise() {
        let mut rng = XorShiftRng::new(43);
        for &(out_c, krows, n_cols) in &[(6usize, 16usize, 21usize), (5, 11, 7)] {
            let w: Vec<f32> = (0..out_c * krows)
                .map(|_| rng.next_uniform() * 2.0 - 1.0)
                .collect();
            let (vals, idx) = select_nm_conv(&w, out_c, krows, 4, 8);
            let nnz = nm_nnz(krows, 4, 8);
            let (qv, wsc) = quantize_nm_conv_i8(&vals, out_c, nnz);
            let cols: Vec<i8> = (0..krows * n_cols)
                .map(|_| (rng.next_u64() % 255) as i8)
                .collect();
            let csc: Vec<f32> = (0..n_cols).map(|_| rng.next_uniform() * 0.01).collect();
            let bias: Vec<f32> = (0..out_c).map(|_| rng.next_uniform()).collect();
            let mut fast = vec![0.0f32; out_c * n_cols];
            let mut slow = vec![0.0f32; out_c * n_cols];
            for relu in [false, true] {
                conv_nm_gemm_i8_into(
                    &qv,
                    &wsc,
                    &idx,
                    &cols,
                    &csc,
                    Some(&bias),
                    &mut fast,
                    out_c,
                    nnz,
                    n_cols,
                    relu,
                    2,
                );
                conv_nm_gemm_i8_reference(
                    &qv,
                    &wsc,
                    &idx,
                    &cols,
                    &csc,
                    Some(&bias),
                    &mut slow,
                    out_c,
                    nnz,
                    n_cols,
                    relu,
                );
                assert_eq!(fast, slow);
            }
        }
    }

    #[test]
    fn dense_nm_kernels_match_references_bitwise() {
        let mut rng = XorShiftRng::new(44);
        for &(batch, n_in, n_out) in &[(6usize, 12usize, 10usize), (1, 9, 17), (5, 8, 8)] {
            let wt: Vec<f32> = (0..n_in * n_out)
                .map(|_| rng.next_uniform() * 2.0 - 1.0)
                .collect();
            let a: Vec<f32> = (0..batch * n_in)
                .map(|_| rng.next_uniform() * 2.0 - 1.0)
                .collect();
            let bias: Vec<f32> = (0..n_out).map(|_| rng.next_uniform()).collect();
            let (vals, idx) = select_nm_dense(&wt, n_in, n_out, 2, 4);
            let nnz = nm_nnz(n_in, 2, 4);
            let mut fast = vec![0.0f32; batch * n_out];
            let mut slow = vec![0.0f32; batch * n_out];
            dense_nm_batch_into(
                &a, &vals, &idx, &bias, &mut fast, batch, n_in, n_out, nnz, 2,
            );
            dense_nm_batch_reference(&a, &vals, &idx, &bias, &mut slow, batch, n_in, n_out, nnz);
            assert_eq!(fast, slow);

            // int8 twin
            let (qv, wsc) = quantize_nm_dense_i8(&vals, n_out, nnz);
            let mut qa = vec![0i8; batch * n_in];
            let mut asc = vec![0.0f32; batch];
            for b in 0..batch {
                asc[b] = crate::quantize_slice_i8(
                    &a[b * n_in..(b + 1) * n_in],
                    &mut qa[b * n_in..(b + 1) * n_in],
                );
            }
            dense_nm_batch_i8_into(
                &qa, &asc, &qv, &wsc, &idx, &bias, &mut fast, batch, n_in, n_out, nnz, 2,
            );
            dense_nm_batch_i8_reference(
                &qa, &asc, &qv, &wsc, &idx, &bias, &mut slow, batch, n_in, n_out, nnz,
            );
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn dense_nm_chw_matches_flat_flattening() {
        // CHW entry must equal flattening + flat entry bitwise
        let mut rng = XorShiftRng::new(45);
        let (batch, channels, plane, n_out) = (3usize, 4usize, 5usize, 9usize);
        let n_in = channels * plane;
        let wt: Vec<f32> = (0..n_in * n_out)
            .map(|_| rng.next_uniform() * 2.0 - 1.0)
            .collect();
        let bias: Vec<f32> = (0..n_out).map(|_| rng.next_uniform()).collect();
        let (vals, idx) = select_nm_dense(&wt, n_in, n_out, 2, 4);
        let nnz = nm_nnz(n_in, 2, 4);
        // channel-major batched CHW activation and its flattened twin
        let chw: Vec<f32> = (0..n_in * batch)
            .map(|_| rng.next_uniform() * 2.0 - 1.0)
            .collect();
        let mut flat = vec![0.0f32; batch * n_in];
        for b in 0..batch {
            for c in 0..channels {
                for p in 0..plane {
                    flat[b * n_in + c * plane + p] = chw[(c * batch + b) * plane + p];
                }
            }
        }
        let mut out_chw = vec![0.0f32; batch * n_out];
        let mut out_flat = vec![0.0f32; batch * n_out];
        dense_nm_batch_chw_into(
            &chw,
            &vals,
            &idx,
            &bias,
            &mut out_chw,
            batch,
            channels,
            plane,
            n_out,
            nnz,
            1,
        );
        dense_nm_batch_into(
            &flat,
            &vals,
            &idx,
            &bias,
            &mut out_flat,
            batch,
            n_in,
            n_out,
            nnz,
            1,
        );
        assert_eq!(out_chw, out_flat);
    }

    #[test]
    fn empty_reduction_outputs_bias_only() {
        // krows = 0: no nonzeros, outputs are the (ReLU'd) bias
        let bias = [0.5f32, -0.25];
        let mut out = vec![0.0f32; 2 * 3];
        conv_nm_gemm_into(&[], &[], Some(&bias), &[], &mut out, 2, 0, 3, true, 1);
        assert_eq!(out, vec![0.5, 0.5, 0.5, 0.0, 0.0, 0.0]);
    }
}
