//! The dense, contiguous, row-major `f32` tensor.

use crate::error::TensorError;
use crate::ops;
use crate::rng::XorShiftRng;
use crate::shape::Shape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, contiguous, row-major tensor of `f32` values.
///
/// This is the single numeric container used throughout the CAP'NN
/// reproduction: network weights, activations, firing-rate matrices and
/// datasets are all `Tensor`s.
///
/// # Examples
///
/// ```
/// use capnn_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
/// assert_eq!(t.get(&[1, 2]), Some(6.0));
/// assert_eq!(t.sum(), 21.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let data = vec![0.0; shape.volume()];
        Self { shape, data }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let data = vec![value; shape.volume()];
        Self { shape, data }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the product of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(dims);
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Self { shape, data })
    }

    /// Creates a tensor by evaluating `f` at each flat index.
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.volume()).map(&mut f).collect();
        Self { shape, data }
    }

    /// Creates a tensor with elements drawn uniformly from `[lo, hi)`.
    pub fn uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut XorShiftRng) -> Self {
        Self::from_fn(dims, |_| rng.next_uniform() * (hi - lo) + lo)
    }

    /// Creates a tensor with approximately standard-normal elements scaled by
    /// `std` (Box–Muller on the in-repo RNG).
    pub fn randn(dims: &[usize], std: f32, rng: &mut XorShiftRng) -> Self {
        Self::from_fn(dims, |_| rng.next_gaussian() * std)
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension sizes, as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index, or `None` if out of bounds.
    pub fn get(&self, index: &[usize]) -> Option<f32> {
        self.shape.offset(index).map(|o| self.data[o])
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index is invalid.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<(), TensorError> {
        match self.shape.offset(index) {
            Some(o) => {
                self.data[o] = value;
                Ok(())
            }
            None => Err(TensorError::IndexOutOfBounds {
                index: *index.last().unwrap_or(&0),
                bound: *self.shape.dims().last().unwrap_or(&0),
            }),
        }
    }

    /// Returns a copy reshaped to `dims`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Self, TensorError> {
        Self::from_vec(self.data.clone(), dims)
    }

    /// Reshapes in place (no reallocation).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn reshape_in_place(&mut self, dims: &[usize]) -> Result<(), TensorError> {
        let shape = Shape::new(dims);
        if shape.volume() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: self.data.len(),
            });
        }
        self.shape = shape;
        Ok(())
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise binary operation against another tensor of the same shape.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the shapes differ.
    pub fn zip_map(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Result<Self, TensorError> {
        if self.shape != other.shape {
            return Err(crate::ShapeError::new(format!(
                "elementwise op on {} vs {}",
                self.shape, other.shape
            ))
            .into());
        }
        Ok(Self {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the shapes differ.
    pub fn add(&self, other: &Self) -> Result<Self, TensorError> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the shapes differ.
    pub fn sub(&self, other: &Self) -> Result<Self, TensorError> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise multiplication (Hadamard product).
    ///
    /// # Errors
    ///
    /// Returns a shape error if the shapes differ.
    pub fn mul(&self, other: &Self) -> Result<Self, TensorError> {
        self.zip_map(other, |a, b| a * b)
    }

    /// Scales every element by `s`, returning a new tensor.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// Adds `s * other` into `self` in place (axpy).
    ///
    /// # Errors
    ///
    /// Returns a shape error if the shapes differ.
    pub fn axpy_in_place(&mut self, s: f32, other: &Self) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(crate::ShapeError::new(format!(
                "axpy on {} vs {}",
                self.shape, other.shape
            ))
            .into());
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
        Ok(())
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element, or `None` for an empty tensor.
    pub fn max(&self) -> Option<f32> {
        self.data.iter().copied().fold(None, |acc, x| match acc {
            None => Some(x),
            Some(m) => Some(m.max(x)),
        })
    }

    /// Index of the maximum element (ties resolve to the first), or `None`
    /// for an empty tensor.
    pub fn argmax(&self) -> Option<usize> {
        let mut best: Option<(usize, f32)> = None;
        for (i, &x) in self.data.iter().enumerate() {
            match best {
                None => best = Some((i, x)),
                Some((_, bx)) if x > bx => best = Some((i, x)),
                _ => {}
            }
        }
        best.map(|(i, _)| i)
    }

    /// Indices of the `k` largest elements, in descending order of value.
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.data.len()).collect();
        idx.sort_by(|&a, &b| {
            self.data[b]
                .partial_cmp(&self.data[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        idx.truncate(k);
        idx
    }

    /// Fraction of elements strictly greater than zero.
    pub fn fraction_positive(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let n = self.data.iter().filter(|&&x| x > 0.0).count();
        n as f32 / self.data.len() as f32
    }

    /// Matrix multiplication `self (m×k) * other (k×n)`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if either operand is not rank 2 or the inner
    /// dimensions differ.
    pub fn matmul(&self, other: &Self) -> Result<Self, TensorError> {
        ops::matmul(self, other)
    }

    /// Returns the transposed copy of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the tensor is not rank 2.
    pub fn transpose(&self) -> Result<Self, TensorError> {
        if self.shape.rank() != 2 {
            return Err(crate::ShapeError::new(format!(
                "transpose of rank-{} tensor",
                self.shape.rank()
            ))
            .into());
        }
        let (m, n) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = Self::zeros(&[n, m]);
        for i in 0..m {
            for j in 0..n {
                out.data[j * m + i] = self.data[i * n + j];
            }
        }
        Ok(out)
    }

    /// Extracts row `r` of a rank-2 tensor as a rank-1 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `r` is out of bounds.
    pub fn row(&self, r: usize) -> Self {
        assert_eq!(self.shape.rank(), 2, "row() requires a rank-2 tensor");
        let n = self.shape.dim(1);
        let data = self.data[r * n..(r + 1) * n].to_vec();
        Self {
            shape: Shape::new(&[n]),
            data,
        }
    }

    /// Squared L2 norm of all elements.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Self::zeros(&[0])
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} n={}", self.shape, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros(&[2, 2]).sum(), 0.0);
        assert_eq!(Tensor::ones(&[2, 2]).sum(), 4.0);
        assert_eq!(Tensor::full(&[3], 2.5).sum(), 7.5);
    }

    #[test]
    fn eye_diagonal() {
        let t = Tensor::eye(3);
        assert_eq!(t.get(&[0, 0]), Some(1.0));
        assert_eq!(t.get(&[1, 2]), Some(0.0));
        assert_eq!(t.sum(), 3.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 9.0).unwrap();
        assert_eq!(t.get(&[1, 2]), Some(9.0));
        assert_eq!(t.get(&[2, 0]), None);
        assert!(t.set(&[0, 3], 1.0).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor::from_vec(vec![1.0, -2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert_eq!(a.map(|x| x.abs()).as_slice(), &[1.0, 2.0]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[4.0, 2.0]);
        assert_eq!(a.sub(&b).unwrap().as_slice(), &[-2.0, -6.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[3.0, -8.0]);
        let c = Tensor::zeros(&[3]);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn axpy_in_place_accumulates() {
        let mut a = Tensor::ones(&[3]);
        let b = Tensor::full(&[3], 2.0);
        a.axpy_in_place(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 2.0, 2.0]);
        let c = Tensor::zeros(&[2]);
        assert!(a.axpy_in_place(1.0, &c).is_err());
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, 5.0, 3.0], &[3]).unwrap();
        assert_eq!(t.mean(), 3.0);
        assert_eq!(t.max(), Some(5.0));
        assert_eq!(t.argmax(), Some(1));
        assert_eq!(t.norm_sq(), 35.0);
    }

    #[test]
    fn argmax_ties_take_first() {
        let t = Tensor::from_vec(vec![2.0, 2.0, 1.0], &[3]).unwrap();
        assert_eq!(t.argmax(), Some(0));
    }

    #[test]
    fn top_k_descending() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.7], &[4]).unwrap();
        assert_eq!(t.top_k(2), vec![1, 3]);
        assert_eq!(t.top_k(10), vec![1, 3, 2, 0]);
        assert!(t.top_k(0).is_empty());
    }

    #[test]
    fn fraction_positive_counts_strictly_positive() {
        let t = Tensor::from_vec(vec![1.0, 0.0, -1.0, 2.0], &[4]).unwrap();
        assert_eq!(t.fraction_positive(), 0.5);
        assert_eq!(Tensor::zeros(&[0]).fraction_positive(), 0.0);
    }

    #[test]
    fn transpose_rank2() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let tt = t.transpose().unwrap();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.get(&[2, 1]), Some(6.0));
        assert!(Tensor::zeros(&[2, 2, 2]).transpose().is_err());
    }

    #[test]
    fn row_extraction() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(t.row(1).as_slice(), &[3.0, 4.0]);
    }

    #[test]
    fn random_fills_in_range() {
        let mut rng = XorShiftRng::new(42);
        let t = Tensor::uniform(&[100], -1.0, 1.0, &mut rng);
        assert!(t.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
        let g = Tensor::randn(&[1000], 1.0, &mut rng);
        // loose sanity check on the Gaussian: mean near 0, std near 1
        assert!(g.mean().abs() < 0.2);
        assert!((g.norm_sq() / 1000.0 - 1.0).abs() < 0.3);
    }

    #[test]
    fn empty_tensor_edge_cases() {
        let t = Tensor::zeros(&[0]);
        assert!(t.is_empty());
        assert_eq!(t.max(), None);
        assert_eq!(t.argmax(), None);
        assert_eq!(t.mean(), 0.0);
    }

    #[test]
    fn display_mentions_shape() {
        let t = Tensor::zeros(&[2, 2]);
        assert!(t.to_string().contains("[2x2]"));
    }
}
