//! 2-D convolution via im2col + matmul, with a reference direct kernel.
//!
//! Activations are laid out `[channels, height, width]` (CHW); weights are
//! `[out_channels, in_channels, kh, kw]`.
//!
//! Two execution-engine entry points supplement the plain
//! [`conv2d_im2col`]: [`conv2d_im2col_scratch`] reuses a [`ConvScratch`]
//! workspace so the unfold buffer is allocated once and recycled across
//! calls, and [`conv2d_masked`] computes only the *kept* output channels
//! while dropping pruned input channels from the unfold entirely — the
//! structured compute-skipping that turns a CAP'NN prune mask into actual
//! saved multiply–accumulates.

use crate::error::TensorError;
use crate::ops::matmul_into;
use crate::parallel;
use crate::{ShapeError, Tensor};
use serde::{Deserialize, Serialize};

/// Static description of a 2-D convolution.
///
/// # Examples
///
/// ```
/// use capnn_tensor::Conv2dSpec;
///
/// let spec = Conv2dSpec::new(3, 8, 3, 1, 1);
/// assert_eq!(spec.output_hw(32, 32), (32, 32));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2dSpec {
    /// Input channel count.
    pub in_channels: usize,
    /// Output channel count.
    pub out_channels: usize,
    /// Square kernel side length.
    pub kernel: usize,
    /// Stride along both spatial axes.
    pub stride: usize,
    /// Zero padding along both spatial axes.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Creates a spec for a square-kernel convolution.
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0` or `stride == 0`.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        assert!(kernel > 0, "kernel must be positive");
        assert!(stride > 0, "stride must be positive");
        Self {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
        }
    }

    /// Spatial output size for an input of `h`×`w`. A kernel larger than
    /// the padded input yields `0` along that axis (no valid placement).
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let axis = |dim: usize| {
            let padded = dim + 2 * self.padding;
            if padded < self.kernel {
                0
            } else {
                (padded - self.kernel) / self.stride + 1
            }
        };
        (axis(h), axis(w))
    }

    /// Number of weight parameters (excluding biases).
    pub fn weight_count(&self) -> usize {
        self.out_channels * self.in_channels * self.kernel * self.kernel
    }

    /// Multiply–accumulate operations for one input of `h`×`w`.
    pub fn mac_count(&self, h: usize, w: usize) -> u64 {
        let (oh, ow) = self.output_hw(h, w);
        (self.out_channels * oh * ow) as u64 * (self.in_channels * self.kernel * self.kernel) as u64
    }
}

/// Reusable convolution workspace: the im2col unfold buffer, the gathered
/// weight rows for masked execution, and the compact output staging
/// buffer. After the first call at a given geometry every conv through
/// the scratch is allocation-free except for the returned output tensor.
#[derive(Debug, Clone, Default)]
pub struct ConvScratch {
    /// im2col matrix, `[rows × (oh·ow)]` row-major.
    cols: Vec<f32>,
    /// Gathered weight rows for the kept output channels (masked path).
    wrows: Vec<f32>,
    /// Compact `[kept_out × (oh·ow)]` result before scattering (masked
    /// path).
    omat: Vec<f32>,
}

impl ConvScratch {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Unfolds a CHW input into an im2col matrix of shape
/// `[channels.len() * k * k, oh * ow]`, written into `cols` (resized and
/// zeroed; no allocation once capacity suffices). `channels` lists the
/// input channels to include, in increasing order — pruned channels are
/// simply absent from the unfold.
fn im2col_into(
    iv: &[f32],
    spec: &Conv2dSpec,
    h: usize,
    w: usize,
    channels: &[usize],
    cols: &mut Vec<f32>,
) {
    let (oh, ow) = spec.output_hw(h, w);
    let k = spec.kernel;
    let ncols = oh * ow;
    let rows = channels.len() * k * k;
    cols.clear();
    cols.resize(rows * ncols, 0.0);
    for (ci, &c) in channels.iter().enumerate() {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ci * k + ky) * k + kx;
                let base = row * ncols;
                for oy in 0..oh {
                    let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let in_row = (c * h + iy as usize) * w;
                    for ox in 0..ow {
                        let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        cols[base + oy * ow + ox] = iv[in_row + ix as usize];
                    }
                }
            }
        }
    }
}

/// Strided im2col for batched channel-major activations: unfolds one
/// sample whose channel planes live `chan_stride` elements apart starting
/// at `base` (`input[base + c*chan_stride ..]` is channel `c`'s `h×w`
/// plane), writing its `oh·ow` unfold columns into the column window
/// `[col_offset, col_offset + oh·ow)` of a wide
/// `[spec.in_channels·k² × dst_cols]` matrix `cols`. The destination must
/// be pre-zeroed (padding cells are left untouched).
///
/// With `chan_stride = h·w`, `base = 0` and `dst_cols = oh·ow` this
/// reproduces the single-sample unfold used by [`conv2d_im2col`]; a
/// batched caller lays `B` samples side by side (sample `b` at
/// `col_offset = b·oh·ow`) so a *single* GEMM convolves the whole batch —
/// the im2col amortization behind `CompiledPlan::forward_batch` in
/// `capnn-nn`.
#[allow(clippy::too_many_arguments)]
pub fn im2col_strided_into(
    input: &[f32],
    spec: &Conv2dSpec,
    h: usize,
    w: usize,
    chan_stride: usize,
    base: usize,
    dst_cols: usize,
    col_offset: usize,
    cols: &mut [f32],
) {
    let (oh, ow) = spec.output_hw(h, w);
    let k = spec.kernel;
    for c in 0..spec.in_channels {
        for ky in 0..k {
            for kx in 0..k {
                let row = (c * k + ky) * k + kx;
                let rbase = row * dst_cols + col_offset;
                for oy in 0..oh {
                    let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let in_row = base + c * chan_stride + iy as usize * w;
                    for ox in 0..ow {
                        let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        cols[rbase + oy * ow + ox] = input[in_row + ix as usize];
                    }
                }
            }
        }
    }
}

fn check_conv_inputs(
    input: &Tensor,
    weights: &Tensor,
    spec: &Conv2dSpec,
) -> Result<(usize, usize), TensorError> {
    if input.shape().rank() != 3 || input.dims()[0] != spec.in_channels {
        return Err(ShapeError::new(format!(
            "conv2d input must be [{}, h, w], got {}",
            spec.in_channels,
            input.shape()
        ))
        .into());
    }
    let expected_w = [
        spec.out_channels,
        spec.in_channels,
        spec.kernel,
        spec.kernel,
    ];
    if weights.dims() != expected_w {
        return Err(ShapeError::new(format!(
            "conv2d weights must be [{}x{}x{}x{}], got {}",
            expected_w[0],
            expected_w[1],
            expected_w[2],
            expected_w[3],
            weights.shape()
        ))
        .into());
    }
    let (h, w) = (input.dims()[1], input.dims()[2]);
    let (oh, ow) = spec.output_hw(h, w);
    if oh == 0 || ow == 0 {
        return Err(ShapeError::new(format!(
            "conv2d kernel {} exceeds padded input {}x{} (+2*{}): empty output",
            spec.kernel, h, w, spec.padding
        ))
        .into());
    }
    Ok((h, w))
}

fn check_bias(bias: Option<&Tensor>, spec: &Conv2dSpec) -> Result<(), TensorError> {
    if let Some(b) = bias {
        if b.len() != spec.out_channels {
            return Err(ShapeError::new(format!(
                "conv2d bias must have {} elements, got {}",
                spec.out_channels,
                b.len()
            ))
            .into());
        }
    }
    Ok(())
}

/// 2-D convolution via im2col + matmul. Input is CHW; output is
/// `[out_channels, oh, ow]`. `bias` must have `out_channels` elements if
/// provided.
///
/// # Errors
///
/// Returns a shape error if input/weight/bias dimensions are inconsistent
/// or the kernel exceeds the padded input.
pub fn conv2d_im2col(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&Tensor>,
    spec: &Conv2dSpec,
) -> Result<Tensor, TensorError> {
    let mut scratch = ConvScratch::new();
    conv2d_im2col_scratch(input, weights, bias, spec, &mut scratch)
}

/// [`conv2d_im2col`] through a reusable [`ConvScratch`]: the unfold
/// buffer is recycled across calls, so after warmup the only allocation
/// is the returned output tensor.
///
/// # Errors
///
/// Same conditions as [`conv2d_im2col`].
pub fn conv2d_im2col_scratch(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&Tensor>,
    spec: &Conv2dSpec,
    scratch: &mut ConvScratch,
) -> Result<Tensor, TensorError> {
    let (h, w) = check_conv_inputs(input, weights, spec)?;
    check_bias(bias, spec)?;
    let (oh, ow) = spec.output_hw(h, w);
    let plane = oh * ow;
    let krows = spec.in_channels * spec.kernel * spec.kernel;
    let all_channels: Vec<usize> = (0..spec.in_channels).collect();
    im2col_into(
        input.as_slice(),
        spec,
        h,
        w,
        &all_channels,
        &mut scratch.cols,
    );
    let mut out = Tensor::zeros(&[spec.out_channels, oh, ow]);
    matmul_into(
        weights.as_slice(),
        &scratch.cols,
        out.as_mut_slice(),
        spec.out_channels,
        krows,
        plane,
        parallel::max_threads(),
    );
    if let Some(b) = bias {
        let ov = out.as_mut_slice();
        for (c, &bc) in b.as_slice().iter().enumerate() {
            for v in &mut ov[c * plane..(c + 1) * plane] {
                *v += bc;
            }
        }
    }
    Ok(out)
}

/// Mask-aware convolution: computes only the output channels listed in
/// `kept_out` and unfolds only the input channels listed in `kept_in`
/// (both strictly increasing). Pruned output channels are exactly zero in
/// the returned full-shape `[out_channels, oh, ow]` tensor, and pruned
/// input channels — whose activations a mask-aware engine has already
/// zeroed — contribute no multiply–accumulates at all.
///
/// With fraction `p` of channels pruned on both sides this does
/// `(1-p)²` of the dense work. The result is numerically identical to
/// running [`conv2d_im2col`] on the zero-padded activation and then
/// zeroing pruned output planes (dropped terms are exact zeros; the
/// summation order of the surviving terms is unchanged).
///
/// # Errors
///
/// Returns a shape error if dimensions are inconsistent or an index in
/// `kept_out`/`kept_in` is out of range or not strictly increasing.
pub fn conv2d_masked(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&Tensor>,
    spec: &Conv2dSpec,
    kept_out: &[usize],
    kept_in: &[usize],
    scratch: &mut ConvScratch,
) -> Result<Tensor, TensorError> {
    let (h, w) = check_conv_inputs(input, weights, spec)?;
    check_bias(bias, spec)?;
    check_strictly_increasing(kept_out, spec.out_channels, "kept_out")?;
    check_strictly_increasing(kept_in, spec.in_channels, "kept_in")?;
    let (oh, ow) = spec.output_hw(h, w);
    let plane = oh * ow;
    let k = spec.kernel;
    let kk = k * k;
    let krows = kept_in.len() * kk;
    let mut out = Tensor::zeros(&[spec.out_channels, oh, ow]);
    if kept_out.is_empty() {
        return Ok(out);
    }

    im2col_into(input.as_slice(), spec, h, w, kept_in, &mut scratch.cols);

    // Gather the weight rows of kept output channels, restricted to kept
    // input channels, preserving increasing channel order so accumulation
    // order matches the dense kernel.
    let wv = weights.as_slice();
    scratch.wrows.clear();
    scratch.wrows.reserve(kept_out.len() * krows);
    for &oc in kept_out {
        for &ic in kept_in {
            let src = (oc * spec.in_channels + ic) * kk;
            scratch.wrows.extend_from_slice(&wv[src..src + kk]);
        }
    }

    scratch.omat.clear();
    scratch.omat.resize(kept_out.len() * plane, 0.0);
    matmul_into(
        &scratch.wrows,
        &scratch.cols,
        &mut scratch.omat,
        kept_out.len(),
        krows,
        plane,
        parallel::max_threads(),
    );

    let ov = out.as_mut_slice();
    for (no, &oc) in kept_out.iter().enumerate() {
        let dst = &mut ov[oc * plane..(oc + 1) * plane];
        dst.copy_from_slice(&scratch.omat[no * plane..(no + 1) * plane]);
        if let Some(b) = bias {
            let bc = b.as_slice()[oc];
            for v in dst {
                *v += bc;
            }
        }
    }
    Ok(out)
}

fn check_strictly_increasing(
    indices: &[usize],
    bound: usize,
    name: &str,
) -> Result<(), TensorError> {
    let mut prev: Option<usize> = None;
    for &i in indices {
        if i >= bound {
            return Err(ShapeError::new(format!(
                "{name} index {i} out of range for {bound} channels"
            ))
            .into());
        }
        if let Some(p) = prev {
            if i <= p {
                return Err(ShapeError::new(format!(
                    "{name} must be strictly increasing, got {p} then {i}"
                ))
                .into());
            }
        }
        prev = Some(i);
    }
    Ok(())
}

/// Reference direct convolution; used to cross-check the im2col path in
/// tests. Same contract as [`conv2d_im2col`].
///
/// # Errors
///
/// Returns a shape error if input/weight dimensions are inconsistent.
pub fn conv2d(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&Tensor>,
    spec: &Conv2dSpec,
) -> Result<Tensor, TensorError> {
    let (h, w) = check_conv_inputs(input, weights, spec)?;
    let (oh, ow) = spec.output_hw(h, w);
    let mut out = Tensor::zeros(&[spec.out_channels, oh, ow]);
    let iv = input.as_slice();
    let wv = weights.as_slice();
    let ov = out.as_mut_slice();
    let k = spec.kernel;
    for oc in 0..spec.out_channels {
        let bias_v = bias.map_or(0.0, |b| b.as_slice()[oc]);
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = bias_v;
                for ic in 0..spec.in_channels {
                    for ky in 0..k {
                        let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let wi = ((oc * spec.in_channels + ic) * k + ky) * k + kx;
                            let ii = (ic * h + iy as usize) * w + ix as usize;
                            acc += wv[wi] * iv[ii];
                        }
                    }
                }
                ov[(oc * oh + oy) * ow + ox] = acc;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{matmul, XorShiftRng};

    #[test]
    fn output_hw_padding_stride() {
        let s = Conv2dSpec::new(1, 1, 3, 1, 1);
        assert_eq!(s.output_hw(8, 8), (8, 8));
        let s2 = Conv2dSpec::new(1, 1, 3, 2, 0);
        assert_eq!(s2.output_hw(7, 7), (3, 3));
    }

    #[test]
    fn output_hw_kernel_larger_than_input_is_empty() {
        // Regression: kernel 5 over a 2x2 input with padding 1 has no valid
        // placement — this used to report a spurious 1x1 output.
        let s = Conv2dSpec::new(1, 1, 5, 1, 1);
        assert_eq!(s.output_hw(2, 2), (0, 0));
        assert_eq!(s.mac_count(2, 2), 0);
        // exactly fitting placement still works
        assert_eq!(s.output_hw(3, 3), (1, 1));
        // and the conv kernels reject the degenerate geometry outright
        let input = Tensor::zeros(&[1, 2, 2]);
        let w = Tensor::zeros(&[1, 1, 5, 5]);
        assert!(conv2d_im2col(&input, &w, None, &s).is_err());
        assert!(conv2d(&input, &w, None, &s).is_err());
    }

    #[test]
    fn counts() {
        let s = Conv2dSpec::new(3, 8, 3, 1, 1);
        assert_eq!(s.weight_count(), 8 * 3 * 9);
        assert_eq!(s.mac_count(4, 4), (8 * 16) as u64 * (3 * 9) as u64);
    }

    #[test]
    fn identity_kernel_passthrough() {
        // 1x1 kernel with weight 1 reproduces the input.
        let spec = Conv2dSpec::new(1, 1, 1, 1, 0);
        let input = Tensor::from_vec((0..9).map(|i| i as f32).collect(), &[1, 3, 3]).unwrap();
        let w = Tensor::ones(&[1, 1, 1, 1]);
        let out = conv2d_im2col(&input, &w, None, &spec).unwrap();
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn known_3x3_sum_kernel() {
        // all-ones 3x3 kernel over an all-ones 3x3 input, no padding → 9
        let spec = Conv2dSpec::new(1, 1, 3, 1, 0);
        let input = Tensor::ones(&[1, 3, 3]);
        let w = Tensor::ones(&[1, 1, 3, 3]);
        let out = conv2d_im2col(&input, &w, None, &spec).unwrap();
        assert_eq!(out.dims(), &[1, 1, 1]);
        assert_eq!(out.as_slice(), &[9.0]);
    }

    #[test]
    fn bias_is_added_per_channel() {
        let spec = Conv2dSpec::new(1, 2, 1, 1, 0);
        let input = Tensor::ones(&[1, 2, 2]);
        let w = Tensor::zeros(&[2, 1, 1, 1]);
        let bias = Tensor::from_vec(vec![1.5, -2.0], &[2]).unwrap();
        let out = conv2d_im2col(&input, &w, Some(&bias), &spec).unwrap();
        assert_eq!(
            out.as_slice(),
            &[1.5, 1.5, 1.5, 1.5, -2.0, -2.0, -2.0, -2.0]
        );
    }

    #[test]
    fn im2col_matches_direct_reference() {
        let mut rng = XorShiftRng::new(42);
        for &(c_in, c_out, k, s, p, h) in &[
            (1usize, 2usize, 3usize, 1usize, 1usize, 6usize),
            (3, 4, 3, 1, 1, 8),
            (2, 2, 2, 2, 0, 6),
            (3, 5, 3, 2, 1, 7),
            (4, 1, 1, 1, 0, 5),
        ] {
            let spec = Conv2dSpec::new(c_in, c_out, k, s, p);
            let input = Tensor::uniform(&[c_in, h, h], -1.0, 1.0, &mut rng);
            let w = Tensor::uniform(&[c_out, c_in, k, k], -1.0, 1.0, &mut rng);
            let bias = Tensor::uniform(&[c_out], -0.5, 0.5, &mut rng);
            let a = conv2d_im2col(&input, &w, Some(&bias), &spec).unwrap();
            let b = conv2d(&input, &w, Some(&bias), &spec).unwrap();
            assert_eq!(a.dims(), b.dims());
            for (&x, &y) in a.as_slice().iter().zip(b.as_slice()) {
                assert!((x - y).abs() < 1e-4, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn scratch_path_matches_plain_and_reuses_buffers() {
        let mut rng = XorShiftRng::new(5);
        let spec = Conv2dSpec::new(3, 4, 3, 1, 1);
        let w = Tensor::uniform(&[4, 3, 3, 3], -1.0, 1.0, &mut rng);
        let bias = Tensor::uniform(&[4], -0.5, 0.5, &mut rng);
        let mut scratch = ConvScratch::new();
        for _ in 0..3 {
            let input = Tensor::uniform(&[3, 8, 8], -1.0, 1.0, &mut rng);
            let plain = conv2d_im2col(&input, &w, Some(&bias), &spec).unwrap();
            let fast = conv2d_im2col_scratch(&input, &w, Some(&bias), &spec, &mut scratch).unwrap();
            assert_eq!(plain.as_slice(), fast.as_slice());
        }
    }

    #[test]
    fn masked_conv_matches_zeroed_dense_conv() {
        let mut rng = XorShiftRng::new(6);
        let spec = Conv2dSpec::new(4, 6, 3, 1, 1);
        let w = Tensor::uniform(&[6, 4, 3, 3], -1.0, 1.0, &mut rng);
        let bias = Tensor::uniform(&[6], -0.5, 0.5, &mut rng);
        let kept_in = [0usize, 2, 3];
        let kept_out = [1usize, 2, 4, 5];
        // the engine contract: pruned input channels are already zero
        let mut input = Tensor::uniform(&[4, 7, 7], -1.0, 1.0, &mut rng);
        {
            let plane = 49;
            let iv = input.as_mut_slice();
            for v in &mut iv[plane..2 * plane] {
                *v = 0.0; // channel 1 pruned upstream
            }
        }
        let dense = conv2d_im2col(&input, &w, Some(&bias), &spec).unwrap();
        let mut scratch = ConvScratch::new();
        let masked = conv2d_masked(
            &input,
            &w,
            Some(&bias),
            &spec,
            &kept_out,
            &kept_in,
            &mut scratch,
        )
        .unwrap();
        let plane = 49;
        for oc in 0..6 {
            let m = &masked.as_slice()[oc * plane..(oc + 1) * plane];
            if kept_out.contains(&oc) {
                let d = &dense.as_slice()[oc * plane..(oc + 1) * plane];
                for (&x, &y) in m.iter().zip(d) {
                    assert!((x - y).abs() < 1e-6, "channel {oc}: {x} vs {y}");
                }
            } else {
                assert!(m.iter().all(|&v| v == 0.0), "pruned channel {oc} not zero");
            }
        }
    }

    #[test]
    fn masked_conv_empty_kept_sets() {
        let mut rng = XorShiftRng::new(7);
        let spec = Conv2dSpec::new(2, 3, 3, 1, 1);
        let w = Tensor::uniform(&[3, 2, 3, 3], -1.0, 1.0, &mut rng);
        let bias = Tensor::from_vec(vec![0.5, -1.0, 2.0], &[3]).unwrap();
        let input = Tensor::zeros(&[2, 5, 5]);
        let mut scratch = ConvScratch::new();
        // no kept outputs → all-zero result
        let none =
            conv2d_masked(&input, &w, Some(&bias), &spec, &[], &[0, 1], &mut scratch).unwrap();
        assert!(none.as_slice().iter().all(|&v| v == 0.0));
        // no kept inputs → kept outputs are pure bias planes
        let bias_only =
            conv2d_masked(&input, &w, Some(&bias), &spec, &[0, 2], &[], &mut scratch).unwrap();
        let plane = 25;
        assert!(bias_only.as_slice()[..plane].iter().all(|&v| v == 0.5));
        assert!(bias_only.as_slice()[plane..2 * plane]
            .iter()
            .all(|&v| v == 0.0));
        assert!(bias_only.as_slice()[2 * plane..].iter().all(|&v| v == 2.0));
    }

    #[test]
    fn masked_conv_rejects_bad_indices() {
        let spec = Conv2dSpec::new(2, 3, 3, 1, 1);
        let w = Tensor::zeros(&[3, 2, 3, 3]);
        let input = Tensor::zeros(&[2, 5, 5]);
        let mut scratch = ConvScratch::new();
        assert!(conv2d_masked(&input, &w, None, &spec, &[3], &[0], &mut scratch).is_err());
        assert!(conv2d_masked(&input, &w, None, &spec, &[0], &[2], &mut scratch).is_err());
        assert!(conv2d_masked(&input, &w, None, &spec, &[1, 0], &[0], &mut scratch).is_err());
        assert!(conv2d_masked(&input, &w, None, &spec, &[0], &[1, 1], &mut scratch).is_err());
    }

    #[test]
    fn rejects_wrong_shapes() {
        let spec = Conv2dSpec::new(3, 4, 3, 1, 1);
        let input = Tensor::zeros(&[2, 8, 8]); // wrong channel count
        let w = Tensor::zeros(&[4, 3, 3, 3]);
        assert!(conv2d_im2col(&input, &w, None, &spec).is_err());

        let good_input = Tensor::zeros(&[3, 8, 8]);
        let bad_w = Tensor::zeros(&[4, 3, 2, 3]);
        assert!(conv2d_im2col(&good_input, &bad_w, None, &spec).is_err());

        let good_w = Tensor::zeros(&[4, 3, 3, 3]);
        let bad_bias = Tensor::zeros(&[3]);
        assert!(conv2d_im2col(&good_input, &good_w, Some(&bad_bias), &spec).is_err());
    }

    #[test]
    #[should_panic(expected = "kernel must be positive")]
    fn zero_kernel_panics() {
        Conv2dSpec::new(1, 1, 0, 1, 0);
    }

    #[test]
    fn strided_im2col_matches_plain_unfold() {
        let mut rng = XorShiftRng::new(13);
        let spec = Conv2dSpec::new(3, 1, 3, 2, 1);
        let (h, w) = (7usize, 6usize);
        let (oh, ow) = spec.output_hw(h, w);
        let ncols = oh * ow;
        let krows = spec.in_channels * spec.kernel * spec.kernel;
        let s0 = Tensor::uniform(&[3, h, w], -1.0, 1.0, &mut rng);
        let s1 = Tensor::uniform(&[3, h, w], -1.0, 1.0, &mut rng);

        // single-sample: same cells as the private unfold
        let all: Vec<usize> = (0..3).collect();
        let mut want = Vec::new();
        im2col_into(s0.as_slice(), &spec, h, w, &all, &mut want);
        let mut got = vec![0.0f32; krows * ncols];
        im2col_strided_into(s0.as_slice(), &spec, h, w, h * w, 0, ncols, 0, &mut got);
        assert_eq!(got, want);

        // batched channel-major layout: two samples side by side
        let plane = h * w;
        let batch = 2usize;
        let mut chw = vec![0.0f32; batch * 3 * plane];
        for (b, s) in [&s0, &s1].iter().enumerate() {
            for c in 0..3 {
                chw[(c * batch + b) * plane..(c * batch + b + 1) * plane]
                    .copy_from_slice(&s.as_slice()[c * plane..(c + 1) * plane]);
            }
        }
        let wide_cols = batch * ncols;
        let mut wide = vec![0.0f32; krows * wide_cols];
        for b in 0..batch {
            im2col_strided_into(
                &chw,
                &spec,
                h,
                w,
                batch * plane,
                b * plane,
                wide_cols,
                b * ncols,
                &mut wide,
            );
        }
        let mut want1 = Vec::new();
        im2col_into(s1.as_slice(), &spec, h, w, &all, &mut want1);
        for r in 0..krows {
            assert_eq!(
                &wide[r * wide_cols..r * wide_cols + ncols],
                &want[r * ncols..(r + 1) * ncols],
                "sample 0 row {r}"
            );
            assert_eq!(
                &wide[r * wide_cols + ncols..(r + 1) * wide_cols],
                &want1[r * ncols..(r + 1) * ncols],
                "sample 1 row {r}"
            );
        }
    }

    #[test]
    fn matmul_still_used_for_plain_conv() {
        // sanity: wmat * cols equals the public conv path (guards the
        // reshape-free weight-slice shortcut in the scratch kernel)
        let mut rng = XorShiftRng::new(8);
        let spec = Conv2dSpec::new(2, 3, 3, 1, 0);
        let input = Tensor::uniform(&[2, 6, 6], -1.0, 1.0, &mut rng);
        let w = Tensor::uniform(&[3, 2, 3, 3], -1.0, 1.0, &mut rng);
        let conv = conv2d_im2col(&input, &w, None, &spec).unwrap();
        let wmat = w.reshape(&[3, 18]).unwrap();
        let all: Vec<usize> = (0..2).collect();
        let mut cols = Vec::new();
        im2col_into(input.as_slice(), &spec, 6, 6, &all, &mut cols);
        let cols_t = Tensor::from_vec(cols, &[18, 16]).unwrap();
        let by_hand = matmul(&wmat, &cols_t).unwrap();
        assert_eq!(conv.as_slice(), by_hand.as_slice());
    }
}
