//! 2-D convolution via im2col + matmul, with a reference direct kernel.
//!
//! Activations are laid out `[channels, height, width]` (CHW); weights are
//! `[out_channels, in_channels, kh, kw]`.

use crate::error::TensorError;
use crate::{matmul, ShapeError, Tensor};
use serde::{Deserialize, Serialize};

/// Static description of a 2-D convolution.
///
/// # Examples
///
/// ```
/// use capnn_tensor::Conv2dSpec;
///
/// let spec = Conv2dSpec::new(3, 8, 3, 1, 1);
/// assert_eq!(spec.output_hw(32, 32), (32, 32));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2dSpec {
    /// Input channel count.
    pub in_channels: usize,
    /// Output channel count.
    pub out_channels: usize,
    /// Square kernel side length.
    pub kernel: usize,
    /// Stride along both spatial axes.
    pub stride: usize,
    /// Zero padding along both spatial axes.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Creates a spec for a square-kernel convolution.
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0` or `stride == 0`.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        assert!(kernel > 0, "kernel must be positive");
        assert!(stride > 0, "stride must be positive");
        Self {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
        }
    }

    /// Spatial output size for an input of `h`×`w`.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding).saturating_sub(self.kernel) / self.stride + 1;
        let ow = (w + 2 * self.padding).saturating_sub(self.kernel) / self.stride + 1;
        (oh, ow)
    }

    /// Number of weight parameters (excluding biases).
    pub fn weight_count(&self) -> usize {
        self.out_channels * self.in_channels * self.kernel * self.kernel
    }

    /// Multiply–accumulate operations for one input of `h`×`w`.
    pub fn mac_count(&self, h: usize, w: usize) -> u64 {
        let (oh, ow) = self.output_hw(h, w);
        (self.out_channels * oh * ow) as u64
            * (self.in_channels * self.kernel * self.kernel) as u64
    }
}

/// Unfolds a CHW input into the im2col matrix of shape
/// `[in_c * k * k, oh * ow]`.
fn im2col(input: &Tensor, spec: &Conv2dSpec, h: usize, w: usize) -> Tensor {
    let (oh, ow) = spec.output_hw(h, w);
    let k = spec.kernel;
    let cols = oh * ow;
    let rows = spec.in_channels * k * k;
    let mut out = Tensor::zeros(&[rows, cols]);
    let iv = input.as_slice();
    let ov = out.as_mut_slice();
    for c in 0..spec.in_channels {
        for ky in 0..k {
            for kx in 0..k {
                let row = (c * k + ky) * k + kx;
                let base = row * cols;
                for oy in 0..oh {
                    let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let in_row = (c * h + iy as usize) * w;
                    for ox in 0..ow {
                        let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        ov[base + oy * ow + ox] = iv[in_row + ix as usize];
                    }
                }
            }
        }
    }
    out
}

fn check_conv_inputs(
    input: &Tensor,
    weights: &Tensor,
    spec: &Conv2dSpec,
) -> Result<(usize, usize), TensorError> {
    if input.shape().rank() != 3 || input.dims()[0] != spec.in_channels {
        return Err(ShapeError::new(format!(
            "conv2d input must be [{}, h, w], got {}",
            spec.in_channels,
            input.shape()
        ))
        .into());
    }
    let expected_w = [
        spec.out_channels,
        spec.in_channels,
        spec.kernel,
        spec.kernel,
    ];
    if weights.dims() != expected_w {
        return Err(ShapeError::new(format!(
            "conv2d weights must be [{}x{}x{}x{}], got {}",
            expected_w[0],
            expected_w[1],
            expected_w[2],
            expected_w[3],
            weights.shape()
        ))
        .into());
    }
    Ok((input.dims()[1], input.dims()[2]))
}

/// 2-D convolution via im2col + matmul. Input is CHW; output is
/// `[out_channels, oh, ow]`. `bias` must have `out_channels` elements if
/// provided.
///
/// # Errors
///
/// Returns a shape error if input/weight/bias dimensions are inconsistent.
pub fn conv2d_im2col(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&Tensor>,
    spec: &Conv2dSpec,
) -> Result<Tensor, TensorError> {
    let (h, w) = check_conv_inputs(input, weights, spec)?;
    if let Some(b) = bias {
        if b.len() != spec.out_channels {
            return Err(ShapeError::new(format!(
                "conv2d bias must have {} elements, got {}",
                spec.out_channels,
                b.len()
            ))
            .into());
        }
    }
    let (oh, ow) = spec.output_hw(h, w);
    let cols = im2col(input, spec, h, w);
    let wmat = weights.reshape(&[
        spec.out_channels,
        spec.in_channels * spec.kernel * spec.kernel,
    ])?;
    let mut out = matmul(&wmat, &cols)?;
    if let Some(b) = bias {
        let ov = out.as_mut_slice();
        let plane = oh * ow;
        for (c, &bc) in b.as_slice().iter().enumerate() {
            for v in &mut ov[c * plane..(c + 1) * plane] {
                *v += bc;
            }
        }
    }
    out.reshape_in_place(&[spec.out_channels, oh, ow])?;
    Ok(out)
}

/// Reference direct convolution; used to cross-check the im2col path in
/// tests. Same contract as [`conv2d_im2col`].
///
/// # Errors
///
/// Returns a shape error if input/weight dimensions are inconsistent.
pub fn conv2d(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&Tensor>,
    spec: &Conv2dSpec,
) -> Result<Tensor, TensorError> {
    let (h, w) = check_conv_inputs(input, weights, spec)?;
    let (oh, ow) = spec.output_hw(h, w);
    let mut out = Tensor::zeros(&[spec.out_channels, oh, ow]);
    let iv = input.as_slice();
    let wv = weights.as_slice();
    let ov = out.as_mut_slice();
    let k = spec.kernel;
    for oc in 0..spec.out_channels {
        let bias_v = bias.map_or(0.0, |b| b.as_slice()[oc]);
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = bias_v;
                for ic in 0..spec.in_channels {
                    for ky in 0..k {
                        let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let wi = ((oc * spec.in_channels + ic) * k + ky) * k + kx;
                            let ii = (ic * h + iy as usize) * w + ix as usize;
                            acc += wv[wi] * iv[ii];
                        }
                    }
                }
                ov[(oc * oh + oy) * ow + ox] = acc;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::XorShiftRng;

    #[test]
    fn output_hw_padding_stride() {
        let s = Conv2dSpec::new(1, 1, 3, 1, 1);
        assert_eq!(s.output_hw(8, 8), (8, 8));
        let s2 = Conv2dSpec::new(1, 1, 3, 2, 0);
        assert_eq!(s2.output_hw(7, 7), (3, 3));
    }

    #[test]
    fn counts() {
        let s = Conv2dSpec::new(3, 8, 3, 1, 1);
        assert_eq!(s.weight_count(), 8 * 3 * 9);
        assert_eq!(s.mac_count(4, 4), (8 * 16) as u64 * (3 * 9) as u64);
    }

    #[test]
    fn identity_kernel_passthrough() {
        // 1x1 kernel with weight 1 reproduces the input.
        let spec = Conv2dSpec::new(1, 1, 1, 1, 0);
        let input = Tensor::from_vec((0..9).map(|i| i as f32).collect(), &[1, 3, 3]).unwrap();
        let w = Tensor::ones(&[1, 1, 1, 1]);
        let out = conv2d_im2col(&input, &w, None, &spec).unwrap();
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn known_3x3_sum_kernel() {
        // all-ones 3x3 kernel over an all-ones 3x3 input, no padding → 9
        let spec = Conv2dSpec::new(1, 1, 3, 1, 0);
        let input = Tensor::ones(&[1, 3, 3]);
        let w = Tensor::ones(&[1, 1, 3, 3]);
        let out = conv2d_im2col(&input, &w, None, &spec).unwrap();
        assert_eq!(out.dims(), &[1, 1, 1]);
        assert_eq!(out.as_slice(), &[9.0]);
    }

    #[test]
    fn bias_is_added_per_channel() {
        let spec = Conv2dSpec::new(1, 2, 1, 1, 0);
        let input = Tensor::ones(&[1, 2, 2]);
        let w = Tensor::zeros(&[2, 1, 1, 1]);
        let bias = Tensor::from_vec(vec![1.5, -2.0], &[2]).unwrap();
        let out = conv2d_im2col(&input, &w, Some(&bias), &spec).unwrap();
        assert_eq!(out.as_slice(), &[1.5, 1.5, 1.5, 1.5, -2.0, -2.0, -2.0, -2.0]);
    }

    #[test]
    fn im2col_matches_direct_reference() {
        let mut rng = XorShiftRng::new(42);
        for &(c_in, c_out, k, s, p, h) in &[
            (1usize, 2usize, 3usize, 1usize, 1usize, 6usize),
            (3, 4, 3, 1, 1, 8),
            (2, 2, 2, 2, 0, 6),
            (3, 5, 3, 2, 1, 7),
            (4, 1, 1, 1, 0, 5),
        ] {
            let spec = Conv2dSpec::new(c_in, c_out, k, s, p);
            let input = Tensor::uniform(&[c_in, h, h], -1.0, 1.0, &mut rng);
            let w = Tensor::uniform(&[c_out, c_in, k, k], -1.0, 1.0, &mut rng);
            let bias = Tensor::uniform(&[c_out], -0.5, 0.5, &mut rng);
            let a = conv2d_im2col(&input, &w, Some(&bias), &spec).unwrap();
            let b = conv2d(&input, &w, Some(&bias), &spec).unwrap();
            assert_eq!(a.dims(), b.dims());
            for (&x, &y) in a.as_slice().iter().zip(b.as_slice()) {
                assert!((x - y).abs() < 1e-4, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn rejects_wrong_shapes() {
        let spec = Conv2dSpec::new(3, 4, 3, 1, 1);
        let input = Tensor::zeros(&[2, 8, 8]); // wrong channel count
        let w = Tensor::zeros(&[4, 3, 3, 3]);
        assert!(conv2d_im2col(&input, &w, None, &spec).is_err());

        let good_input = Tensor::zeros(&[3, 8, 8]);
        let bad_w = Tensor::zeros(&[4, 3, 2, 3]);
        assert!(conv2d_im2col(&good_input, &bad_w, None, &spec).is_err());

        let good_w = Tensor::zeros(&[4, 3, 3, 3]);
        let bad_bias = Tensor::zeros(&[3]);
        assert!(conv2d_im2col(&good_input, &good_w, Some(&bad_bias), &spec).is_err());
    }

    #[test]
    #[should_panic(expected = "kernel must be positive")]
    fn zero_kernel_panics() {
        Conv2dSpec::new(1, 1, 0, 1, 0);
    }
}
