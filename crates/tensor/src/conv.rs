//! 2-D convolution via im2col + GEMM, with a reference direct kernel.
//!
//! Activations are laid out `[channels, height, width]` (CHW); weights are
//! `[out_channels, in_channels, kh, kw]`.
//!
//! [`conv2d_im2col`] is the plain matmul-based path, kept as the semantic
//! baseline. Two execution-engine entry points route through the
//! panel-packed [`crate::conv_gemm_into`] microkernel instead:
//! [`conv2d_im2col_scratch`] reuses a [`ConvScratch`] workspace (unfold
//! buffer, weight panels and staging output recycled across calls, with a
//! windowed shrink policy so one oversized call does not pin its
//! high-water allocation forever), and [`conv2d_masked`] gathers only the
//! *kept* output-channel weight rows straight into panel form while
//! dropping pruned input channels from the unfold entirely — the
//! structured compute-skipping that turns a CAP'NN prune mask into actual
//! saved multiply–accumulates.
//!
//! Batched serving uses [`im2col_batch_into`], which unfolds a whole
//! channel-major batch into one wide matrix with the unfold rows
//! partitioned across `tensor::parallel` workers.

use crate::error::TensorError;
use crate::ops::{conv_gemm_into, conv_panels_len, matmul_into, pack_conv_row, CONV_MR};
use crate::parallel;
use crate::{ShapeError, Tensor};
use serde::{Deserialize, Serialize};

/// Static description of a 2-D convolution.
///
/// # Examples
///
/// ```
/// use capnn_tensor::Conv2dSpec;
///
/// let spec = Conv2dSpec::new(3, 8, 3, 1, 1);
/// assert_eq!(spec.output_hw(32, 32), (32, 32));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2dSpec {
    /// Input channel count.
    pub in_channels: usize,
    /// Output channel count.
    pub out_channels: usize,
    /// Square kernel side length.
    pub kernel: usize,
    /// Stride along both spatial axes.
    pub stride: usize,
    /// Zero padding along both spatial axes.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Creates a spec for a square-kernel convolution.
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0` or `stride == 0`.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        assert!(kernel > 0, "kernel must be positive");
        assert!(stride > 0, "stride must be positive");
        Self {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
        }
    }

    /// Spatial output size for an input of `h`×`w`. A kernel larger than
    /// the padded input yields `0` along that axis (no valid placement).
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let axis = |dim: usize| {
            let padded = dim + 2 * self.padding;
            if padded < self.kernel {
                0
            } else {
                (padded - self.kernel) / self.stride + 1
            }
        };
        (axis(h), axis(w))
    }

    /// Number of weight parameters (excluding biases).
    pub fn weight_count(&self) -> usize {
        self.out_channels * self.in_channels * self.kernel * self.kernel
    }

    /// Multiply–accumulate operations for one input of `h`×`w`.
    pub fn mac_count(&self, h: usize, w: usize) -> u64 {
        let (oh, ow) = self.output_hw(h, w);
        (self.out_channels * oh * ow) as u64 * (self.in_channels * self.kernel * self.kernel) as u64
    }
}

/// Calls between high-water-mark reviews of the [`ConvScratch`] shrink
/// policy: long enough to see every layer geometry of a typical forward
/// pass (so the shared workspace never thrashes between layers), short
/// enough that a one-off oversized call is released promptly.
const SHRINK_WINDOW: u32 = 32;

/// A scratch buffer is released back to its recent peak requirement once
/// its capacity exceeds that peak by this factor.
const SHRINK_FACTOR: usize = 4;

/// Reusable convolution workspace: the im2col unfold buffer, the packed
/// weight panels, and the compact output staging buffer (masked path).
/// After the first call at a given geometry every conv through the
/// scratch is allocation-free except for the returned output tensor.
///
/// Buffers do not stay at their high-water mark forever: every
/// [`SHRINK_WINDOW`] calls the scratch compares each buffer's capacity
/// against the largest requirement seen in that window and releases any
/// buffer more than [`SHRINK_FACTOR`]× oversized — so a single huge
/// warmup input no longer pins its allocation for the lifetime of the
/// engine. [`ConvScratch::shrink_to`] caps the buffers immediately.
#[derive(Debug, Clone, Default)]
pub struct ConvScratch {
    /// im2col matrix, `[rows × (oh·ow)]` row-major.
    cols: Vec<f32>,
    /// Weight rows packed into [`crate::pack_conv_panels`] layout.
    panels: Vec<f32>,
    /// Compact `[kept_out × (oh·ow)]` result before scattering (masked
    /// path).
    omat: Vec<f32>,
    /// Calls since the shrink policy last reviewed capacities.
    calls_since_review: u32,
    /// Per-buffer peak element requirement in the current window
    /// (`cols`, `panels`, `omat`).
    window_peak: [usize; 3],
}

impl ConvScratch {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps every workspace buffer at `max_elems` elements right now,
    /// returning excess capacity to the allocator (buffers regrow on
    /// demand). `shrink_to(0)` frees the workspace entirely.
    pub fn shrink_to(&mut self, max_elems: usize) {
        for v in [&mut self.cols, &mut self.panels, &mut self.omat] {
            v.truncate(max_elems);
            v.shrink_to(max_elems);
        }
        self.calls_since_review = 0;
        self.window_peak = [0; 3];
    }

    /// Records one call's buffer requirements and, at window boundaries,
    /// releases buffers whose capacity exceeds the window peak by
    /// [`SHRINK_FACTOR`]×. Called before the buffers are (re)grown, so
    /// the current call's needs are always part of the peak and a shrink
    /// can never drop below them.
    fn note_use(&mut self, cols: usize, panels: usize, omat: usize) {
        self.window_peak[0] = self.window_peak[0].max(cols);
        self.window_peak[1] = self.window_peak[1].max(panels);
        self.window_peak[2] = self.window_peak[2].max(omat);
        self.calls_since_review += 1;
        if self.calls_since_review >= SHRINK_WINDOW {
            let [c, p, o] = self.window_peak;
            shrink_oversized(&mut self.cols, c);
            shrink_oversized(&mut self.panels, p);
            shrink_oversized(&mut self.omat, o);
            self.calls_since_review = 0;
            self.window_peak = [0; 3];
        }
    }

    /// Current buffer capacities (`cols`, `panels`, `omat`), for the
    /// shrink-policy tests.
    #[cfg(test)]
    fn capacities(&self) -> [usize; 3] {
        [
            self.cols.capacity(),
            self.panels.capacity(),
            self.omat.capacity(),
        ]
    }
}

/// Releases `v` back to `peak` elements if its capacity is more than
/// [`SHRINK_FACTOR`]× the peak requirement.
fn shrink_oversized(v: &mut Vec<f32>, peak: usize) {
    if v.capacity() > peak.saturating_mul(SHRINK_FACTOR) {
        v.truncate(peak);
        v.shrink_to(peak);
    }
}

/// Unfolds a CHW input into an im2col matrix of shape
/// `[channels.len() * k * k, oh * ow]`, written into `cols` (resized and
/// zeroed; no allocation once capacity suffices). `channels` lists the
/// input channels to include, in increasing order — pruned channels are
/// simply absent from the unfold.
fn im2col_into(
    iv: &[f32],
    spec: &Conv2dSpec,
    h: usize,
    w: usize,
    channels: &[usize],
    cols: &mut Vec<f32>,
) {
    let (oh, ow) = spec.output_hw(h, w);
    let k = spec.kernel;
    let ncols = oh * ow;
    let rows = channels.len() * k * k;
    cols.clear();
    cols.resize(rows * ncols, 0.0);
    for (ci, &c) in channels.iter().enumerate() {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ci * k + ky) * k + kx;
                unfold_plane(
                    iv,
                    spec,
                    h,
                    w,
                    c * h * w,
                    ky,
                    kx,
                    &mut cols[row * ncols..(row + 1) * ncols],
                );
            }
        }
    }
}

/// Fills one `(channel, ky, kx)` unfold row for a single sample plane:
/// `dst[oy·ow + ox] = input[chan_base + iy·w + ix]` for every in-bounds
/// kernel tap, leaving padding cells untouched (callers pre-zero the
/// destination). The shared body of every im2col variant, generic over
/// the element type — the unfold is pure data movement, so the f32 plan
/// path and the quantized i8 path share it verbatim. Stride-1 convs
/// — the common CNN case — copy one contiguous run per output row via
/// `copy_from_slice` instead of testing bounds per element.
#[inline]
#[allow(clippy::too_many_arguments)]
fn unfold_plane<T: Copy>(
    input: &[T],
    spec: &Conv2dSpec,
    h: usize,
    w: usize,
    chan_base: usize,
    ky: usize,
    kx: usize,
    dst: &mut [T],
) {
    let (oh, ow) = spec.output_hw(h, w);
    for oy in 0..oh {
        let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
        if iy < 0 || iy >= h as isize {
            continue;
        }
        let in_row = chan_base + iy as usize * w;
        let drow = &mut dst[oy * ow..(oy + 1) * ow];
        if spec.stride == 1 {
            // valid ox satisfy 0 <= ox + kx - padding < w
            let ox0 = spec.padding.saturating_sub(kx);
            let ox1 = ow.min((w + spec.padding).saturating_sub(kx));
            if ox0 < ox1 {
                let ix0 = ox0 + kx - spec.padding;
                drow[ox0..ox1].copy_from_slice(&input[in_row + ix0..in_row + ix0 + (ox1 - ox0)]);
            }
        } else {
            for (ox, d) in drow.iter_mut().enumerate() {
                let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                if ix < 0 || ix >= w as isize {
                    continue;
                }
                *d = input[in_row + ix as usize];
            }
        }
    }
}

/// Minimum unfold rows a worker must own before the batched im2col goes
/// parallel: each row costs ~`wide` copies — far cheaper than a MAC row —
/// so demand more of them per spawned thread.
fn min_unfold_rows(wide: usize) -> usize {
    const PAR_MIN_CELLS: usize = 128 * 1024;
    PAR_MIN_CELLS.div_ceil(wide.max(1))
}

/// Batch-wide im2col over a *channel-major batched* activation — element
/// `(b, c, p)` at `(c·batch + b)·(h·w) + p`, the layout compiled plans
/// keep between conv steps. Unfolds all `batch` samples at once into the
/// single wide `[in_c·k² × batch·oh·ow]` matrix `cols` (sample `b`
/// occupying the column window `b·oh·ow ..`), with the unfold rows
/// partitioned across `threads` workers so the unfold itself scales with
/// cores. `cols` must be pre-zeroed and exactly `in_c·k²·batch·oh·ow`
/// long; padding cells are left untouched.
///
/// Cell-for-cell equivalent to `batch` calls of [`im2col_strided_into`],
/// done once per conv step instead of once per sample.
///
/// Generic over the element type: compiled plans run it over `f32`
/// activations on the full-precision path and over already-quantized
/// `i8` activations on the int8 path (the unfold is pure data movement,
/// so quantizing before the unfold touches each element once instead of
/// once per kernel tap).
///
/// # Panics
///
/// Panics if `cols` does not have exactly the required length.
pub fn im2col_batch_into<T: Copy + Send + Sync>(
    input: &[T],
    spec: &Conv2dSpec,
    h: usize,
    w: usize,
    batch: usize,
    cols: &mut [T],
    threads: usize,
) {
    let (oh, ow) = spec.output_hw(h, w);
    let oplane = oh * ow;
    let k = spec.kernel;
    let kk = k * k;
    let krows = spec.in_channels * kk;
    let wide = batch * oplane;
    assert_eq!(cols.len(), krows * wide, "im2col destination size");
    let plane = h * w;
    parallel::parallel_rows_mut(
        cols,
        krows,
        wide,
        threads,
        min_unfold_rows(wide),
        |rows, block| {
            for (local, row) in rows.enumerate() {
                let (c, rem) = (row / kk, row % kk);
                let (ky, kx) = (rem / k, rem % k);
                let dst = &mut block[local * wide..(local + 1) * wide];
                for b in 0..batch {
                    unfold_plane(
                        input,
                        spec,
                        h,
                        w,
                        (c * batch + b) * plane,
                        ky,
                        kx,
                        &mut dst[b * oplane..(b + 1) * oplane],
                    );
                }
            }
        },
    );
}

/// Strided im2col for batched channel-major activations: unfolds one
/// sample whose channel planes live `chan_stride` elements apart starting
/// at `base` (`input[base + c*chan_stride ..]` is channel `c`'s `h×w`
/// plane), writing its `oh·ow` unfold columns into the column window
/// `[col_offset, col_offset + oh·ow)` of a wide
/// `[spec.in_channels·k² × dst_cols]` matrix `cols`. The destination must
/// be pre-zeroed (padding cells are left untouched).
///
/// With `chan_stride = h·w`, `base = 0` and `dst_cols = oh·ow` this
/// reproduces the single-sample unfold used by [`conv2d_im2col`]; a
/// batched caller lays `B` samples side by side (sample `b` at
/// `col_offset = b·oh·ow`) so a *single* GEMM convolves the whole batch —
/// the im2col amortization behind `CompiledPlan::forward_batch` in
/// `capnn-nn`.
#[allow(clippy::too_many_arguments)]
pub fn im2col_strided_into<T: Copy>(
    input: &[T],
    spec: &Conv2dSpec,
    h: usize,
    w: usize,
    chan_stride: usize,
    base: usize,
    dst_cols: usize,
    col_offset: usize,
    cols: &mut [T],
) {
    let (oh, ow) = spec.output_hw(h, w);
    let ncols = oh * ow;
    let k = spec.kernel;
    for c in 0..spec.in_channels {
        for ky in 0..k {
            for kx in 0..k {
                let row = (c * k + ky) * k + kx;
                let rbase = row * dst_cols + col_offset;
                unfold_plane(
                    input,
                    spec,
                    h,
                    w,
                    base + c * chan_stride,
                    ky,
                    kx,
                    &mut cols[rbase..rbase + ncols],
                );
            }
        }
    }
}

fn check_conv_inputs(
    input: &Tensor,
    weights: &Tensor,
    spec: &Conv2dSpec,
) -> Result<(usize, usize), TensorError> {
    if input.shape().rank() != 3 || input.dims()[0] != spec.in_channels {
        return Err(ShapeError::new(format!(
            "conv2d input must be [{}, h, w], got {}",
            spec.in_channels,
            input.shape()
        ))
        .into());
    }
    let expected_w = [
        spec.out_channels,
        spec.in_channels,
        spec.kernel,
        spec.kernel,
    ];
    if weights.dims() != expected_w {
        return Err(ShapeError::new(format!(
            "conv2d weights must be [{}x{}x{}x{}], got {}",
            expected_w[0],
            expected_w[1],
            expected_w[2],
            expected_w[3],
            weights.shape()
        ))
        .into());
    }
    let (h, w) = (input.dims()[1], input.dims()[2]);
    let (oh, ow) = spec.output_hw(h, w);
    if oh == 0 || ow == 0 {
        return Err(ShapeError::new(format!(
            "conv2d kernel {} exceeds padded input {}x{} (+2*{}): empty output",
            spec.kernel, h, w, spec.padding
        ))
        .into());
    }
    Ok((h, w))
}

fn check_bias(bias: Option<&Tensor>, spec: &Conv2dSpec) -> Result<(), TensorError> {
    if let Some(b) = bias {
        if b.len() != spec.out_channels {
            return Err(ShapeError::new(format!(
                "conv2d bias must have {} elements, got {}",
                spec.out_channels,
                b.len()
            ))
            .into());
        }
    }
    Ok(())
}

/// 2-D convolution via im2col + matmul. Input is CHW; output is
/// `[out_channels, oh, ow]`. `bias` must have `out_channels` elements if
/// provided.
///
/// # Errors
///
/// Returns a shape error if input/weight/bias dimensions are inconsistent
/// or the kernel exceeds the padded input.
pub fn conv2d_im2col(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&Tensor>,
    spec: &Conv2dSpec,
) -> Result<Tensor, TensorError> {
    let (h, w) = check_conv_inputs(input, weights, spec)?;
    check_bias(bias, spec)?;
    let (oh, ow) = spec.output_hw(h, w);
    let plane = oh * ow;
    let krows = spec.in_channels * spec.kernel * spec.kernel;
    let all_channels: Vec<usize> = (0..spec.in_channels).collect();
    let mut cols = Vec::new();
    im2col_into(input.as_slice(), spec, h, w, &all_channels, &mut cols);
    let mut out = Tensor::zeros(&[spec.out_channels, oh, ow]);
    matmul_into(
        weights.as_slice(),
        &cols,
        out.as_mut_slice(),
        spec.out_channels,
        krows,
        plane,
        parallel::max_threads(),
    );
    if let Some(b) = bias {
        let ov = out.as_mut_slice();
        for (c, &bc) in b.as_slice().iter().enumerate() {
            for v in &mut ov[c * plane..(c + 1) * plane] {
                *v += bc;
            }
        }
    }
    Ok(out)
}

/// [`conv2d_im2col`] through a reusable [`ConvScratch`] and the
/// panel-packed [`conv_gemm_into`] microkernel: the unfold buffer and
/// weight panels are recycled across calls, so after warmup the only
/// allocation is the returned output tensor; the bias is applied in the
/// kernel's fused epilogue instead of a separate pass. Value-identical
/// (`==` per element) to [`conv2d_im2col`] — same unfold, same
/// `k`-ascending accumulation, bias added after the sum.
///
/// # Errors
///
/// Same conditions as [`conv2d_im2col`].
pub fn conv2d_im2col_scratch(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&Tensor>,
    spec: &Conv2dSpec,
    scratch: &mut ConvScratch,
) -> Result<Tensor, TensorError> {
    let (h, w) = check_conv_inputs(input, weights, spec)?;
    check_bias(bias, spec)?;
    let (oh, ow) = spec.output_hw(h, w);
    let plane = oh * ow;
    let krows = spec.in_channels * spec.kernel * spec.kernel;
    let panels_len = conv_panels_len(spec.out_channels, krows);
    scratch.note_use(krows * plane, panels_len, 0);
    let all_channels: Vec<usize> = (0..spec.in_channels).collect();
    im2col_into(
        input.as_slice(),
        spec,
        h,
        w,
        &all_channels,
        &mut scratch.cols,
    );
    scratch.panels.clear();
    scratch.panels.resize(panels_len, 0.0);
    for (oc, row) in weights.as_slice().chunks_exact(krows.max(1)).enumerate() {
        pack_conv_row(row, oc, krows, &mut scratch.panels);
    }
    let mut out = Tensor::zeros(&[spec.out_channels, oh, ow]);
    conv_gemm_into(
        &scratch.panels,
        &scratch.cols,
        bias.map(|b| b.as_slice()),
        out.as_mut_slice(),
        spec.out_channels,
        krows,
        plane,
        false,
        parallel::max_threads(),
    );
    Ok(out)
}

/// Mask-aware convolution: computes only the output channels listed in
/// `kept_out` and unfolds only the input channels listed in `kept_in`
/// (both strictly increasing). Pruned output channels are exactly zero in
/// the returned full-shape `[out_channels, oh, ow]` tensor, and pruned
/// input channels — whose activations a mask-aware engine has already
/// zeroed — contribute no multiply–accumulates at all.
///
/// With fraction `p` of channels pruned on both sides this does
/// `(1-p)²` of the dense work. The result is numerically identical to
/// running [`conv2d_im2col`] on the zero-padded activation and then
/// zeroing pruned output planes (dropped terms are exact zeros; the
/// summation order of the surviving terms is unchanged).
///
/// # Errors
///
/// Returns a shape error if dimensions are inconsistent or an index in
/// `kept_out`/`kept_in` is out of range or not strictly increasing.
pub fn conv2d_masked(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&Tensor>,
    spec: &Conv2dSpec,
    kept_out: &[usize],
    kept_in: &[usize],
    scratch: &mut ConvScratch,
) -> Result<Tensor, TensorError> {
    let (h, w) = check_conv_inputs(input, weights, spec)?;
    check_bias(bias, spec)?;
    check_strictly_increasing(kept_out, spec.out_channels, "kept_out")?;
    check_strictly_increasing(kept_in, spec.in_channels, "kept_in")?;
    let (oh, ow) = spec.output_hw(h, w);
    let plane = oh * ow;
    let k = spec.kernel;
    let kk = k * k;
    let krows = kept_in.len() * kk;
    let mut out = Tensor::zeros(&[spec.out_channels, oh, ow]);
    if kept_out.is_empty() {
        return Ok(out);
    }
    let panels_len = conv_panels_len(kept_out.len(), krows);
    scratch.note_use(krows * plane, panels_len, kept_out.len() * plane);

    im2col_into(input.as_slice(), spec, h, w, kept_in, &mut scratch.cols);

    // Gather the weight rows of kept output channels, restricted to kept
    // input channels, straight into the panel layout the microkernel
    // reads — preserving increasing channel order so accumulation order
    // matches the dense kernel.
    let wv = weights.as_slice();
    scratch.panels.clear();
    scratch.panels.resize(panels_len, 0.0);
    for (no, &oc) in kept_out.iter().enumerate() {
        let base = (no / CONV_MR) * krows * CONV_MR + no % CONV_MR;
        for (ni, &ic) in kept_in.iter().enumerate() {
            let src = (oc * spec.in_channels + ic) * kk;
            for (r, &wval) in wv[src..src + kk].iter().enumerate() {
                scratch.panels[base + (ni * kk + r) * CONV_MR] = wval;
            }
        }
    }

    scratch.omat.clear();
    scratch.omat.resize(kept_out.len() * plane, 0.0);
    conv_gemm_into(
        &scratch.panels,
        &scratch.cols,
        None,
        &mut scratch.omat,
        kept_out.len(),
        krows,
        plane,
        false,
        parallel::max_threads(),
    );

    let ov = out.as_mut_slice();
    for (no, &oc) in kept_out.iter().enumerate() {
        let dst = &mut ov[oc * plane..(oc + 1) * plane];
        dst.copy_from_slice(&scratch.omat[no * plane..(no + 1) * plane]);
        if let Some(b) = bias {
            let bc = b.as_slice()[oc];
            for v in dst {
                *v += bc;
            }
        }
    }
    Ok(out)
}

fn check_strictly_increasing(
    indices: &[usize],
    bound: usize,
    name: &str,
) -> Result<(), TensorError> {
    let mut prev: Option<usize> = None;
    for &i in indices {
        if i >= bound {
            return Err(ShapeError::new(format!(
                "{name} index {i} out of range for {bound} channels"
            ))
            .into());
        }
        if let Some(p) = prev {
            if i <= p {
                return Err(ShapeError::new(format!(
                    "{name} must be strictly increasing, got {p} then {i}"
                ))
                .into());
            }
        }
        prev = Some(i);
    }
    Ok(())
}

/// Reference direct convolution; used to cross-check the im2col path in
/// tests. Same contract as [`conv2d_im2col`].
///
/// # Errors
///
/// Returns a shape error if input/weight dimensions are inconsistent.
pub fn conv2d(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&Tensor>,
    spec: &Conv2dSpec,
) -> Result<Tensor, TensorError> {
    let (h, w) = check_conv_inputs(input, weights, spec)?;
    let (oh, ow) = spec.output_hw(h, w);
    let mut out = Tensor::zeros(&[spec.out_channels, oh, ow]);
    let iv = input.as_slice();
    let wv = weights.as_slice();
    let ov = out.as_mut_slice();
    let k = spec.kernel;
    for oc in 0..spec.out_channels {
        let bias_v = bias.map_or(0.0, |b| b.as_slice()[oc]);
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = bias_v;
                for ic in 0..spec.in_channels {
                    for ky in 0..k {
                        let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let wi = ((oc * spec.in_channels + ic) * k + ky) * k + kx;
                            let ii = (ic * h + iy as usize) * w + ix as usize;
                            acc += wv[wi] * iv[ii];
                        }
                    }
                }
                ov[(oc * oh + oy) * ow + ox] = acc;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{matmul, XorShiftRng};

    #[test]
    fn output_hw_padding_stride() {
        let s = Conv2dSpec::new(1, 1, 3, 1, 1);
        assert_eq!(s.output_hw(8, 8), (8, 8));
        let s2 = Conv2dSpec::new(1, 1, 3, 2, 0);
        assert_eq!(s2.output_hw(7, 7), (3, 3));
    }

    #[test]
    fn output_hw_kernel_larger_than_input_is_empty() {
        // Regression: kernel 5 over a 2x2 input with padding 1 has no valid
        // placement — this used to report a spurious 1x1 output.
        let s = Conv2dSpec::new(1, 1, 5, 1, 1);
        assert_eq!(s.output_hw(2, 2), (0, 0));
        assert_eq!(s.mac_count(2, 2), 0);
        // exactly fitting placement still works
        assert_eq!(s.output_hw(3, 3), (1, 1));
        // and the conv kernels reject the degenerate geometry outright
        let input = Tensor::zeros(&[1, 2, 2]);
        let w = Tensor::zeros(&[1, 1, 5, 5]);
        assert!(conv2d_im2col(&input, &w, None, &s).is_err());
        assert!(conv2d(&input, &w, None, &s).is_err());
    }

    #[test]
    fn counts() {
        let s = Conv2dSpec::new(3, 8, 3, 1, 1);
        assert_eq!(s.weight_count(), 8 * 3 * 9);
        assert_eq!(s.mac_count(4, 4), (8 * 16) as u64 * (3 * 9) as u64);
    }

    #[test]
    fn identity_kernel_passthrough() {
        // 1x1 kernel with weight 1 reproduces the input.
        let spec = Conv2dSpec::new(1, 1, 1, 1, 0);
        let input = Tensor::from_vec((0..9).map(|i| i as f32).collect(), &[1, 3, 3]).unwrap();
        let w = Tensor::ones(&[1, 1, 1, 1]);
        let out = conv2d_im2col(&input, &w, None, &spec).unwrap();
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn known_3x3_sum_kernel() {
        // all-ones 3x3 kernel over an all-ones 3x3 input, no padding → 9
        let spec = Conv2dSpec::new(1, 1, 3, 1, 0);
        let input = Tensor::ones(&[1, 3, 3]);
        let w = Tensor::ones(&[1, 1, 3, 3]);
        let out = conv2d_im2col(&input, &w, None, &spec).unwrap();
        assert_eq!(out.dims(), &[1, 1, 1]);
        assert_eq!(out.as_slice(), &[9.0]);
    }

    #[test]
    fn bias_is_added_per_channel() {
        let spec = Conv2dSpec::new(1, 2, 1, 1, 0);
        let input = Tensor::ones(&[1, 2, 2]);
        let w = Tensor::zeros(&[2, 1, 1, 1]);
        let bias = Tensor::from_vec(vec![1.5, -2.0], &[2]).unwrap();
        let out = conv2d_im2col(&input, &w, Some(&bias), &spec).unwrap();
        assert_eq!(
            out.as_slice(),
            &[1.5, 1.5, 1.5, 1.5, -2.0, -2.0, -2.0, -2.0]
        );
    }

    #[test]
    fn im2col_matches_direct_reference() {
        let mut rng = XorShiftRng::new(42);
        for &(c_in, c_out, k, s, p, h) in &[
            (1usize, 2usize, 3usize, 1usize, 1usize, 6usize),
            (3, 4, 3, 1, 1, 8),
            (2, 2, 2, 2, 0, 6),
            (3, 5, 3, 2, 1, 7),
            (4, 1, 1, 1, 0, 5),
        ] {
            let spec = Conv2dSpec::new(c_in, c_out, k, s, p);
            let input = Tensor::uniform(&[c_in, h, h], -1.0, 1.0, &mut rng);
            let w = Tensor::uniform(&[c_out, c_in, k, k], -1.0, 1.0, &mut rng);
            let bias = Tensor::uniform(&[c_out], -0.5, 0.5, &mut rng);
            let a = conv2d_im2col(&input, &w, Some(&bias), &spec).unwrap();
            let b = conv2d(&input, &w, Some(&bias), &spec).unwrap();
            assert_eq!(a.dims(), b.dims());
            for (&x, &y) in a.as_slice().iter().zip(b.as_slice()) {
                assert!((x - y).abs() < 1e-4, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn scratch_path_matches_plain_and_reuses_buffers() {
        let mut rng = XorShiftRng::new(5);
        let spec = Conv2dSpec::new(3, 4, 3, 1, 1);
        let w = Tensor::uniform(&[4, 3, 3, 3], -1.0, 1.0, &mut rng);
        let bias = Tensor::uniform(&[4], -0.5, 0.5, &mut rng);
        let mut scratch = ConvScratch::new();
        for _ in 0..3 {
            let input = Tensor::uniform(&[3, 8, 8], -1.0, 1.0, &mut rng);
            let plain = conv2d_im2col(&input, &w, Some(&bias), &spec).unwrap();
            let fast = conv2d_im2col_scratch(&input, &w, Some(&bias), &spec, &mut scratch).unwrap();
            assert_eq!(plain.as_slice(), fast.as_slice());
        }
    }

    #[test]
    fn masked_conv_matches_zeroed_dense_conv() {
        let mut rng = XorShiftRng::new(6);
        let spec = Conv2dSpec::new(4, 6, 3, 1, 1);
        let w = Tensor::uniform(&[6, 4, 3, 3], -1.0, 1.0, &mut rng);
        let bias = Tensor::uniform(&[6], -0.5, 0.5, &mut rng);
        let kept_in = [0usize, 2, 3];
        let kept_out = [1usize, 2, 4, 5];
        // the engine contract: pruned input channels are already zero
        let mut input = Tensor::uniform(&[4, 7, 7], -1.0, 1.0, &mut rng);
        {
            let plane = 49;
            let iv = input.as_mut_slice();
            for v in &mut iv[plane..2 * plane] {
                *v = 0.0; // channel 1 pruned upstream
            }
        }
        let dense = conv2d_im2col(&input, &w, Some(&bias), &spec).unwrap();
        let mut scratch = ConvScratch::new();
        let masked = conv2d_masked(
            &input,
            &w,
            Some(&bias),
            &spec,
            &kept_out,
            &kept_in,
            &mut scratch,
        )
        .unwrap();
        let plane = 49;
        for oc in 0..6 {
            let m = &masked.as_slice()[oc * plane..(oc + 1) * plane];
            if kept_out.contains(&oc) {
                let d = &dense.as_slice()[oc * plane..(oc + 1) * plane];
                for (&x, &y) in m.iter().zip(d) {
                    assert!((x - y).abs() < 1e-6, "channel {oc}: {x} vs {y}");
                }
            } else {
                assert!(m.iter().all(|&v| v == 0.0), "pruned channel {oc} not zero");
            }
        }
    }

    #[test]
    fn masked_conv_empty_kept_sets() {
        let mut rng = XorShiftRng::new(7);
        let spec = Conv2dSpec::new(2, 3, 3, 1, 1);
        let w = Tensor::uniform(&[3, 2, 3, 3], -1.0, 1.0, &mut rng);
        let bias = Tensor::from_vec(vec![0.5, -1.0, 2.0], &[3]).unwrap();
        let input = Tensor::zeros(&[2, 5, 5]);
        let mut scratch = ConvScratch::new();
        // no kept outputs → all-zero result
        let none =
            conv2d_masked(&input, &w, Some(&bias), &spec, &[], &[0, 1], &mut scratch).unwrap();
        assert!(none.as_slice().iter().all(|&v| v == 0.0));
        // no kept inputs → kept outputs are pure bias planes
        let bias_only =
            conv2d_masked(&input, &w, Some(&bias), &spec, &[0, 2], &[], &mut scratch).unwrap();
        let plane = 25;
        assert!(bias_only.as_slice()[..plane].iter().all(|&v| v == 0.5));
        assert!(bias_only.as_slice()[plane..2 * plane]
            .iter()
            .all(|&v| v == 0.0));
        assert!(bias_only.as_slice()[2 * plane..].iter().all(|&v| v == 2.0));
    }

    #[test]
    fn masked_conv_rejects_bad_indices() {
        let spec = Conv2dSpec::new(2, 3, 3, 1, 1);
        let w = Tensor::zeros(&[3, 2, 3, 3]);
        let input = Tensor::zeros(&[2, 5, 5]);
        let mut scratch = ConvScratch::new();
        assert!(conv2d_masked(&input, &w, None, &spec, &[3], &[0], &mut scratch).is_err());
        assert!(conv2d_masked(&input, &w, None, &spec, &[0], &[2], &mut scratch).is_err());
        assert!(conv2d_masked(&input, &w, None, &spec, &[1, 0], &[0], &mut scratch).is_err());
        assert!(conv2d_masked(&input, &w, None, &spec, &[0], &[1, 1], &mut scratch).is_err());
    }

    #[test]
    fn rejects_wrong_shapes() {
        let spec = Conv2dSpec::new(3, 4, 3, 1, 1);
        let input = Tensor::zeros(&[2, 8, 8]); // wrong channel count
        let w = Tensor::zeros(&[4, 3, 3, 3]);
        assert!(conv2d_im2col(&input, &w, None, &spec).is_err());

        let good_input = Tensor::zeros(&[3, 8, 8]);
        let bad_w = Tensor::zeros(&[4, 3, 2, 3]);
        assert!(conv2d_im2col(&good_input, &bad_w, None, &spec).is_err());

        let good_w = Tensor::zeros(&[4, 3, 3, 3]);
        let bad_bias = Tensor::zeros(&[3]);
        assert!(conv2d_im2col(&good_input, &good_w, Some(&bad_bias), &spec).is_err());
    }

    #[test]
    #[should_panic(expected = "kernel must be positive")]
    fn zero_kernel_panics() {
        Conv2dSpec::new(1, 1, 0, 1, 0);
    }

    #[test]
    fn strided_im2col_matches_plain_unfold() {
        let mut rng = XorShiftRng::new(13);
        let spec = Conv2dSpec::new(3, 1, 3, 2, 1);
        let (h, w) = (7usize, 6usize);
        let (oh, ow) = spec.output_hw(h, w);
        let ncols = oh * ow;
        let krows = spec.in_channels * spec.kernel * spec.kernel;
        let s0 = Tensor::uniform(&[3, h, w], -1.0, 1.0, &mut rng);
        let s1 = Tensor::uniform(&[3, h, w], -1.0, 1.0, &mut rng);

        // single-sample: same cells as the private unfold
        let all: Vec<usize> = (0..3).collect();
        let mut want = Vec::new();
        im2col_into(s0.as_slice(), &spec, h, w, &all, &mut want);
        let mut got = vec![0.0f32; krows * ncols];
        im2col_strided_into(s0.as_slice(), &spec, h, w, h * w, 0, ncols, 0, &mut got);
        assert_eq!(got, want);

        // batched channel-major layout: two samples side by side
        let plane = h * w;
        let batch = 2usize;
        let mut chw = vec![0.0f32; batch * 3 * plane];
        for (b, s) in [&s0, &s1].iter().enumerate() {
            for c in 0..3 {
                chw[(c * batch + b) * plane..(c * batch + b + 1) * plane]
                    .copy_from_slice(&s.as_slice()[c * plane..(c + 1) * plane]);
            }
        }
        let wide_cols = batch * ncols;
        let mut wide = vec![0.0f32; krows * wide_cols];
        for b in 0..batch {
            im2col_strided_into(
                &chw,
                &spec,
                h,
                w,
                batch * plane,
                b * plane,
                wide_cols,
                b * ncols,
                &mut wide,
            );
        }
        let mut want1 = Vec::new();
        im2col_into(s1.as_slice(), &spec, h, w, &all, &mut want1);
        for r in 0..krows {
            assert_eq!(
                &wide[r * wide_cols..r * wide_cols + ncols],
                &want[r * ncols..(r + 1) * ncols],
                "sample 0 row {r}"
            );
            assert_eq!(
                &wide[r * wide_cols + ncols..(r + 1) * wide_cols],
                &want1[r * ncols..(r + 1) * ncols],
                "sample 1 row {r}"
            );
        }
    }

    #[test]
    fn batch_unfold_matches_per_sample_strided() {
        let mut rng = XorShiftRng::new(17);
        for &(c_in, k, s, p, h, w, batch) in &[
            (3usize, 3usize, 1usize, 1usize, 7usize, 6usize, 3usize),
            (2, 2, 2, 0, 6, 8, 2),
            (1, 3, 2, 1, 9, 5, 4),
            (4, 1, 1, 0, 5, 5, 1),
        ] {
            let spec = Conv2dSpec::new(c_in, 1, k, s, p);
            let (oh, ow) = spec.output_hw(h, w);
            let oplane = oh * ow;
            let plane = h * w;
            let krows = c_in * k * k;
            let wide = batch * oplane;
            let chw = Tensor::uniform(&[c_in * batch, h, w], -1.0, 1.0, &mut rng);
            let mut want = vec![0.0f32; krows * wide];
            for b in 0..batch {
                im2col_strided_into(
                    chw.as_slice(),
                    &spec,
                    h,
                    w,
                    batch * plane,
                    b * plane,
                    wide,
                    b * oplane,
                    &mut want,
                );
            }
            for threads in [1usize, 3] {
                let mut got = vec![0.0f32; krows * wide];
                im2col_batch_into(chw.as_slice(), &spec, h, w, batch, &mut got, threads);
                assert_eq!(got, want, "c_in={c_in} k={k} s={s} p={p} threads={threads}");
            }
        }
    }

    #[test]
    fn scratch_shrinks_after_oversized_call() {
        let mut rng = XorShiftRng::new(19);
        let mut scratch = ConvScratch::new();
        // one huge warmup call pins a large unfold buffer...
        let big_spec = Conv2dSpec::new(4, 4, 3, 1, 1);
        let big = Tensor::uniform(&[4, 48, 48], -1.0, 1.0, &mut rng);
        let bw = Tensor::uniform(&[4, 4, 3, 3], -1.0, 1.0, &mut rng);
        conv2d_im2col_scratch(&big, &bw, None, &big_spec, &mut scratch).unwrap();
        let big_cols_cap = scratch.capacities()[0];
        assert!(big_cols_cap >= 4 * 9 * 48 * 48);
        // ...then a full review window of small-only calls releases it
        // back to the small working set (the first review still has the
        // big call in its window, so run two)
        let small_spec = Conv2dSpec::new(2, 3, 3, 1, 1);
        let sw = Tensor::uniform(&[3, 2, 3, 3], -1.0, 1.0, &mut rng);
        let small = Tensor::uniform(&[2, 6, 6], -1.0, 1.0, &mut rng);
        let want = conv2d_im2col(&small, &sw, None, &small_spec).unwrap();
        for _ in 0..2 * SHRINK_WINDOW {
            let got = conv2d_im2col_scratch(&small, &sw, None, &small_spec, &mut scratch).unwrap();
            assert_eq!(got.as_slice(), want.as_slice());
        }
        let small_need = 2 * 9 * 36;
        assert!(
            scratch.capacities()[0] <= small_need * SHRINK_FACTOR,
            "cols capacity {} not released (was {big_cols_cap})",
            scratch.capacities()[0]
        );
        // results stay correct after the shrink
        let got = conv2d_im2col_scratch(&small, &sw, None, &small_spec, &mut scratch).unwrap();
        assert_eq!(got.as_slice(), want.as_slice());
    }

    #[test]
    fn scratch_shrink_to_caps_buffers_immediately() {
        let mut rng = XorShiftRng::new(20);
        let spec = Conv2dSpec::new(3, 4, 3, 1, 1);
        let w = Tensor::uniform(&[4, 3, 3, 3], -1.0, 1.0, &mut rng);
        let input = Tensor::uniform(&[3, 16, 16], -1.0, 1.0, &mut rng);
        let mut scratch = ConvScratch::new();
        let want = conv2d_im2col_scratch(&input, &w, None, &spec, &mut scratch).unwrap();
        assert!(scratch.capacities().iter().any(|&c| c > 0));
        scratch.shrink_to(0);
        assert_eq!(scratch.capacities(), [0, 0, 0]);
        // workspace regrows transparently
        let again = conv2d_im2col_scratch(&input, &w, None, &spec, &mut scratch).unwrap();
        assert_eq!(again.as_slice(), want.as_slice());
    }

    #[test]
    fn matmul_still_used_for_plain_conv() {
        // sanity: wmat * cols equals the public conv path (guards the
        // reshape-free weight-slice shortcut in the scratch kernel)
        let mut rng = XorShiftRng::new(8);
        let spec = Conv2dSpec::new(2, 3, 3, 1, 0);
        let input = Tensor::uniform(&[2, 6, 6], -1.0, 1.0, &mut rng);
        let w = Tensor::uniform(&[3, 2, 3, 3], -1.0, 1.0, &mut rng);
        let conv = conv2d_im2col(&input, &w, None, &spec).unwrap();
        let wmat = w.reshape(&[3, 18]).unwrap();
        let all: Vec<usize> = (0..2).collect();
        let mut cols = Vec::new();
        im2col_into(input.as_slice(), &spec, 6, 6, &all, &mut cols);
        let cols_t = Tensor::from_vec(cols, &[18, 16]).unwrap();
        let by_hand = matmul(&wmat, &cols_t).unwrap();
        assert_eq!(conv.as_slice(), by_hand.as_slice());
    }
}
