//! Error types for tensor construction and shape-checked operations.

use std::error::Error;
use std::fmt;

/// Error produced when two shapes are incompatible for an operation.
///
/// # Examples
///
/// ```
/// use capnn_tensor::Tensor;
///
/// let a = Tensor::zeros(&[2, 3]);
/// let b = Tensor::zeros(&[4, 5]);
/// assert!(a.matmul(&b).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Human-readable description of the mismatch.
    message: String,
}

impl ShapeError {
    /// Creates a new shape error with the given description.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// The description of the mismatch.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape mismatch: {}", self.message)
    }
}

impl Error for ShapeError {}

/// Top-level error type for all fallible tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Shapes of the operands are incompatible.
    Shape(ShapeError),
    /// The provided buffer length does not match the product of dimensions.
    LengthMismatch {
        /// Length of the provided element buffer.
        expected: usize,
        /// Number of elements implied by the shape.
        actual: usize,
    },
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending flat or axis index.
        index: usize,
        /// The bound it violated.
        bound: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::Shape(e) => e.fmt(f),
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "buffer length {actual} does not match shape volume {expected}"
            ),
            TensorError::IndexOutOfBounds { index, bound } => {
                write!(
                    f,
                    "index {index} out of bounds for dimension of size {bound}"
                )
            }
        }
    }
}

impl Error for TensorError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TensorError::Shape(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ShapeError> for TensorError {
    fn from(e: ShapeError) -> Self {
        TensorError::Shape(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_error_displays_message() {
        let e = ShapeError::new("2x3 vs 4x5");
        assert_eq!(e.to_string(), "shape mismatch: 2x3 vs 4x5");
        assert_eq!(e.message(), "2x3 vs 4x5");
    }

    #[test]
    fn tensor_error_from_shape_error() {
        let e: TensorError = ShapeError::new("bad").into();
        assert!(matches!(e, TensorError::Shape(_)));
        assert!(e.to_string().contains("bad"));
    }

    #[test]
    fn length_mismatch_display() {
        let e = TensorError::LengthMismatch {
            expected: 6,
            actual: 5,
        };
        assert!(e.to_string().contains('5'));
        assert!(e.to_string().contains('6'));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
        assert_send_sync::<ShapeError>();
    }
}
