//! 2-D max pooling over CHW activations, with argmax indices for backprop.

use crate::error::TensorError;
use crate::{ShapeError, Tensor};
use serde::{Deserialize, Serialize};

/// Static description of a square max-pool window.
///
/// # Examples
///
/// ```
/// use capnn_tensor::PoolSpec;
///
/// let spec = PoolSpec::new(2, 2);
/// assert_eq!(spec.output_hw(32, 32), (16, 16));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PoolSpec {
    /// Window side length.
    pub window: usize,
    /// Stride along both axes.
    pub stride: usize,
}

impl PoolSpec {
    /// Creates a pooling spec.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `stride == 0`.
    pub fn new(window: usize, stride: usize) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(stride > 0, "stride must be positive");
        Self { window, stride }
    }

    /// Spatial output size for an `h`×`w` input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = h.saturating_sub(self.window) / self.stride + 1;
        let ow = w.saturating_sub(self.window) / self.stride + 1;
        (oh, ow)
    }
}

/// Max pooling over a CHW tensor. Returns the pooled tensor and, for each
/// output element, the flat input index that won the max (for backprop).
///
/// # Errors
///
/// Returns a shape error if the input is not rank 3 or smaller than the
/// window.
pub fn max_pool2d(input: &Tensor, spec: &PoolSpec) -> Result<(Tensor, Vec<usize>), TensorError> {
    if input.shape().rank() != 3 {
        return Err(ShapeError::new(format!(
            "max_pool2d input must be CHW, got {}",
            input.shape()
        ))
        .into());
    }
    let (c, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2]);
    if h < spec.window || w < spec.window {
        return Err(ShapeError::new(format!(
            "max_pool2d window {} larger than input {h}x{w}",
            spec.window
        ))
        .into());
    }
    let (oh, ow) = spec.output_hw(h, w);
    let mut out = Tensor::zeros(&[c, oh, ow]);
    let mut argmax = vec![0usize; c * oh * ow];
    let iv = input.as_slice();
    let ov = out.as_mut_slice();
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0;
                for ky in 0..spec.window {
                    let iy = oy * spec.stride + ky;
                    for kx in 0..spec.window {
                        let ix = ox * spec.stride + kx;
                        let idx = (ch * h + iy) * w + ix;
                        if iv[idx] > best {
                            best = iv[idx];
                            best_idx = idx;
                        }
                    }
                }
                let o = (ch * oh + oy) * ow + ox;
                ov[o] = best;
                argmax[o] = best_idx;
            }
        }
    }
    Ok((out, argmax))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_2x2_known() {
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
            &[1, 4, 4],
        )
        .unwrap();
        let (out, argmax) = max_pool2d(&input, &PoolSpec::new(2, 2)).unwrap();
        assert_eq!(out.dims(), &[1, 2, 2]);
        assert_eq!(out.as_slice(), &[4.0, 8.0, 12.0, 16.0]);
        assert_eq!(argmax, vec![5, 7, 13, 15]);
    }

    #[test]
    fn pool_multi_channel() {
        let mut input = Tensor::zeros(&[2, 2, 2]);
        input.set(&[0, 0, 0], 5.0).unwrap();
        input.set(&[1, 1, 1], 7.0).unwrap();
        let (out, argmax) = max_pool2d(&input, &PoolSpec::new(2, 2)).unwrap();
        assert_eq!(out.as_slice(), &[5.0, 7.0]);
        assert_eq!(argmax, vec![0, 7]);
    }

    #[test]
    fn pool_negative_values() {
        let input = Tensor::from_vec(vec![-3.0, -1.0, -2.0, -4.0], &[1, 2, 2]).unwrap();
        let (out, argmax) = max_pool2d(&input, &PoolSpec::new(2, 2)).unwrap();
        assert_eq!(out.as_slice(), &[-1.0]);
        assert_eq!(argmax, vec![1]);
    }

    #[test]
    fn pool_rejects_bad_input() {
        assert!(max_pool2d(&Tensor::zeros(&[4, 4]), &PoolSpec::new(2, 2)).is_err());
        assert!(max_pool2d(&Tensor::zeros(&[1, 1, 1]), &PoolSpec::new(2, 2)).is_err());
    }

    #[test]
    fn pool_stride_one_overlapping() {
        let input = Tensor::from_vec((1..=9).map(|i| i as f32).collect(), &[1, 3, 3]).unwrap();
        let (out, _) = max_pool2d(&input, &PoolSpec::new(2, 1)).unwrap();
        assert_eq!(out.dims(), &[1, 2, 2]);
        assert_eq!(out.as_slice(), &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        PoolSpec::new(0, 1);
    }
}
