//! A std-only scoped-thread worker pool for data-parallel kernels.
//!
//! Every parallel region partitions its index space into **contiguous
//! chunks, one per worker**, and each output element is produced by exactly
//! one worker that accumulates in the same order the serial kernel would.
//! Results are therefore bitwise identical across thread counts for
//! partitioned writes (matmul rows, batched samples) and identical up to
//! f32 merge order for reduced accumulators (firing-rate sums).
//!
//! The worker count defaults to [`std::thread::available_parallelism`] and
//! can be overridden with the `CAPNN_THREADS` environment variable (read
//! once) or programmatically with [`set_max_threads`] (benchmarks sweep
//! thread counts this way). Small work items run inline on the calling
//! thread — spawning is skipped entirely — so single-sample inference on a
//! tiny net never pays a threading tax, and spawned workers are capped at
//! the host's physical parallelism so an oversubscribed request (more
//! threads than cores) degrades to serial instead of to slower-than-serial.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Global worker-count override: 0 = uninitialized (resolve from env).
static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads parallel regions may use.
///
/// Resolution order: a prior [`set_max_threads`] call, then the
/// `CAPNN_THREADS` environment variable, then
/// [`std::thread::available_parallelism`]. Always at least 1.
pub fn max_threads() -> usize {
    let cached = MAX_THREADS.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let resolved = std::env::var("CAPNN_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    MAX_THREADS.store(resolved, Ordering::Relaxed);
    resolved
}

/// Overrides the worker count for all subsequent parallel regions.
///
/// Intended for benchmarks and tests that sweep thread counts; values are
/// clamped to at least 1.
pub fn set_max_threads(threads: usize) {
    MAX_THREADS.store(threads.max(1), Ordering::Relaxed);
}

/// Floor on the multiply–accumulates a spawned worker should own before a
/// per-item parallel sweep (per-sample evaluation, profiling, batched
/// serving) is worth fanning out: scoped-spawn overhead is ~10 µs/thread,
/// so a worker below roughly this many MACs spends more time being born
/// than computing.
pub const MIN_MACS_PER_THREAD: u64 = 262_144;

/// Converts a per-item MAC cost into the `min_per_thread` argument of
/// [`parallel_reduce`]/[`parallel_rows_mut`]: the number of items each
/// worker must own so it does at least [`MIN_MACS_PER_THREAD`] MACs.
/// Cheap items (tiny tail replays) yield large minimums and the sweep
/// stays serial; expensive items (full forward traces) yield 1–2 and the
/// sweep fans out.
pub fn min_items_per_thread(macs_per_item: u64) -> usize {
    usize::try_from((MIN_MACS_PER_THREAD / macs_per_item.max(1)).max(1)).unwrap_or(usize::MAX)
}

/// Splits `0..n` into at most `parts` contiguous near-equal ranges,
/// dropping empty ones.
pub fn chunk_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1).min(n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        if len == 0 {
            continue;
        }
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Physical parallelism of the host (cached once). CPU-bound workers
/// beyond the core count only ever add scheduling overhead — the OS time-
/// slices them onto the same cores — so parallel regions never spawn more
/// than this many, no matter what thread count was requested.
fn host_parallelism() -> usize {
    static HOST: AtomicUsize = AtomicUsize::new(0);
    let cached = HOST.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    HOST.store(n, Ordering::Relaxed);
    n
}

/// Telemetry probe for one parallel region: how many workers it used, and
/// the running pool-utilization gauge (mean spawned workers per region ÷
/// host parallelism). One relaxed load when telemetry is disabled.
fn record_region(workers: usize) {
    if !capnn_telemetry::enabled() {
        return;
    }
    capnn_telemetry::count("parallel.regions", 1);
    if workers <= 1 {
        capnn_telemetry::count("parallel.inline_regions", 1);
    } else {
        capnn_telemetry::count("parallel.spawned_workers", workers as u64);
    }
    capnn_telemetry::observe("parallel.region_workers", workers as u64);
    let reg = capnn_telemetry::global();
    let regions = reg.counter("parallel.regions").get().max(1);
    let spawned = reg.counter("parallel.spawned_workers").get();
    let inline = reg.counter("parallel.inline_regions").get();
    let mean_workers = (spawned + inline) as f64 / regions as f64;
    reg.gauge("parallel.pool_utilization")
        .set(mean_workers / host_parallelism() as f64);
}

/// How many workers a region of `n` items should use, given that each
/// worker must own at least `min_per_thread` items to be worth spawning.
/// Requested thread counts are capped at [`host_parallelism`].
fn worker_count(n: usize, threads: usize, min_per_thread: usize) -> usize {
    let threads = threads.min(host_parallelism());
    if threads <= 1 || n == 0 {
        return 1;
    }
    threads.min(n / min_per_thread.max(1)).max(1)
}

/// Runs `work` over `0..n`, partitioned into contiguous chunks across at
/// most `threads` workers, and returns the per-chunk accumulators **in
/// chunk order** (index 0 covers the lowest indices). The caller merges
/// them; merging in the returned order keeps reductions deterministic for
/// a given thread count.
///
/// Falls back to a single inline `work(0..n)` call when `n` is small
/// (fewer than `min_per_thread` items per prospective worker) or
/// `threads <= 1`.
pub fn parallel_reduce<A, F>(n: usize, threads: usize, min_per_thread: usize, work: F) -> Vec<A>
where
    A: Send,
    F: Fn(Range<usize>) -> A + Sync,
{
    let workers = worker_count(n, threads, min_per_thread);
    record_region(workers);
    if workers <= 1 {
        return vec![work(0..n)];
    }
    let ranges = chunk_ranges(n, workers);
    let work = &work;
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| s.spawn(move || work(r)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("capnn-tensor worker panicked"))
            .collect()
    })
}

/// Partitions the row-major buffer `out` (`rows` rows of `row_len`
/// elements) into contiguous row blocks, one per worker, and calls
/// `body(row_range, block)` on each with exclusive access to its block.
///
/// Each output row is written by exactly one worker, so results are
/// bitwise identical to the serial execution regardless of thread count.
/// Generic over the element type so the same partitioner drives both the
/// `f32` kernels and the `i8` quantized im2col/GEMM paths.
///
/// # Panics
///
/// Panics if `out.len() != rows * row_len`.
pub fn parallel_rows_mut<T, F>(
    out: &mut [T],
    rows: usize,
    row_len: usize,
    threads: usize,
    min_rows_per_thread: usize,
    body: F,
) where
    T: Send,
    F: Fn(Range<usize>, &mut [T]) + Sync,
{
    assert_eq!(out.len(), rows * row_len, "row partition over wrong buffer");
    let workers = worker_count(rows, threads, min_rows_per_thread);
    record_region(workers);
    if workers <= 1 {
        body(0..rows, out);
        return;
    }
    let ranges = chunk_ranges(rows, workers);
    let body = &body;
    std::thread::scope(|s| {
        let mut rest = out;
        for r in ranges {
            let (block, tail) = rest.split_at_mut((r.end - r.start) * row_len);
            rest = tail;
            s.spawn(move || body(r, block));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly() {
        for n in [0usize, 1, 2, 7, 16, 100] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = chunk_ranges(n, parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(r.end > r.start);
                    next = r.end;
                }
                assert_eq!(next, n);
                assert!(ranges.len() <= parts.max(1));
            }
        }
    }

    #[test]
    fn parallel_reduce_partitions_in_order() {
        for threads in [1usize, 2, 4] {
            let parts = parallel_reduce(100, threads, 1, |r| r);
            let mut next = 0;
            for r in &parts {
                assert_eq!(r.start, next);
                next = r.end;
            }
            assert_eq!(next, 100);
        }
    }

    #[test]
    fn parallel_reduce_sums_match_serial() {
        let serial: u64 = (0..1000u64).sum();
        for threads in [1usize, 2, 3, 7] {
            let total: u64 =
                parallel_reduce(1000, threads, 1, |r| r.map(|i| i as u64).sum::<u64>())
                    .into_iter()
                    .sum();
            assert_eq!(total, serial);
        }
    }

    #[test]
    fn parallel_rows_mut_writes_every_row_once() {
        let rows = 37;
        let row_len = 5;
        for threads in [1usize, 2, 4, 40] {
            let mut out = vec![0.0f32; rows * row_len];
            parallel_rows_mut(&mut out, rows, row_len, threads, 1, |range, block| {
                for (local, row) in range.clone().enumerate() {
                    for v in &mut block[local * row_len..(local + 1) * row_len] {
                        *v += row as f32;
                    }
                }
            });
            for row in 0..rows {
                for c in 0..row_len {
                    assert_eq!(out[row * row_len + c], row as f32);
                }
            }
        }
    }

    #[test]
    fn small_work_runs_inline() {
        // min_per_thread larger than n → single chunk even with many threads
        let parts = parallel_reduce(8, 16, 100, |r| r);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0], 0..8);
    }

    #[test]
    fn min_items_per_thread_scales_inversely_with_cost() {
        // tiny items → huge minimum (stay serial); big items → minimum 1
        assert_eq!(min_items_per_thread(1), MIN_MACS_PER_THREAD as usize);
        assert_eq!(min_items_per_thread(0), MIN_MACS_PER_THREAD as usize);
        assert_eq!(min_items_per_thread(MIN_MACS_PER_THREAD), 1);
        assert_eq!(min_items_per_thread(u64::MAX), 1);
        let mid = min_items_per_thread(MIN_MACS_PER_THREAD / 4);
        assert_eq!(mid, 4);
    }

    #[test]
    fn set_max_threads_overrides() {
        set_max_threads(3);
        assert_eq!(max_threads(), 3);
        set_max_threads(1);
        assert_eq!(max_threads(), 1);
    }
}
