//! Dense matrix multiplication and panel-packed GEMM kernels.
//!
//! The general matmuls come in three layers:
//!
//! * the public API ([`matmul`], [`matmul_transpose_a`],
//!   [`matmul_transpose_b`]) — runs the parallel blocked kernel with the
//!   pool-wide thread count from [`crate::parallel::max_threads`];
//! * a generic layout driver ([`matmul_layout`],
//!   [`matmul_layout_threaded`], [`matmul_layout_reference`]) selecting
//!   the operand layout via [`MatmulLayout`] — one shape check, one entry
//!   point per execution flavor (the old per-layout `*_reference`/
//!   `*_threaded` wrapper names are gone);
//! * a single-threaded reference kernel (via
//!   [`matmul_layout_reference`]) — the original straightforward loops,
//!   kept as the semantic baseline the optimized kernels are
//!   property-tested against.
//!
//! On top of those sit the *panel-packed* register-tiled kernels used by
//! compiled execution plans: [`pack_dense_panels`]/[`dense_batch_into`]/
//! [`dense_batch_chw_into`] for dense layers, and
//! [`pack_conv_panels`]/[`conv_gemm_into`] for the im2col conv GEMM with
//! its fused bias+ReLU epilogue.
//!
//! Work is partitioned across threads by *output rows*, and every output
//! element accumulates its `k` terms in increasing-index order in all
//! kernels: matmul results are bitwise identical across thread counts,
//! and the batched dense/conv kernels are value-identical (`==` per
//! element — branchless and zero-skipping paths may differ in the sign of
//! exact zeros; see [`dense_batch_into`]). Zero operands are skipped
//! where noted; skipping only ever changes the sign of a zero.

use crate::error::TensorError;
use crate::parallel;
use crate::ShapeError;
use crate::Tensor;

/// Matmuls below this many multiply–accumulates run single-threaded: the
/// scoped-spawn overhead (~10 µs/thread) would exceed the kernel time.
const PAR_MIN_MACS: usize = 32 * 1024;

/// Column-tile width (in f32 elements) for the i-k-j kernel: one output
/// row tile plus one operand row tile stay resident in L1.
const JB: usize = 512;

fn check_rank2(t: &Tensor, name: &str) -> Result<(usize, usize), TensorError> {
    if t.shape().rank() != 2 {
        return Err(ShapeError::new(format!("{name} must be rank 2, got {}", t.shape())).into());
    }
    Ok((t.dims()[0], t.dims()[1]))
}

/// Minimum rows a worker must own for a kernel over `k`×`n`-cost rows to
/// go parallel. Crate-visible so the int8 kernels (`crate::qops`) apply
/// the same spawn threshold.
pub(crate) fn min_rows_per_thread(k: usize, n: usize) -> usize {
    PAR_MIN_MACS.div_ceil((k * n).max(1))
}

/// Core i-k-j kernel: accumulates `a (m×k) * b (k×n)` into `out` (m×n,
/// zero-initialized), row-partitioned across `threads` workers with
/// column tiling. Accumulation order per output element is increasing `k`,
/// identical to [`matmul_reference`].
///
/// Exposed as a raw-slice kernel so pre-packed execution plans
/// (`capnn-nn`'s compiled plans) can run GEMMs on their own buffers
/// without round-tripping through [`Tensor`] allocations.
pub fn matmul_into(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    parallel::parallel_rows_mut(
        out,
        m,
        n,
        threads,
        min_rows_per_thread(k, n),
        |rows, block| {
            for (local, i) in rows.enumerate() {
                let arow = &a[i * k..(i + 1) * k];
                let orow = &mut block[local * n..(local + 1) * n];
                let mut j0 = 0;
                while j0 < n {
                    let j1 = (j0 + JB).min(n);
                    for (kk, &aik) in arow.iter().enumerate() {
                        if aik == 0.0 {
                            continue;
                        }
                        let brow = &b[kk * n + j0..kk * n + j1];
                        for (o, &bkj) in orow[j0..j1].iter_mut().zip(brow) {
                            *o += aik * bkj;
                        }
                    }
                    j0 = j1;
                }
            }
        },
    );
}

/// Row-gathered dot-product kernel for transposed-B layouts: for each
/// output row `i`, `out[i][j] = Σ_c a[i][c] * b[j][c]`, skipping zero
/// `a` entries (the dense-forward fast path over masked/ReLU-sparse
/// activations). Row-partitioned across `threads`.
pub(crate) fn matmul_transpose_b_into(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    parallel::parallel_rows_mut(
        out,
        m,
        n,
        threads,
        min_rows_per_thread(k, n),
        |rows, block| {
            for (local, i) in rows.enumerate() {
                let arow = &a[i * k..(i + 1) * k];
                let orow = &mut block[local * n..(local + 1) * n];
                for (j, o) in orow.iter_mut().enumerate() {
                    let brow = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0;
                    for (&x, &y) in arow.iter().zip(brow) {
                        if x != 0.0 {
                            acc += x * y;
                        }
                    }
                    *o = acc;
                }
            }
        },
    );
}

/// Samples per register tile of the batched dense microkernel.
pub(crate) const DENSE_SB: usize = 4;

/// Output columns per register tile of the batched dense microkernel.
pub(crate) const DENSE_JT: usize = 8;

/// Packs a transposed dense weight matrix `wt` (input-major
/// `[n_in × n_out]`) into `DENSE_JT`-column panels for the batched dense
/// kernels: panel `t` holds columns `t·DENSE_JT ..` for every input `c`,
/// laid out `[t][c][jj]` contiguously, the last panel zero-padded to full
/// width. Panels turn the kernels' column-tile walk into a purely
/// sequential stream — every cache line fetched is fully used, whatever
/// `n_out` is. Padding contributes nothing arithmetically (padded columns
/// are never written to the output).
pub fn pack_dense_panels(wt: &[f32], n_in: usize, n_out: usize) -> Vec<f32> {
    let tiles = n_out.div_ceil(DENSE_JT);
    let mut packed = vec![0.0f32; tiles * n_in * DENSE_JT];
    for t in 0..tiles {
        let j0 = t * DENSE_JT;
        let jn = (n_out - j0).min(DENSE_JT);
        for c in 0..n_in {
            let dst = (t * n_in + c) * DENSE_JT;
            packed[dst..dst + jn].copy_from_slice(&wt[c * n_out + j0..c * n_out + j0 + jn]);
        }
    }
    packed
}

/// Register-blocked microkernel shared by [`dense_batch_into`] and
/// [`dense_batch_chw_into`]: computes one worker's rows of
/// `out[b][j] = bias[j] + Σ_c a[b][c]·wt[c][j]`, where activation element
/// `(b, c)` of `a` lives at `bases[c] + b*stride` (both supported layouts
/// are affine in the sample index; `bases` yields the per-`c` offsets in
/// ascending `c` order and is re-traversed per pass, so it must be a
/// cheap, clonable iterator — never a division per element). `panels` is
/// the [`pack_dense_panels`] layout of the weights.
///
/// Two paths, both accumulating bias first then `c` ascending per output
/// element:
///
/// * **full sample tiles** (`DENSE_SB` samples): a `DENSE_SB × DENSE_JT`
///   accumulator tile lives in registers for the whole reduction and the
///   kernel is branchless — zero activations are multiplied through
///   (adding an exact-zero term never changes a sum's value), trading a
///   handful of dead FLOPs for fully predictable, vectorizable code;
/// * **leftover samples** (fewer than `DENSE_SB`): one sample at a time
///   with the classic zero-skipping axpy, which wins on ReLU-sparse
///   single-sample latency where the skip amortizes over a whole row.
///
/// The two paths differ at most in the sign of exact-zero outputs, so
/// results are value-identical (`==` on every element, hence
/// argmax-identical) across batch sizes, tile positions and thread
/// counts.
///
/// The panel loop is the *outer* loop: each weight panel is streamed from
/// memory exactly once per call and every sample group consumes it while
/// it is cache-hot, so weight traffic amortizes over the whole worker
/// batch (the activation rows — a few hundred KB even at batch 32 — are
/// what gets re-read per panel, from L2 instead of RAM).
///
/// Dispatches at runtime to an AVX2 re-compilation of the same code on
/// x86-64 hosts that support it (one 8-float `ymm` register per
/// accumulator row instead of two `xmm`). Only the vector width changes:
/// Rust never contracts `mul + add` into fused ops, so the AVX2 build
/// produces bitwise-identical results to the baseline build.
#[inline]
#[allow(clippy::too_many_arguments)]
fn dense_batch_rows(
    a: &[f32],
    stride: usize,
    bases: impl Iterator<Item = usize> + Clone,
    panels: &[f32],
    bias: &[f32],
    block: &mut [f32],
    row0: usize,
    nb: usize,
    n_in: usize,
    n_out: usize,
) {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the avx2 target feature is present at runtime.
        unsafe {
            dense_batch_rows_avx2(a, stride, bases, panels, bias, block, row0, nb, n_in, n_out)
        };
        return;
    }
    dense_batch_rows_impl(a, stride, bases, panels, bias, block, row0, nb, n_in, n_out);
}

/// [`dense_batch_rows_impl`] compiled with the `avx2` target feature: the
/// identical safe code, auto-vectorized 8 lanes wide.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn dense_batch_rows_avx2(
    a: &[f32],
    stride: usize,
    bases: impl Iterator<Item = usize> + Clone,
    panels: &[f32],
    bias: &[f32],
    block: &mut [f32],
    row0: usize,
    nb: usize,
    n_in: usize,
    n_out: usize,
) {
    dense_batch_rows_impl(a, stride, bases, panels, bias, block, row0, nb, n_in, n_out);
}

/// Portable body of [`dense_batch_rows`]; see its docs.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn dense_batch_rows_impl(
    a: &[f32],
    stride: usize,
    bases: impl Iterator<Item = usize> + Clone,
    panels: &[f32],
    bias: &[f32],
    block: &mut [f32],
    row0: usize,
    nb: usize,
    n_in: usize,
    n_out: usize,
) {
    let tiles = n_out.div_ceil(DENSE_JT);
    for t in 0..tiles {
        let j0 = t * DENSE_JT;
        let jn = (n_out - j0).min(DENSE_JT);
        let panel = &panels[t * n_in * DENSE_JT..(t + 1) * n_in * DENSE_JT];
        let mut s0 = 0;
        while s0 + DENSE_SB <= nb {
            let tile0 = (row0 + s0) * stride;
            // Four separate local arrays (not one 2-D array): each promotes
            // cleanly to its own xmm register pair, which is what lets LLVM
            // keep the whole 4×8 tile in registers and vectorize the axpys.
            let mut acc0 = [0.0f32; DENSE_JT];
            let mut acc1 = [0.0f32; DENSE_JT];
            let mut acc2 = [0.0f32; DENSE_JT];
            let mut acc3 = [0.0f32; DENSE_JT];
            acc0[..jn].copy_from_slice(&bias[j0..j0 + jn]);
            acc1[..jn].copy_from_slice(&bias[j0..j0 + jn]);
            acc2[..jn].copy_from_slice(&bias[j0..j0 + jn]);
            acc3[..jn].copy_from_slice(&bias[j0..j0 + jn]);
            for (base, wrow) in bases.clone().zip(panel.chunks_exact(DENSE_JT)) {
                let wrow: &[f32; DENSE_JT] = wrow.try_into().expect("panel row");
                let a0 = a[base + tile0];
                let a1 = a[base + tile0 + stride];
                let a2 = a[base + tile0 + 2 * stride];
                let a3 = a[base + tile0 + 3 * stride];
                for (o, &w) in acc0.iter_mut().zip(wrow) {
                    *o += a0 * w;
                }
                for (o, &w) in acc1.iter_mut().zip(wrow) {
                    *o += a1 * w;
                }
                for (o, &w) in acc2.iter_mut().zip(wrow) {
                    *o += a2 * w;
                }
                for (o, &w) in acc3.iter_mut().zip(wrow) {
                    *o += a3 * w;
                }
            }
            block[s0 * n_out + j0..s0 * n_out + j0 + jn].copy_from_slice(&acc0[..jn]);
            block[(s0 + 1) * n_out + j0..(s0 + 1) * n_out + j0 + jn].copy_from_slice(&acc1[..jn]);
            block[(s0 + 2) * n_out + j0..(s0 + 2) * n_out + j0 + jn].copy_from_slice(&acc2[..jn]);
            block[(s0 + 3) * n_out + j0..(s0 + 3) * n_out + j0 + jn].copy_from_slice(&acc3[..jn]);
            s0 += DENSE_SB;
        }
        while s0 < nb {
            let tile0 = (row0 + s0) * stride;
            let mut acc = [0.0f32; DENSE_JT];
            acc[..jn].copy_from_slice(&bias[j0..j0 + jn]);
            for (base, wrow) in bases.clone().zip(panel.chunks_exact(DENSE_JT)) {
                let ac = a[base + tile0];
                if ac == 0.0 {
                    continue;
                }
                let wrow: &[f32; DENSE_JT] = wrow.try_into().expect("panel row");
                for (o, &w) in acc.iter_mut().zip(wrow) {
                    *o += ac * w;
                }
            }
            block[s0 * n_out + j0..s0 * n_out + j0 + jn].copy_from_slice(&acc[..jn]);
            s0 += 1;
        }
    }
}

/// Batched dense layer on *transposed packed weights*: for each sample
/// `b` in the sample-major activation matrix `a` (`batch × n_in`),
///
/// ```text
/// out[b][j] = bias[j] + Σ_c a[b][c] · wt[c][j]    (c ascending)
/// ```
///
/// with the weights supplied as `panels` — the [`pack_dense_panels`]
/// layout of the input-major `[n_in × n_out]` transposed weight matrix.
/// The accumulation order per output element — bias first, then inputs in
/// increasing index order — is identical to `Dense::forward` in
/// `capnn-nn`. Full sample tiles multiply zero activations through while
/// leftover samples skip them (see [`dense_batch_rows`]); either policy
/// only ever changes the sign of exact-zero terms, so results are
/// value-identical (`==` per element, argmax-identical) for every batch
/// size, tiling and thread count.
///
/// Samples are row-partitioned across `threads` workers; within a worker,
/// [`dense_batch_rows`] processes samples in register tiles so each
/// streamed weight panel is reused across the tile — the core
/// amortization that makes the batched serving path beat per-sample
/// execution.
#[allow(clippy::too_many_arguments)]
pub fn dense_batch_into(
    a: &[f32],
    panels: &[f32],
    bias: &[f32],
    out: &mut [f32],
    batch: usize,
    n_in: usize,
    n_out: usize,
    threads: usize,
) {
    parallel::parallel_rows_mut(
        out,
        batch,
        n_out,
        threads,
        min_rows_per_thread(n_in, n_out),
        |rows, block| {
            dense_batch_rows(
                a,
                n_in,
                0..n_in,
                panels,
                bias,
                block,
                rows.start,
                rows.len(),
                n_in,
                n_out,
            );
        },
    );
}

/// [`dense_batch_into`] over a *channel-major batched* CHW activation, as
/// produced by the convolutional front of a compiled plan: element
/// `(b, c, p)` of `a` lives at `(c*batch + b)*plane + p`. Logically this
/// is the dense layer applied to each sample's flattened `[c*plane + p]`
/// vector; `panels` is the [`pack_dense_panels`] layout of the
/// `[channels*plane × n_out]` input-major weights and `out` is
/// sample-major `batch × n_out`. Accumulation per output element is bias
/// first then flat input index ascending — bitwise identical to
/// flattening followed by [`dense_batch_into`].
#[allow(clippy::too_many_arguments)]
pub fn dense_batch_chw_into(
    a: &[f32],
    panels: &[f32],
    bias: &[f32],
    out: &mut [f32],
    batch: usize,
    channels: usize,
    plane: usize,
    n_out: usize,
    threads: usize,
) {
    let n_in = channels * plane;
    parallel::parallel_rows_mut(
        out,
        batch,
        n_out,
        threads,
        min_rows_per_thread(n_in, n_out),
        |rows, block| {
            // element (b, c, p) lives at (c*batch + b)*plane + p: affine in
            // b with stride `plane` and base c*batch*plane + p
            let bases = (0..channels).flat_map(|c| (0..plane).map(move |p| c * batch * plane + p));
            dense_batch_rows(
                a,
                plane,
                bases,
                panels,
                bias,
                block,
                rows.start,
                rows.len(),
                n_in,
                n_out,
            );
        },
    );
}

/// Output-channel rows per register tile of the conv GEMM microkernel.
pub(crate) const CONV_MR: usize = 4;

/// Output columns per register tile of the conv GEMM microkernel.
pub(crate) const CONV_NR: usize = 8;

/// Length in elements of the [`pack_conv_panels`] buffer for an
/// `out_c × krows` weight matrix (the last panel is zero-padded to a full
/// `CONV_MR` rows).
pub fn conv_panels_len(out_c: usize, krows: usize) -> usize {
    out_c.div_ceil(CONV_MR) * krows * CONV_MR
}

/// Packs a conv weight matrix `w` (row-major `[out_c × krows]` with
/// `krows = in_c·k·k` — exactly the kept-channel layout compiled plans
/// gather) into `CONV_MR`-row panels for [`conv_gemm_into`]: panel `t`
/// holds output-channel rows `t·CONV_MR ..`, with element `(oc, r)` at
/// `(t·krows + r)·CONV_MR + (oc − t·CONV_MR)`, the last panel zero-padded
/// to full height. The microkernel then reads one contiguous
/// `CONV_MR`-float group per reduction step — a purely sequential stream
/// over the whole panel, mirroring what [`pack_dense_panels`] does for the
/// dense kernels. Padding rows contribute nothing (they are never written
/// back to the output).
pub fn pack_conv_panels(w: &[f32], out_c: usize, krows: usize) -> Vec<f32> {
    assert_eq!(w.len(), out_c * krows, "conv weight buffer shape");
    let mut packed = vec![0.0f32; conv_panels_len(out_c, krows)];
    for (oc, row) in w.chunks_exact(krows.max(1)).enumerate() {
        pack_conv_row(row, oc, krows, &mut packed);
    }
    packed
}

/// Scatters one `krows`-long output-channel row into the
/// [`pack_conv_panels`] layout at channel index `oc`. Crate-visible so
/// masked conv execution can gather kept weight rows straight into panel
/// form without materializing an intermediate dense matrix.
pub(crate) fn pack_conv_row(row: &[f32], oc: usize, krows: usize, packed: &mut [f32]) {
    let base = (oc / CONV_MR) * krows * CONV_MR + oc % CONV_MR;
    for (r, &v) in row.iter().enumerate() {
        packed[base + r * CONV_MR] = v;
    }
}

/// Panel-packed conv GEMM with fused epilogue: computes the im2col
/// product
///
/// ```text
/// out[oc][j] = Σ_r panels(oc, r) · cols[r][j]    (r ascending)
/// ```
///
/// over `out_c × n` outputs with reduction depth `krows`, then applies
/// the epilogue in-register before storing: `+ bias[oc]` when `bias` is
/// given, then `max(·, 0)` when `relu` is set — eliminating the separate
/// bias and activation passes over the conv output. `panels` is the
/// [`pack_conv_panels`] layout of the weights; `cols` is the (possibly
/// batch-wide) im2col matrix, row-major `krows × n`.
///
/// Per output element the accumulation order is `r` ascending, then bias,
/// then ReLU — exactly the sequence [`matmul_into`] + bias sweep +
/// separate clamp produces, except the microkernel is branchless: zero
/// weights are multiplied through (an exact-zero term never changes a
/// sum's value, only possibly the sign of an exact-zero result, so
/// outputs stay value-identical, `==` per element). Output rows are
/// partitioned across `threads` workers; a worker's range may start or
/// end mid-panel, which is handled by a strided single-row edge path that
/// accumulates in the same order — results are identical across thread
/// counts.
///
/// Dispatches at runtime to an AVX2 re-compilation of the same code on
/// x86-64 hosts that support it. Only the vector width changes: Rust
/// never contracts `mul + add` into fused ops, so the AVX2 build produces
/// bitwise-identical results to the baseline build.
#[allow(clippy::too_many_arguments)]
pub fn conv_gemm_into(
    panels: &[f32],
    cols: &[f32],
    bias: Option<&[f32]>,
    out: &mut [f32],
    out_c: usize,
    krows: usize,
    n: usize,
    relu: bool,
    threads: usize,
) {
    assert_eq!(panels.len(), conv_panels_len(out_c, krows), "panel buffer");
    assert!(cols.len() >= krows * n, "im2col buffer");
    assert!(out.len() >= out_c * n, "output buffer");
    parallel::parallel_rows_mut(
        out,
        out_c,
        n,
        threads,
        min_rows_per_thread(krows, n),
        |rows, block| {
            conv_gemm_rows(
                panels, cols, bias, block, rows.start, rows.end, krows, n, relu,
            );
        },
    );
}

/// Runtime-dispatched worker body of [`conv_gemm_into`]: rows
/// `r0..r1` of the output into `block`.
#[inline]
#[allow(clippy::too_many_arguments)]
fn conv_gemm_rows(
    panels: &[f32],
    cols: &[f32],
    bias: Option<&[f32]>,
    block: &mut [f32],
    r0: usize,
    r1: usize,
    krows: usize,
    n: usize,
    relu: bool,
) {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the avx2 target feature is present at runtime.
        unsafe { conv_gemm_rows_avx2(panels, cols, bias, block, r0, r1, krows, n, relu) };
        return;
    }
    conv_gemm_rows_impl(panels, cols, bias, block, r0, r1, krows, n, relu);
}

/// [`conv_gemm_rows_impl`] compiled with the `avx2` target feature: the
/// identical safe code, auto-vectorized 8 lanes wide.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn conv_gemm_rows_avx2(
    panels: &[f32],
    cols: &[f32],
    bias: Option<&[f32]>,
    block: &mut [f32],
    r0: usize,
    r1: usize,
    krows: usize,
    n: usize,
    relu: bool,
) {
    conv_gemm_rows_impl(panels, cols, bias, block, r0, r1, krows, n, relu);
}

/// Portable body of [`conv_gemm_rows`]; see [`conv_gemm_into`].
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn conv_gemm_rows_impl(
    panels: &[f32],
    cols: &[f32],
    bias: Option<&[f32]>,
    block: &mut [f32],
    r0: usize,
    r1: usize,
    krows: usize,
    n: usize,
    relu: bool,
) {
    let bias_at = |oc: usize| bias.map_or(0.0, |b| b[oc]);
    let mut oc = r0;
    while oc < r1 {
        if oc.is_multiple_of(CONV_MR) && oc + CONV_MR <= r1 {
            let panel = &panels[(oc / CONV_MR) * krows * CONV_MR..][..krows * CONV_MR];
            let bs = [
                bias_at(oc),
                bias_at(oc + 1),
                bias_at(oc + 2),
                bias_at(oc + 3),
            ];
            let tile = &mut block[(oc - r0) * n..(oc - r0 + CONV_MR) * n];
            conv_gemm_tile(panel, cols, bs, tile, n, relu);
            oc += CONV_MR;
        } else {
            let row = &mut block[(oc - r0) * n..(oc - r0 + 1) * n];
            conv_gemm_row(panels, cols, bias_at(oc), row, oc, krows, n, relu);
            oc += 1;
        }
    }
}

/// One full `CONV_MR`-row panel against every `CONV_NR`-wide column tile;
/// see [`conv_gemm_into`] for the numeric contract.
#[inline(always)]
fn conv_gemm_tile(
    panel: &[f32],
    cols: &[f32],
    bias: [f32; CONV_MR],
    tile: &mut [f32],
    n: usize,
    relu: bool,
) {
    let mut j0 = 0;
    while j0 < n {
        let jn = (n - j0).min(CONV_NR);
        // Four separate accumulator arrays, as in the dense microkernel:
        // each promotes to its own ymm register under AVX2.
        let mut acc0 = [0.0f32; CONV_NR];
        let mut acc1 = [0.0f32; CONV_NR];
        let mut acc2 = [0.0f32; CONV_NR];
        let mut acc3 = [0.0f32; CONV_NR];
        if jn == CONV_NR {
            for (r, w) in panel.chunks_exact(CONV_MR).enumerate() {
                let crow: &[f32; CONV_NR] = cols[r * n + j0..r * n + j0 + CONV_NR]
                    .try_into()
                    .expect("column tile");
                for (o, &c) in acc0.iter_mut().zip(crow) {
                    *o += w[0] * c;
                }
                for (o, &c) in acc1.iter_mut().zip(crow) {
                    *o += w[1] * c;
                }
                for (o, &c) in acc2.iter_mut().zip(crow) {
                    *o += w[2] * c;
                }
                for (o, &c) in acc3.iter_mut().zip(crow) {
                    *o += w[3] * c;
                }
            }
        } else {
            for (r, w) in panel.chunks_exact(CONV_MR).enumerate() {
                let crow = &cols[r * n + j0..r * n + j0 + jn];
                for (o, &c) in acc0[..jn].iter_mut().zip(crow) {
                    *o += w[0] * c;
                }
                for (o, &c) in acc1[..jn].iter_mut().zip(crow) {
                    *o += w[1] * c;
                }
                for (o, &c) in acc2[..jn].iter_mut().zip(crow) {
                    *o += w[2] * c;
                }
                for (o, &c) in acc3[..jn].iter_mut().zip(crow) {
                    *o += w[3] * c;
                }
            }
        }
        epilogue_store(&acc0[..jn], bias[0], relu, &mut tile[j0..j0 + jn]);
        epilogue_store(&acc1[..jn], bias[1], relu, &mut tile[n + j0..n + j0 + jn]);
        epilogue_store(
            &acc2[..jn],
            bias[2],
            relu,
            &mut tile[2 * n + j0..2 * n + j0 + jn],
        );
        epilogue_store(
            &acc3[..jn],
            bias[3],
            relu,
            &mut tile[3 * n + j0..3 * n + j0 + jn],
        );
        j0 += CONV_NR;
    }
}

/// Single output-channel edge path for worker ranges that start or end
/// mid-panel: reads the packed layout with stride `CONV_MR`, accumulating
/// in the same `r`-ascending order as [`conv_gemm_tile`].
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn conv_gemm_row(
    panels: &[f32],
    cols: &[f32],
    bias: f32,
    row: &mut [f32],
    oc: usize,
    krows: usize,
    n: usize,
    relu: bool,
) {
    let base = (oc / CONV_MR) * krows * CONV_MR + oc % CONV_MR;
    let mut j0 = 0;
    while j0 < n {
        let jn = (n - j0).min(CONV_NR);
        let mut acc = [0.0f32; CONV_NR];
        for r in 0..krows {
            let w = panels[base + r * CONV_MR];
            let crow = &cols[r * n + j0..r * n + j0 + jn];
            for (o, &c) in acc[..jn].iter_mut().zip(crow) {
                *o += w * c;
            }
        }
        epilogue_store(&acc[..jn], bias, relu, &mut row[j0..j0 + jn]);
        j0 += CONV_NR;
    }
}

/// Fused conv epilogue: add the channel bias, optionally clamp at zero,
/// store. Runs on register-resident accumulators so the conv output is
/// touched exactly once.
#[inline(always)]
fn epilogue_store(acc: &[f32], bias: f32, relu: bool, dst: &mut [f32]) {
    for (o, &v) in dst.iter_mut().zip(acc) {
        let v = v + bias;
        *o = if relu { v.max(0.0) } else { v };
    }
}

/// Computes `a (m×k) * b (k×n)` into an `m×n` tensor.
///
/// # Errors
///
/// Returns a shape error if either operand is not rank 2 or the inner
/// dimensions differ.
///
/// # Examples
///
/// ```
/// use capnn_tensor::{matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
/// let b = Tensor::from_vec(vec![3.0, 4.0], &[2, 1]).unwrap();
/// assert_eq!(matmul(&a, &b).unwrap().as_slice(), &[11.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    matmul_layout(a, b, MatmulLayout::Plain)
}

/// Computes `aᵀ (k×m)ᵀ * b (k×n)`, i.e. `a` is stored transposed.
///
/// # Errors
///
/// Returns a shape error on rank/dimension mismatch.
pub fn matmul_transpose_a(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    matmul_layout(a, b, MatmulLayout::TransposeA)
}

/// Computes `a (m×k) * bᵀ (n×k)ᵀ`, i.e. `b` is stored transposed.
///
/// This is the fast path for dense-layer forward passes where weights are
/// stored `[out, in]`. Zero elements of `a` are skipped, so ReLU-sparse
/// and masked activations pay only for their live entries.
///
/// # Errors
///
/// Returns a shape error on rank/dimension mismatch.
pub fn matmul_transpose_b(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    matmul_layout(a, b, MatmulLayout::TransposeB)
}

/// Storage layout of the operands of the generic matmul driver
/// ([`matmul_layout`] and friends).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatmulLayout {
    /// `a (m×k) * b (k×n)` — both operands row-major as written.
    Plain,
    /// `a` stored transposed (`k×m`): computes `aᵀ * b`.
    TransposeA,
    /// `b` stored transposed (`n×k`): computes `a * bᵀ`.
    TransposeB,
}

/// Shared shape check of the matmul drivers: validates ranks and the
/// inner dimension under `layout`, returning `(m, k, n)`.
fn matmul_dims(
    a: &Tensor,
    b: &Tensor,
    layout: MatmulLayout,
) -> Result<(usize, usize, usize), TensorError> {
    let (a0, a1) = check_rank2(a, "lhs")?;
    let (b0, b1) = check_rank2(b, "rhs")?;
    let (m, ka) = match layout {
        MatmulLayout::Plain | MatmulLayout::TransposeB => (a0, a1),
        MatmulLayout::TransposeA => (a1, a0),
    };
    let (kb, n) = match layout {
        MatmulLayout::Plain | MatmulLayout::TransposeA => (b0, b1),
        MatmulLayout::TransposeB => (b1, b0),
    };
    if ka != kb {
        return Err(ShapeError::new(format!(
            "matmul ({layout:?}) inner dims {ka} vs {kb} ({} * {})",
            a.shape(),
            b.shape()
        ))
        .into());
    }
    Ok((m, ka, n))
}

/// Generic matmul driver: [`matmul_layout_threaded`] with the pool-wide
/// thread count from [`crate::parallel::max_threads`].
///
/// # Errors
///
/// Returns a shape error if either operand is not rank 2 or the inner
/// dimensions differ under `layout`.
pub fn matmul_layout(a: &Tensor, b: &Tensor, layout: MatmulLayout) -> Result<Tensor, TensorError> {
    matmul_layout_threaded(a, b, layout, parallel::max_threads())
}

/// Generic parallel matmul driver with an explicit worker count
/// (1 = fully serial): one shape check and one entry point for all three
/// operand layouts. Output rows are partitioned across workers; every
/// output element accumulates over `k` in increasing order, so results
/// are bitwise identical across thread counts and match
/// [`matmul_layout_reference`].
///
/// # Errors
///
/// Same conditions as [`matmul_layout`].
pub fn matmul_layout_threaded(
    a: &Tensor,
    b: &Tensor,
    layout: MatmulLayout,
    threads: usize,
) -> Result<Tensor, TensorError> {
    let (m, k, n) = matmul_dims(a, b, layout)?;
    let mut out = Tensor::zeros(&[m, n]);
    let (av, bv) = (a.as_slice(), b.as_slice());
    match layout {
        MatmulLayout::Plain => matmul_into(av, bv, out.as_mut_slice(), m, k, n, threads),
        MatmulLayout::TransposeA => {
            matmul_transpose_a_into(av, bv, out.as_mut_slice(), m, k, n, threads)
        }
        MatmulLayout::TransposeB => {
            matmul_transpose_b_into(av, bv, out.as_mut_slice(), m, k, n, threads)
        }
    }
    Ok(out)
}

/// Single-threaded reference for [`matmul_layout`]: the original
/// straightforward loops of each layout, kept as the semantic baseline
/// the optimized kernels are property-tested against. `Plain` and
/// `TransposeA` skip zero `a` entries; `TransposeB` is the dense
/// dot-product loop with no skipping.
///
/// # Errors
///
/// Same conditions as [`matmul_layout`].
pub fn matmul_layout_reference(
    a: &Tensor,
    b: &Tensor,
    layout: MatmulLayout,
) -> Result<Tensor, TensorError> {
    let (m, k, n) = matmul_dims(a, b, layout)?;
    let mut out = Tensor::zeros(&[m, n]);
    let av = a.as_slice();
    let bv = b.as_slice();
    let ov = out.as_mut_slice();
    match layout {
        MatmulLayout::Plain => {
            for i in 0..m {
                let arow = &av[i * k..(i + 1) * k];
                let orow = &mut ov[i * n..(i + 1) * n];
                for (kk, &aik) in arow.iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = &bv[kk * n..(kk + 1) * n];
                    for (o, &bkj) in orow.iter_mut().zip(brow) {
                        *o += aik * bkj;
                    }
                }
            }
        }
        MatmulLayout::TransposeA => {
            for kk in 0..k {
                let arow = &av[kk * m..(kk + 1) * m];
                let brow = &bv[kk * n..(kk + 1) * n];
                for (i, &aki) in arow.iter().enumerate() {
                    if aki == 0.0 {
                        continue;
                    }
                    let orow = &mut ov[i * n..(i + 1) * n];
                    for (o, &bkj) in orow.iter_mut().zip(brow) {
                        *o += aki * bkj;
                    }
                }
            }
        }
        MatmulLayout::TransposeB => {
            for i in 0..m {
                let arow = &av[i * k..(i + 1) * k];
                for j in 0..n {
                    let brow = &bv[j * k..(j + 1) * k];
                    let mut acc = 0.0;
                    for (&x, &y) in arow.iter().zip(brow) {
                        acc += x * y;
                    }
                    ov[i * n + j] = acc;
                }
            }
        }
    }
    Ok(out)
}

/// Row-partitioned kernel for the transposed-A layout: for each output
/// row `i`, gathers column `i` of `a` (stride `m`) while streaming rows
/// of `b`, skipping zero `a` entries. Accumulation per element is `k`
/// ascending, matching the reference.
pub(crate) fn matmul_transpose_a_into(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    parallel::parallel_rows_mut(
        out,
        m,
        n,
        threads,
        min_rows_per_thread(k, n),
        |rows, block| {
            for (local, i) in rows.enumerate() {
                let orow = &mut block[local * n..(local + 1) * n];
                for kk in 0..k {
                    let aki = a[kk * m + i];
                    if aki == 0.0 {
                        continue;
                    }
                    let brow = &b[kk * n..(kk + 1) * n];
                    for (o, &bkj) in orow.iter_mut().zip(brow) {
                        *o += aki * bkj;
                    }
                }
            }
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::XorShiftRng;

    #[test]
    fn matmul_small_known() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = XorShiftRng::new(1);
        let a = Tensor::uniform(&[4, 4], -1.0, 1.0, &mut rng);
        let c = matmul(&a, &Tensor::eye(4)).unwrap();
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul(&a, &Tensor::zeros(&[3])).is_err());
        assert!(matmul(&Tensor::zeros(&[3]), &a).is_err());
        assert!(matmul_layout_reference(&a, &b, MatmulLayout::Plain).is_err());
        assert!(matmul_layout_threaded(&a, &b, MatmulLayout::Plain, 2).is_err());
    }

    #[test]
    fn transpose_variants_agree_with_plain() {
        let mut rng = XorShiftRng::new(2);
        let a = Tensor::uniform(&[3, 5], -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(&[5, 4], -1.0, 1.0, &mut rng);
        let plain = matmul(&a, &b).unwrap();

        let at = a.transpose().unwrap();
        let via_ta = matmul_transpose_a(&at, &b).unwrap();
        let bt = b.transpose().unwrap();
        let via_tb = matmul_transpose_b(&a, &bt).unwrap();

        for ((&x, &y), &z) in plain
            .as_slice()
            .iter()
            .zip(via_ta.as_slice())
            .zip(via_tb.as_slice())
        {
            assert!((x - y).abs() < 1e-5);
            assert!((x - z).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_variants_reject_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 5]);
        assert!(matmul_transpose_a(&a, &b).is_err());
        assert!(matmul_transpose_b(&a, &b).is_err());
        assert!(matmul_layout_reference(&a, &b, MatmulLayout::TransposeA).is_err());
        assert!(matmul_layout_reference(&a, &b, MatmulLayout::TransposeB).is_err());
        assert!(matmul_layout_threaded(&a, &b, MatmulLayout::TransposeA, 2).is_err());
        assert!(matmul_layout_threaded(&a, &b, MatmulLayout::TransposeB, 2).is_err());
    }

    #[test]
    fn matmul_with_zero_dim() {
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[0, 2]);
    }

    #[test]
    fn threaded_kernels_match_reference_bitwise() {
        let mut rng = XorShiftRng::new(9);
        // n > JB exercises the column-tiled path
        let a = Tensor::uniform(&[7, 13], -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(&[13, 600], -1.0, 1.0, &mut rng);
        let reference = matmul_layout_reference(&a, &b, MatmulLayout::Plain).unwrap();
        for threads in [1usize, 2, 3, 8] {
            let got = matmul_layout_threaded(&a, &b, MatmulLayout::Plain, threads).unwrap();
            assert_eq!(got.as_slice(), reference.as_slice(), "threads={threads}");
        }

        let at = a.transpose().unwrap();
        let ta_ref = matmul_layout_reference(&at, &b, MatmulLayout::TransposeA).unwrap();
        for threads in [1usize, 2, 5] {
            let got = matmul_layout_threaded(&at, &b, MatmulLayout::TransposeA, threads).unwrap();
            assert_eq!(got.as_slice(), ta_ref.as_slice(), "threads={threads}");
        }
    }

    /// Scalar reference: bias first, then inputs ascending — the
    /// `Dense::forward` contract the batched kernels must reproduce.
    fn dense_reference(x: &[f32], wt: &[f32], bias: &[f32], n_in: usize, n_out: usize) -> Vec<f32> {
        let mut out = bias.to_vec();
        for c in 0..n_in {
            for (j, o) in out.iter_mut().enumerate() {
                if x[c] != 0.0 {
                    *o += x[c] * wt[c * n_out + j];
                }
            }
        }
        out
    }

    #[test]
    fn dense_batch_matches_per_sample_reference() {
        let mut rng = XorShiftRng::new(21);
        let (n_in, n_out) = (37, 19);
        let wt = Tensor::uniform(&[n_in, n_out], -1.0, 1.0, &mut rng);
        let bias = Tensor::uniform(&[n_out], -0.5, 0.5, &mut rng);
        for batch in [1usize, 3, 8, 20] {
            let mut a = Tensor::uniform(&[batch, n_in], -1.0, 1.0, &mut rng);
            // plant zeros like ReLU activations
            for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
                if i % 5 == 0 {
                    *v = 0.0;
                }
            }
            let panels = pack_dense_panels(wt.as_slice(), n_in, n_out);
            for threads in [1usize, 3] {
                let mut out = vec![0.0f32; batch * n_out];
                dense_batch_into(
                    a.as_slice(),
                    &panels,
                    bias.as_slice(),
                    &mut out,
                    batch,
                    n_in,
                    n_out,
                    threads,
                );
                for b in 0..batch {
                    let want = dense_reference(
                        &a.as_slice()[b * n_in..(b + 1) * n_in],
                        wt.as_slice(),
                        bias.as_slice(),
                        n_in,
                        n_out,
                    );
                    assert_eq!(
                        &out[b * n_out..(b + 1) * n_out],
                        &want[..],
                        "batch={batch} threads={threads} sample={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn dense_batch_chw_matches_flattened() {
        let mut rng = XorShiftRng::new(23);
        let (channels, plane, n_out, batch) = (3usize, 10usize, 7usize, 5usize);
        let n_in = channels * plane;
        let wt = Tensor::uniform(&[n_in, n_out], -1.0, 1.0, &mut rng);
        let bias = Tensor::uniform(&[n_out], -0.5, 0.5, &mut rng);
        let flat = Tensor::uniform(&[batch, n_in], -1.0, 1.0, &mut rng);
        // repack sample-major flat into channel-major batched CHW
        let mut chw = vec![0.0f32; batch * n_in];
        for b in 0..batch {
            for c in 0..channels {
                for p in 0..plane {
                    chw[(c * batch + b) * plane + p] = flat.as_slice()[b * n_in + c * plane + p];
                }
            }
        }
        let panels = pack_dense_panels(wt.as_slice(), n_in, n_out);
        let mut want = vec![0.0f32; batch * n_out];
        dense_batch_into(
            flat.as_slice(),
            &panels,
            bias.as_slice(),
            &mut want,
            batch,
            n_in,
            n_out,
            1,
        );
        for threads in [1usize, 2] {
            let mut got = vec![0.0f32; batch * n_out];
            dense_batch_chw_into(
                &chw,
                &panels,
                bias.as_slice(),
                &mut got,
                batch,
                channels,
                plane,
                n_out,
                threads,
            );
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn dense_batch_zero_in_features_yields_bias() {
        let bias = [1.5f32, -2.0];
        let mut out = vec![0.0f32; 4];
        dense_batch_into(&[], &[], &bias, &mut out, 2, 0, 2, 1);
        assert_eq!(out, vec![1.5, -2.0, 1.5, -2.0]);
    }

    /// The layout driver is the sole matmul surface: every layout's
    /// threaded path agrees with its single-threaded reference for any
    /// worker count, and all three layouts compute the same product when
    /// fed the appropriately transposed operands.
    #[test]
    fn layout_driver_covers_all_layouts() {
        let mut rng = XorShiftRng::new(31);
        let a = Tensor::uniform(&[5, 7], -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(&[7, 6], -1.0, 1.0, &mut rng);
        let at = a.transpose().unwrap();
        let bt = b.transpose().unwrap();
        let plain = matmul(&a, &b).unwrap();
        let cases: [(MatmulLayout, &Tensor, &Tensor); 3] = [
            (MatmulLayout::Plain, &a, &b),
            (MatmulLayout::TransposeA, &at, &b),
            (MatmulLayout::TransposeB, &a, &bt),
        ];
        for (layout, x, y) in cases {
            let reference = matmul_layout_reference(x, y, layout).unwrap();
            assert_eq!(reference.dims(), plain.dims(), "{layout:?}");
            for (i, (&got, &want)) in reference
                .as_slice()
                .iter()
                .zip(plain.as_slice())
                .enumerate()
            {
                assert!(
                    (got - want).abs() < 1e-5,
                    "{layout:?} [{i}]: {got} vs {want}"
                );
            }
            for threads in [1usize, 2, 3] {
                let got = matmul_layout_threaded(x, y, layout, threads).unwrap();
                assert_eq!(
                    got.as_slice(),
                    reference.as_slice(),
                    "{layout:?} t={threads}"
                );
            }
        }
        // shape errors flow through the shared check
        let bad = Tensor::zeros(&[3, 3]);
        for layout in [
            MatmulLayout::Plain,
            MatmulLayout::TransposeA,
            MatmulLayout::TransposeB,
        ] {
            assert!(matmul_layout(&Tensor::zeros(&[2, 4]), &bad, layout).is_err());
            assert!(matmul_layout(&Tensor::zeros(&[4]), &bad, layout).is_err());
        }
    }

    /// Reference for the fused conv GEMM: plain matmul into a scratch
    /// matrix, then a separate bias sweep and clamp — the exact sequence
    /// the fused kernel replaces.
    fn conv_gemm_reference(
        w: &[f32],
        cols: &[f32],
        bias: Option<&[f32]>,
        out_c: usize,
        krows: usize,
        n: usize,
        relu: bool,
    ) -> Vec<f32> {
        let mut out = vec![0.0f32; out_c * n];
        matmul_into(w, cols, &mut out, out_c, krows, n, 1);
        if let Some(bias) = bias {
            for oc in 0..out_c {
                for v in &mut out[oc * n..(oc + 1) * n] {
                    *v += bias[oc];
                }
            }
        }
        if relu {
            for v in &mut out {
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
        }
        out
    }

    #[test]
    fn pack_conv_panels_layout_known() {
        // 5 output channels, krows 2: two panels, second half-padded
        let w: Vec<f32> = (0..10).map(|v| v as f32 + 1.0).collect();
        let packed = pack_conv_panels(&w, 5, 2);
        assert_eq!(packed.len(), conv_panels_len(5, 2));
        // panel 0, r = 0 holds w[oc][0] for oc 0..4
        assert_eq!(&packed[0..4], &[1.0, 3.0, 5.0, 7.0]);
        // panel 0, r = 1 holds w[oc][1] for oc 0..4
        assert_eq!(&packed[4..8], &[2.0, 4.0, 6.0, 8.0]);
        // panel 1 holds oc 4 plus zero padding
        assert_eq!(&packed[8..12], &[9.0, 0.0, 0.0, 0.0]);
        assert_eq!(&packed[12..16], &[10.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn conv_gemm_matches_matmul_plus_epilogue() {
        let mut rng = XorShiftRng::new(41);
        // out_c sweeps across panel boundaries; n across column tiles
        for (out_c, krows, n) in [
            (1usize, 9usize, 5usize),
            (4, 18, 16),
            (6, 27, 70),
            (12, 54, 64),
        ] {
            let w = Tensor::uniform(&[out_c, krows], -1.0, 1.0, &mut rng);
            let cols = Tensor::uniform(&[krows, n], -1.0, 1.0, &mut rng);
            let bias = Tensor::uniform(&[out_c], -0.5, 0.5, &mut rng);
            let panels = pack_conv_panels(w.as_slice(), out_c, krows);
            for relu in [false, true] {
                for bias_opt in [None, Some(bias.as_slice())] {
                    let want = conv_gemm_reference(
                        w.as_slice(),
                        cols.as_slice(),
                        bias_opt,
                        out_c,
                        krows,
                        n,
                        relu,
                    );
                    for threads in [1usize, 2, 5] {
                        let mut got = vec![0.0f32; out_c * n];
                        conv_gemm_into(
                            &panels,
                            cols.as_slice(),
                            bias_opt,
                            &mut got,
                            out_c,
                            krows,
                            n,
                            relu,
                            threads,
                        );
                        assert_eq!(
                            got, want,
                            "out_c={out_c} krows={krows} n={n} relu={relu} threads={threads}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn conv_gemm_zero_depth_is_bias_epilogue() {
        // krows == 0: pure epilogue (bias then clamp) over every column
        let bias = [0.75f32, -1.25];
        let panels = pack_conv_panels(&[], 2, 0);
        let mut out = vec![f32::NAN; 6];
        conv_gemm_into(&panels, &[], Some(&bias), &mut out, 2, 0, 3, true, 1);
        assert_eq!(out, vec![0.75, 0.75, 0.75, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn transpose_b_zero_skip_matches_reference() {
        let mut rng = XorShiftRng::new(11);
        let mut a = Tensor::uniform(&[6, 40], -1.0, 1.0, &mut rng);
        // plant zeros like a masked/ReLU activation
        for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
            if i % 3 == 0 {
                *v = 0.0;
            }
        }
        let b = Tensor::uniform(&[10, 40], -1.0, 1.0, &mut rng);
        let reference = matmul_layout_reference(&a, &b, MatmulLayout::TransposeB).unwrap();
        for threads in [1usize, 2, 4] {
            let got = matmul_layout_threaded(&a, &b, MatmulLayout::TransposeB, threads).unwrap();
            for (&x, &y) in got.as_slice().iter().zip(reference.as_slice()) {
                assert!((x - y).abs() < 1e-6, "{x} vs {y}");
            }
        }
    }
}
