//! Dense matrix multiplication kernels.
//!
//! A straightforward i-k-j loop order with a transposed-B fast path keeps the
//! kernels cache-friendly without unsafe code; the networks in this
//! reproduction are small enough that this is the right complexity budget.

use crate::error::TensorError;
use crate::ShapeError;
use crate::Tensor;

fn check_rank2(t: &Tensor, name: &str) -> Result<(usize, usize), TensorError> {
    if t.shape().rank() != 2 {
        return Err(ShapeError::new(format!(
            "{name} must be rank 2, got {}",
            t.shape()
        ))
        .into());
    }
    Ok((t.dims()[0], t.dims()[1]))
}

/// Computes `a (m×k) * b (k×n)` into an `m×n` tensor.
///
/// # Errors
///
/// Returns a shape error if either operand is not rank 2 or the inner
/// dimensions differ.
///
/// # Examples
///
/// ```
/// use capnn_tensor::{matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
/// let b = Tensor::from_vec(vec![3.0, 4.0], &[2, 1]).unwrap();
/// assert_eq!(matmul(&a, &b).unwrap().as_slice(), &[11.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, ka) = check_rank2(a, "lhs")?;
    let (kb, n) = check_rank2(b, "rhs")?;
    if ka != kb {
        return Err(ShapeError::new(format!(
            "matmul inner dims {ka} vs {kb} ({} * {})",
            a.shape(),
            b.shape()
        ))
        .into());
    }
    let mut out = Tensor::zeros(&[m, n]);
    let av = a.as_slice();
    let bv = b.as_slice();
    let ov = out.as_mut_slice();
    for i in 0..m {
        let arow = &av[i * ka..(i + 1) * ka];
        let orow = &mut ov[i * n..(i + 1) * n];
        for (k, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = &bv[k * n..(k + 1) * n];
            for (o, &bkj) in orow.iter_mut().zip(brow) {
                *o += aik * bkj;
            }
        }
    }
    Ok(out)
}

/// Computes `aᵀ (k×m)ᵀ * b (k×n)`, i.e. `a` is stored transposed.
///
/// # Errors
///
/// Returns a shape error on rank/dimension mismatch.
pub fn matmul_transpose_a(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (ka, m) = check_rank2(a, "lhs")?;
    let (kb, n) = check_rank2(b, "rhs")?;
    if ka != kb {
        return Err(ShapeError::new(format!(
            "matmul_transpose_a inner dims {ka} vs {kb}"
        ))
        .into());
    }
    let mut out = Tensor::zeros(&[m, n]);
    let av = a.as_slice();
    let bv = b.as_slice();
    let ov = out.as_mut_slice();
    for k in 0..ka {
        let arow = &av[k * m..(k + 1) * m];
        let brow = &bv[k * n..(k + 1) * n];
        for (i, &aki) in arow.iter().enumerate() {
            if aki == 0.0 {
                continue;
            }
            let orow = &mut ov[i * n..(i + 1) * n];
            for (o, &bkj) in orow.iter_mut().zip(brow) {
                *o += aki * bkj;
            }
        }
    }
    Ok(out)
}

/// Computes `a (m×k) * bᵀ (n×k)ᵀ`, i.e. `b` is stored transposed.
///
/// This is the fast path for dense-layer forward passes where weights are
/// stored `[out, in]`.
///
/// # Errors
///
/// Returns a shape error on rank/dimension mismatch.
pub fn matmul_transpose_b(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, ka) = check_rank2(a, "lhs")?;
    let (n, kb) = check_rank2(b, "rhs")?;
    if ka != kb {
        return Err(ShapeError::new(format!(
            "matmul_transpose_b inner dims {ka} vs {kb}"
        ))
        .into());
    }
    let mut out = Tensor::zeros(&[m, n]);
    let av = a.as_slice();
    let bv = b.as_slice();
    let ov = out.as_mut_slice();
    for i in 0..m {
        let arow = &av[i * ka..(i + 1) * ka];
        for j in 0..n {
            let brow = &bv[j * kb..(j + 1) * kb];
            let mut acc = 0.0;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            ov[i * n + j] = acc;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::XorShiftRng;

    #[test]
    fn matmul_small_known() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = XorShiftRng::new(1);
        let a = Tensor::uniform(&[4, 4], -1.0, 1.0, &mut rng);
        let c = matmul(&a, &Tensor::eye(4)).unwrap();
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul(&a, &Tensor::zeros(&[3])).is_err());
        assert!(matmul(&Tensor::zeros(&[3]), &a).is_err());
    }

    #[test]
    fn transpose_variants_agree_with_plain() {
        let mut rng = XorShiftRng::new(2);
        let a = Tensor::uniform(&[3, 5], -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(&[5, 4], -1.0, 1.0, &mut rng);
        let plain = matmul(&a, &b).unwrap();

        let at = a.transpose().unwrap();
        let via_ta = matmul_transpose_a(&at, &b).unwrap();
        let bt = b.transpose().unwrap();
        let via_tb = matmul_transpose_b(&a, &bt).unwrap();

        for ((&x, &y), &z) in plain
            .as_slice()
            .iter()
            .zip(via_ta.as_slice())
            .zip(via_tb.as_slice())
        {
            assert!((x - y).abs() < 1e-5);
            assert!((x - z).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_variants_reject_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 5]);
        assert!(matmul_transpose_a(&a, &b).is_err());
        assert!(matmul_transpose_b(&a, &b).is_err());
    }

    #[test]
    fn matmul_with_zero_dim() {
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[0, 2]);
    }
}
