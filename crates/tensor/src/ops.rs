//! Dense matrix multiplication kernels.
//!
//! Each operation comes in three layers:
//!
//! * the public API ([`matmul`], [`matmul_transpose_a`],
//!   [`matmul_transpose_b`]) — runs the parallel blocked kernel with the
//!   pool-wide thread count from [`crate::parallel::max_threads`];
//! * an explicit-thread-count variant ([`matmul_threaded`], …) — used by
//!   benchmarks and the equivalence test-suite to sweep thread counts;
//! * a single-threaded reference kernel ([`matmul_reference`], …) — the
//!   original straightforward loops, kept as the semantic baseline the
//!   optimized kernels are property-tested against.
//!
//! Work is partitioned across threads by *output rows*, and every output
//! element accumulates its `k` terms in increasing-index order in all
//! kernels, so results are bitwise identical across thread counts (zero
//! operands are skipped; skipping only ever changes the sign of a zero).

use crate::error::TensorError;
use crate::parallel;
use crate::ShapeError;
use crate::Tensor;

/// Matmuls below this many multiply–accumulates run single-threaded: the
/// scoped-spawn overhead (~10 µs/thread) would exceed the kernel time.
const PAR_MIN_MACS: usize = 32 * 1024;

/// Column-tile width (in f32 elements) for the i-k-j kernel: one output
/// row tile plus one operand row tile stay resident in L1.
const JB: usize = 512;

fn check_rank2(t: &Tensor, name: &str) -> Result<(usize, usize), TensorError> {
    if t.shape().rank() != 2 {
        return Err(ShapeError::new(format!("{name} must be rank 2, got {}", t.shape())).into());
    }
    Ok((t.dims()[0], t.dims()[1]))
}

/// Minimum rows a worker must own for a kernel over `k`×`n`-cost rows to
/// go parallel.
fn min_rows_per_thread(k: usize, n: usize) -> usize {
    PAR_MIN_MACS.div_ceil((k * n).max(1))
}

/// Core i-k-j kernel: accumulates `a (m×k) * b (k×n)` into `out` (m×n,
/// zero-initialized), row-partitioned across `threads` workers with
/// column tiling. Accumulation order per output element is increasing `k`,
/// identical to [`matmul_reference`].
pub(crate) fn matmul_into(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    parallel::parallel_rows_mut(
        out,
        m,
        n,
        threads,
        min_rows_per_thread(k, n),
        |rows, block| {
            for (local, i) in rows.enumerate() {
                let arow = &a[i * k..(i + 1) * k];
                let orow = &mut block[local * n..(local + 1) * n];
                let mut j0 = 0;
                while j0 < n {
                    let j1 = (j0 + JB).min(n);
                    for (kk, &aik) in arow.iter().enumerate() {
                        if aik == 0.0 {
                            continue;
                        }
                        let brow = &b[kk * n + j0..kk * n + j1];
                        for (o, &bkj) in orow[j0..j1].iter_mut().zip(brow) {
                            *o += aik * bkj;
                        }
                    }
                    j0 = j1;
                }
            }
        },
    );
}

/// Row-gathered dot-product kernel for transposed-B layouts: for each
/// output row `i`, `out[i][j] = Σ_c a[i][c] * b[j][c]`, skipping zero
/// `a` entries (the dense-forward fast path over masked/ReLU-sparse
/// activations). Row-partitioned across `threads`.
pub(crate) fn matmul_transpose_b_into(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    parallel::parallel_rows_mut(
        out,
        m,
        n,
        threads,
        min_rows_per_thread(k, n),
        |rows, block| {
            for (local, i) in rows.enumerate() {
                let arow = &a[i * k..(i + 1) * k];
                let orow = &mut block[local * n..(local + 1) * n];
                for (j, o) in orow.iter_mut().enumerate() {
                    let brow = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0;
                    for (&x, &y) in arow.iter().zip(brow) {
                        if x != 0.0 {
                            acc += x * y;
                        }
                    }
                    *o = acc;
                }
            }
        },
    );
}

/// Computes `a (m×k) * b (k×n)` into an `m×n` tensor.
///
/// # Errors
///
/// Returns a shape error if either operand is not rank 2 or the inner
/// dimensions differ.
///
/// # Examples
///
/// ```
/// use capnn_tensor::{matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
/// let b = Tensor::from_vec(vec![3.0, 4.0], &[2, 1]).unwrap();
/// assert_eq!(matmul(&a, &b).unwrap().as_slice(), &[11.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    matmul_threaded(a, b, parallel::max_threads())
}

/// [`matmul`] with an explicit worker count (1 = fully serial).
///
/// # Errors
///
/// Same conditions as [`matmul`].
pub fn matmul_threaded(a: &Tensor, b: &Tensor, threads: usize) -> Result<Tensor, TensorError> {
    let (m, ka) = check_rank2(a, "lhs")?;
    let (kb, n) = check_rank2(b, "rhs")?;
    if ka != kb {
        return Err(ShapeError::new(format!(
            "matmul inner dims {ka} vs {kb} ({} * {})",
            a.shape(),
            b.shape()
        ))
        .into());
    }
    let mut out = Tensor::zeros(&[m, n]);
    matmul_into(
        a.as_slice(),
        b.as_slice(),
        out.as_mut_slice(),
        m,
        ka,
        n,
        threads,
    );
    Ok(out)
}

/// Single-threaded reference for [`matmul`] (the original i-k-j loop).
///
/// # Errors
///
/// Same conditions as [`matmul`].
pub fn matmul_reference(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, ka) = check_rank2(a, "lhs")?;
    let (kb, n) = check_rank2(b, "rhs")?;
    if ka != kb {
        return Err(ShapeError::new(format!(
            "matmul inner dims {ka} vs {kb} ({} * {})",
            a.shape(),
            b.shape()
        ))
        .into());
    }
    let mut out = Tensor::zeros(&[m, n]);
    let av = a.as_slice();
    let bv = b.as_slice();
    let ov = out.as_mut_slice();
    for i in 0..m {
        let arow = &av[i * ka..(i + 1) * ka];
        let orow = &mut ov[i * n..(i + 1) * n];
        for (k, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = &bv[k * n..(k + 1) * n];
            for (o, &bkj) in orow.iter_mut().zip(brow) {
                *o += aik * bkj;
            }
        }
    }
    Ok(out)
}

/// Computes `aᵀ (k×m)ᵀ * b (k×n)`, i.e. `a` is stored transposed.
///
/// # Errors
///
/// Returns a shape error on rank/dimension mismatch.
pub fn matmul_transpose_a(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    matmul_transpose_a_threaded(a, b, parallel::max_threads())
}

/// [`matmul_transpose_a`] with an explicit worker count (1 = fully
/// serial). Output rows are partitioned across workers; each element
/// still accumulates over `k` in increasing order.
///
/// # Errors
///
/// Same conditions as [`matmul_transpose_a`].
pub fn matmul_transpose_a_threaded(
    a: &Tensor,
    b: &Tensor,
    threads: usize,
) -> Result<Tensor, TensorError> {
    let (ka, m) = check_rank2(a, "lhs")?;
    let (kb, n) = check_rank2(b, "rhs")?;
    if ka != kb {
        return Err(ShapeError::new(format!("matmul_transpose_a inner dims {ka} vs {kb}")).into());
    }
    let mut out = Tensor::zeros(&[m, n]);
    let av = a.as_slice();
    let bv = b.as_slice();
    parallel::parallel_rows_mut(
        out.as_mut_slice(),
        m,
        n,
        threads,
        min_rows_per_thread(ka, n),
        |rows, block| {
            for (local, i) in rows.enumerate() {
                let orow = &mut block[local * n..(local + 1) * n];
                for k in 0..ka {
                    let aki = av[k * m + i];
                    if aki == 0.0 {
                        continue;
                    }
                    let brow = &bv[k * n..(k + 1) * n];
                    for (o, &bkj) in orow.iter_mut().zip(brow) {
                        *o += aki * bkj;
                    }
                }
            }
        },
    );
    Ok(out)
}

/// Single-threaded reference for [`matmul_transpose_a`] (the original
/// k-outer loop).
///
/// # Errors
///
/// Same conditions as [`matmul_transpose_a`].
pub fn matmul_transpose_a_reference(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (ka, m) = check_rank2(a, "lhs")?;
    let (kb, n) = check_rank2(b, "rhs")?;
    if ka != kb {
        return Err(ShapeError::new(format!("matmul_transpose_a inner dims {ka} vs {kb}")).into());
    }
    let mut out = Tensor::zeros(&[m, n]);
    let av = a.as_slice();
    let bv = b.as_slice();
    let ov = out.as_mut_slice();
    for k in 0..ka {
        let arow = &av[k * m..(k + 1) * m];
        let brow = &bv[k * n..(k + 1) * n];
        for (i, &aki) in arow.iter().enumerate() {
            if aki == 0.0 {
                continue;
            }
            let orow = &mut ov[i * n..(i + 1) * n];
            for (o, &bkj) in orow.iter_mut().zip(brow) {
                *o += aki * bkj;
            }
        }
    }
    Ok(out)
}

/// Computes `a (m×k) * bᵀ (n×k)ᵀ`, i.e. `b` is stored transposed.
///
/// This is the fast path for dense-layer forward passes where weights are
/// stored `[out, in]`. Zero elements of `a` are skipped, so ReLU-sparse
/// and masked activations pay only for their live entries.
///
/// # Errors
///
/// Returns a shape error on rank/dimension mismatch.
pub fn matmul_transpose_b(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    matmul_transpose_b_threaded(a, b, parallel::max_threads())
}

/// [`matmul_transpose_b`] with an explicit worker count (1 = fully
/// serial).
///
/// # Errors
///
/// Same conditions as [`matmul_transpose_b`].
pub fn matmul_transpose_b_threaded(
    a: &Tensor,
    b: &Tensor,
    threads: usize,
) -> Result<Tensor, TensorError> {
    let (m, ka) = check_rank2(a, "lhs")?;
    let (n, kb) = check_rank2(b, "rhs")?;
    if ka != kb {
        return Err(ShapeError::new(format!("matmul_transpose_b inner dims {ka} vs {kb}")).into());
    }
    let mut out = Tensor::zeros(&[m, n]);
    matmul_transpose_b_into(
        a.as_slice(),
        b.as_slice(),
        out.as_mut_slice(),
        m,
        ka,
        n,
        threads,
    );
    Ok(out)
}

/// Single-threaded reference for [`matmul_transpose_b`] (the original
/// dense dot-product loop, no zero skipping).
///
/// # Errors
///
/// Same conditions as [`matmul_transpose_b`].
pub fn matmul_transpose_b_reference(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, ka) = check_rank2(a, "lhs")?;
    let (n, kb) = check_rank2(b, "rhs")?;
    if ka != kb {
        return Err(ShapeError::new(format!("matmul_transpose_b inner dims {ka} vs {kb}")).into());
    }
    let mut out = Tensor::zeros(&[m, n]);
    let av = a.as_slice();
    let bv = b.as_slice();
    let ov = out.as_mut_slice();
    for i in 0..m {
        let arow = &av[i * ka..(i + 1) * ka];
        for j in 0..n {
            let brow = &bv[j * kb..(j + 1) * kb];
            let mut acc = 0.0;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            ov[i * n + j] = acc;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::XorShiftRng;

    #[test]
    fn matmul_small_known() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = XorShiftRng::new(1);
        let a = Tensor::uniform(&[4, 4], -1.0, 1.0, &mut rng);
        let c = matmul(&a, &Tensor::eye(4)).unwrap();
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul(&a, &Tensor::zeros(&[3])).is_err());
        assert!(matmul(&Tensor::zeros(&[3]), &a).is_err());
        assert!(matmul_reference(&a, &b).is_err());
        assert!(matmul_threaded(&a, &b, 2).is_err());
    }

    #[test]
    fn transpose_variants_agree_with_plain() {
        let mut rng = XorShiftRng::new(2);
        let a = Tensor::uniform(&[3, 5], -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(&[5, 4], -1.0, 1.0, &mut rng);
        let plain = matmul(&a, &b).unwrap();

        let at = a.transpose().unwrap();
        let via_ta = matmul_transpose_a(&at, &b).unwrap();
        let bt = b.transpose().unwrap();
        let via_tb = matmul_transpose_b(&a, &bt).unwrap();

        for ((&x, &y), &z) in plain
            .as_slice()
            .iter()
            .zip(via_ta.as_slice())
            .zip(via_tb.as_slice())
        {
            assert!((x - y).abs() < 1e-5);
            assert!((x - z).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_variants_reject_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 5]);
        assert!(matmul_transpose_a(&a, &b).is_err());
        assert!(matmul_transpose_b(&a, &b).is_err());
        assert!(matmul_transpose_a_reference(&a, &b).is_err());
        assert!(matmul_transpose_b_reference(&a, &b).is_err());
        assert!(matmul_transpose_a_threaded(&a, &b, 2).is_err());
        assert!(matmul_transpose_b_threaded(&a, &b, 2).is_err());
    }

    #[test]
    fn matmul_with_zero_dim() {
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[0, 2]);
    }

    #[test]
    fn threaded_kernels_match_reference_bitwise() {
        let mut rng = XorShiftRng::new(9);
        // n > JB exercises the column-tiled path
        let a = Tensor::uniform(&[7, 13], -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(&[13, 600], -1.0, 1.0, &mut rng);
        let reference = matmul_reference(&a, &b).unwrap();
        for threads in [1usize, 2, 3, 8] {
            let got = matmul_threaded(&a, &b, threads).unwrap();
            assert_eq!(got.as_slice(), reference.as_slice(), "threads={threads}");
        }

        let at = a.transpose().unwrap();
        let ta_ref = matmul_transpose_a_reference(&at, &b).unwrap();
        for threads in [1usize, 2, 5] {
            let got = matmul_transpose_a_threaded(&at, &b, threads).unwrap();
            assert_eq!(got.as_slice(), ta_ref.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn transpose_b_zero_skip_matches_reference() {
        let mut rng = XorShiftRng::new(11);
        let mut a = Tensor::uniform(&[6, 40], -1.0, 1.0, &mut rng);
        // plant zeros like a masked/ReLU activation
        for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
            if i % 3 == 0 {
                *v = 0.0;
            }
        }
        let b = Tensor::uniform(&[10, 40], -1.0, 1.0, &mut rng);
        let reference = matmul_transpose_b_reference(&a, &b).unwrap();
        for threads in [1usize, 2, 4] {
            let got = matmul_transpose_b_threaded(&a, &b, threads).unwrap();
            for (&x, &y) in got.as_slice().iter().zip(reference.as_slice()) {
                assert!((x - y).abs() < 1e-6, "{x} vs {y}");
            }
        }
    }
}
