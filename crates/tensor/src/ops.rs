//! Dense matrix multiplication kernels.
//!
//! Each operation comes in three layers:
//!
//! * the public API ([`matmul`], [`matmul_transpose_a`],
//!   [`matmul_transpose_b`]) — runs the parallel blocked kernel with the
//!   pool-wide thread count from [`crate::parallel::max_threads`];
//! * an explicit-thread-count variant ([`matmul_threaded`], …) — used by
//!   benchmarks and the equivalence test-suite to sweep thread counts;
//! * a single-threaded reference kernel ([`matmul_reference`], …) — the
//!   original straightforward loops, kept as the semantic baseline the
//!   optimized kernels are property-tested against.
//!
//! Work is partitioned across threads by *output rows*, and every output
//! element accumulates its `k` terms in increasing-index order in all
//! kernels: matmul results are bitwise identical across thread counts,
//! and the batched dense kernels are value-identical (`==` per element —
//! their two sample paths may differ in the sign of exact zeros; see
//! [`dense_batch_into`]). Zero operands are skipped where noted; skipping
//! only ever changes the sign of a zero.

use crate::error::TensorError;
use crate::parallel;
use crate::ShapeError;
use crate::Tensor;

/// Matmuls below this many multiply–accumulates run single-threaded: the
/// scoped-spawn overhead (~10 µs/thread) would exceed the kernel time.
const PAR_MIN_MACS: usize = 32 * 1024;

/// Column-tile width (in f32 elements) for the i-k-j kernel: one output
/// row tile plus one operand row tile stay resident in L1.
const JB: usize = 512;

fn check_rank2(t: &Tensor, name: &str) -> Result<(usize, usize), TensorError> {
    if t.shape().rank() != 2 {
        return Err(ShapeError::new(format!("{name} must be rank 2, got {}", t.shape())).into());
    }
    Ok((t.dims()[0], t.dims()[1]))
}

/// Minimum rows a worker must own for a kernel over `k`×`n`-cost rows to
/// go parallel.
fn min_rows_per_thread(k: usize, n: usize) -> usize {
    PAR_MIN_MACS.div_ceil((k * n).max(1))
}

/// Core i-k-j kernel: accumulates `a (m×k) * b (k×n)` into `out` (m×n,
/// zero-initialized), row-partitioned across `threads` workers with
/// column tiling. Accumulation order per output element is increasing `k`,
/// identical to [`matmul_reference`].
///
/// Exposed as a raw-slice kernel so pre-packed execution plans
/// (`capnn-nn`'s compiled plans) can run GEMMs on their own buffers
/// without round-tripping through [`Tensor`] allocations.
pub fn matmul_into(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    parallel::parallel_rows_mut(
        out,
        m,
        n,
        threads,
        min_rows_per_thread(k, n),
        |rows, block| {
            for (local, i) in rows.enumerate() {
                let arow = &a[i * k..(i + 1) * k];
                let orow = &mut block[local * n..(local + 1) * n];
                let mut j0 = 0;
                while j0 < n {
                    let j1 = (j0 + JB).min(n);
                    for (kk, &aik) in arow.iter().enumerate() {
                        if aik == 0.0 {
                            continue;
                        }
                        let brow = &b[kk * n + j0..kk * n + j1];
                        for (o, &bkj) in orow[j0..j1].iter_mut().zip(brow) {
                            *o += aik * bkj;
                        }
                    }
                    j0 = j1;
                }
            }
        },
    );
}

/// Row-gathered dot-product kernel for transposed-B layouts: for each
/// output row `i`, `out[i][j] = Σ_c a[i][c] * b[j][c]`, skipping zero
/// `a` entries (the dense-forward fast path over masked/ReLU-sparse
/// activations). Row-partitioned across `threads`.
pub(crate) fn matmul_transpose_b_into(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    parallel::parallel_rows_mut(
        out,
        m,
        n,
        threads,
        min_rows_per_thread(k, n),
        |rows, block| {
            for (local, i) in rows.enumerate() {
                let arow = &a[i * k..(i + 1) * k];
                let orow = &mut block[local * n..(local + 1) * n];
                for (j, o) in orow.iter_mut().enumerate() {
                    let brow = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0;
                    for (&x, &y) in arow.iter().zip(brow) {
                        if x != 0.0 {
                            acc += x * y;
                        }
                    }
                    *o = acc;
                }
            }
        },
    );
}

/// Samples per register tile of the batched dense microkernel.
const DENSE_SB: usize = 4;

/// Output columns per register tile of the batched dense microkernel.
const DENSE_JT: usize = 8;

/// Packs a transposed dense weight matrix `wt` (input-major
/// `[n_in × n_out]`) into `DENSE_JT`-column panels for the batched dense
/// kernels: panel `t` holds columns `t·DENSE_JT ..` for every input `c`,
/// laid out `[t][c][jj]` contiguously, the last panel zero-padded to full
/// width. Panels turn the kernels' column-tile walk into a purely
/// sequential stream — every cache line fetched is fully used, whatever
/// `n_out` is. Padding contributes nothing arithmetically (padded columns
/// are never written to the output).
pub fn pack_dense_panels(wt: &[f32], n_in: usize, n_out: usize) -> Vec<f32> {
    let tiles = n_out.div_ceil(DENSE_JT);
    let mut packed = vec![0.0f32; tiles * n_in * DENSE_JT];
    for t in 0..tiles {
        let j0 = t * DENSE_JT;
        let jn = (n_out - j0).min(DENSE_JT);
        for c in 0..n_in {
            let dst = (t * n_in + c) * DENSE_JT;
            packed[dst..dst + jn].copy_from_slice(&wt[c * n_out + j0..c * n_out + j0 + jn]);
        }
    }
    packed
}

/// Register-blocked microkernel shared by [`dense_batch_into`] and
/// [`dense_batch_chw_into`]: computes one worker's rows of
/// `out[b][j] = bias[j] + Σ_c a[b][c]·wt[c][j]`, where activation element
/// `(b, c)` of `a` lives at `bases[c] + b*stride` (both supported layouts
/// are affine in the sample index; `bases` yields the per-`c` offsets in
/// ascending `c` order and is re-traversed per pass, so it must be a
/// cheap, clonable iterator — never a division per element). `panels` is
/// the [`pack_dense_panels`] layout of the weights.
///
/// Two paths, both accumulating bias first then `c` ascending per output
/// element:
///
/// * **full sample tiles** (`DENSE_SB` samples): a `DENSE_SB × DENSE_JT`
///   accumulator tile lives in registers for the whole reduction and the
///   kernel is branchless — zero activations are multiplied through
///   (adding an exact-zero term never changes a sum's value), trading a
///   handful of dead FLOPs for fully predictable, vectorizable code;
/// * **leftover samples** (fewer than `DENSE_SB`): one sample at a time
///   with the classic zero-skipping axpy, which wins on ReLU-sparse
///   single-sample latency where the skip amortizes over a whole row.
///
/// The two paths differ at most in the sign of exact-zero outputs, so
/// results are value-identical (`==` on every element, hence
/// argmax-identical) across batch sizes, tile positions and thread
/// counts.
///
/// The panel loop is the *outer* loop: each weight panel is streamed from
/// memory exactly once per call and every sample group consumes it while
/// it is cache-hot, so weight traffic amortizes over the whole worker
/// batch (the activation rows — a few hundred KB even at batch 32 — are
/// what gets re-read per panel, from L2 instead of RAM).
///
/// Dispatches at runtime to an AVX2 re-compilation of the same code on
/// x86-64 hosts that support it (one 8-float `ymm` register per
/// accumulator row instead of two `xmm`). Only the vector width changes:
/// Rust never contracts `mul + add` into fused ops, so the AVX2 build
/// produces bitwise-identical results to the baseline build.
#[inline]
#[allow(clippy::too_many_arguments)]
fn dense_batch_rows(
    a: &[f32],
    stride: usize,
    bases: impl Iterator<Item = usize> + Clone,
    panels: &[f32],
    bias: &[f32],
    block: &mut [f32],
    row0: usize,
    nb: usize,
    n_in: usize,
    n_out: usize,
) {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the avx2 target feature is present at runtime.
        unsafe {
            dense_batch_rows_avx2(a, stride, bases, panels, bias, block, row0, nb, n_in, n_out)
        };
        return;
    }
    dense_batch_rows_impl(a, stride, bases, panels, bias, block, row0, nb, n_in, n_out);
}

/// [`dense_batch_rows_impl`] compiled with the `avx2` target feature: the
/// identical safe code, auto-vectorized 8 lanes wide.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn dense_batch_rows_avx2(
    a: &[f32],
    stride: usize,
    bases: impl Iterator<Item = usize> + Clone,
    panels: &[f32],
    bias: &[f32],
    block: &mut [f32],
    row0: usize,
    nb: usize,
    n_in: usize,
    n_out: usize,
) {
    dense_batch_rows_impl(a, stride, bases, panels, bias, block, row0, nb, n_in, n_out);
}

/// Portable body of [`dense_batch_rows`]; see its docs.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn dense_batch_rows_impl(
    a: &[f32],
    stride: usize,
    bases: impl Iterator<Item = usize> + Clone,
    panels: &[f32],
    bias: &[f32],
    block: &mut [f32],
    row0: usize,
    nb: usize,
    n_in: usize,
    n_out: usize,
) {
    let tiles = n_out.div_ceil(DENSE_JT);
    for t in 0..tiles {
        let j0 = t * DENSE_JT;
        let jn = (n_out - j0).min(DENSE_JT);
        let panel = &panels[t * n_in * DENSE_JT..(t + 1) * n_in * DENSE_JT];
        let mut s0 = 0;
        while s0 + DENSE_SB <= nb {
            let tile0 = (row0 + s0) * stride;
            // Four separate local arrays (not one 2-D array): each promotes
            // cleanly to its own xmm register pair, which is what lets LLVM
            // keep the whole 4×8 tile in registers and vectorize the axpys.
            let mut acc0 = [0.0f32; DENSE_JT];
            let mut acc1 = [0.0f32; DENSE_JT];
            let mut acc2 = [0.0f32; DENSE_JT];
            let mut acc3 = [0.0f32; DENSE_JT];
            acc0[..jn].copy_from_slice(&bias[j0..j0 + jn]);
            acc1[..jn].copy_from_slice(&bias[j0..j0 + jn]);
            acc2[..jn].copy_from_slice(&bias[j0..j0 + jn]);
            acc3[..jn].copy_from_slice(&bias[j0..j0 + jn]);
            for (base, wrow) in bases.clone().zip(panel.chunks_exact(DENSE_JT)) {
                let wrow: &[f32; DENSE_JT] = wrow.try_into().expect("panel row");
                let a0 = a[base + tile0];
                let a1 = a[base + tile0 + stride];
                let a2 = a[base + tile0 + 2 * stride];
                let a3 = a[base + tile0 + 3 * stride];
                for (o, &w) in acc0.iter_mut().zip(wrow) {
                    *o += a0 * w;
                }
                for (o, &w) in acc1.iter_mut().zip(wrow) {
                    *o += a1 * w;
                }
                for (o, &w) in acc2.iter_mut().zip(wrow) {
                    *o += a2 * w;
                }
                for (o, &w) in acc3.iter_mut().zip(wrow) {
                    *o += a3 * w;
                }
            }
            block[s0 * n_out + j0..s0 * n_out + j0 + jn].copy_from_slice(&acc0[..jn]);
            block[(s0 + 1) * n_out + j0..(s0 + 1) * n_out + j0 + jn].copy_from_slice(&acc1[..jn]);
            block[(s0 + 2) * n_out + j0..(s0 + 2) * n_out + j0 + jn].copy_from_slice(&acc2[..jn]);
            block[(s0 + 3) * n_out + j0..(s0 + 3) * n_out + j0 + jn].copy_from_slice(&acc3[..jn]);
            s0 += DENSE_SB;
        }
        while s0 < nb {
            let tile0 = (row0 + s0) * stride;
            let mut acc = [0.0f32; DENSE_JT];
            acc[..jn].copy_from_slice(&bias[j0..j0 + jn]);
            for (base, wrow) in bases.clone().zip(panel.chunks_exact(DENSE_JT)) {
                let ac = a[base + tile0];
                if ac == 0.0 {
                    continue;
                }
                let wrow: &[f32; DENSE_JT] = wrow.try_into().expect("panel row");
                for (o, &w) in acc.iter_mut().zip(wrow) {
                    *o += ac * w;
                }
            }
            block[s0 * n_out + j0..s0 * n_out + j0 + jn].copy_from_slice(&acc[..jn]);
            s0 += 1;
        }
    }
}

/// Batched dense layer on *transposed packed weights*: for each sample
/// `b` in the sample-major activation matrix `a` (`batch × n_in`),
///
/// ```text
/// out[b][j] = bias[j] + Σ_c a[b][c] · wt[c][j]    (c ascending)
/// ```
///
/// with the weights supplied as `panels` — the [`pack_dense_panels`]
/// layout of the input-major `[n_in × n_out]` transposed weight matrix.
/// The accumulation order per output element — bias first, then inputs in
/// increasing index order — is identical to `Dense::forward` in
/// `capnn-nn`. Full sample tiles multiply zero activations through while
/// leftover samples skip them (see [`dense_batch_rows`]); either policy
/// only ever changes the sign of exact-zero terms, so results are
/// value-identical (`==` per element, argmax-identical) for every batch
/// size, tiling and thread count.
///
/// Samples are row-partitioned across `threads` workers; within a worker,
/// [`dense_batch_rows`] processes samples in register tiles so each
/// streamed weight panel is reused across the tile — the core
/// amortization that makes the batched serving path beat per-sample
/// execution.
pub fn dense_batch_into(
    a: &[f32],
    panels: &[f32],
    bias: &[f32],
    out: &mut [f32],
    batch: usize,
    n_in: usize,
    n_out: usize,
    threads: usize,
) {
    parallel::parallel_rows_mut(
        out,
        batch,
        n_out,
        threads,
        min_rows_per_thread(n_in, n_out),
        |rows, block| {
            dense_batch_rows(
                a,
                n_in,
                0..n_in,
                panels,
                bias,
                block,
                rows.start,
                rows.len(),
                n_in,
                n_out,
            );
        },
    );
}

/// [`dense_batch_into`] over a *channel-major batched* CHW activation, as
/// produced by the convolutional front of a compiled plan: element
/// `(b, c, p)` of `a` lives at `(c*batch + b)*plane + p`. Logically this
/// is the dense layer applied to each sample's flattened `[c*plane + p]`
/// vector; `panels` is the [`pack_dense_panels`] layout of the
/// `[channels*plane × n_out]` input-major weights and `out` is
/// sample-major `batch × n_out`. Accumulation per output element is bias
/// first then flat input index ascending — bitwise identical to
/// flattening followed by [`dense_batch_into`].
#[allow(clippy::too_many_arguments)]
pub fn dense_batch_chw_into(
    a: &[f32],
    panels: &[f32],
    bias: &[f32],
    out: &mut [f32],
    batch: usize,
    channels: usize,
    plane: usize,
    n_out: usize,
    threads: usize,
) {
    let n_in = channels * plane;
    parallel::parallel_rows_mut(
        out,
        batch,
        n_out,
        threads,
        min_rows_per_thread(n_in, n_out),
        |rows, block| {
            // element (b, c, p) lives at (c*batch + b)*plane + p: affine in
            // b with stride `plane` and base c*batch*plane + p
            let bases = (0..channels).flat_map(|c| (0..plane).map(move |p| c * batch * plane + p));
            dense_batch_rows(
                a,
                plane,
                bases,
                panels,
                bias,
                block,
                rows.start,
                rows.len(),
                n_in,
                n_out,
            );
        },
    );
}

/// Computes `a (m×k) * b (k×n)` into an `m×n` tensor.
///
/// # Errors
///
/// Returns a shape error if either operand is not rank 2 or the inner
/// dimensions differ.
///
/// # Examples
///
/// ```
/// use capnn_tensor::{matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
/// let b = Tensor::from_vec(vec![3.0, 4.0], &[2, 1]).unwrap();
/// assert_eq!(matmul(&a, &b).unwrap().as_slice(), &[11.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    matmul_threaded(a, b, parallel::max_threads())
}

/// [`matmul`] with an explicit worker count (1 = fully serial).
///
/// # Errors
///
/// Same conditions as [`matmul`].
pub fn matmul_threaded(a: &Tensor, b: &Tensor, threads: usize) -> Result<Tensor, TensorError> {
    let (m, ka) = check_rank2(a, "lhs")?;
    let (kb, n) = check_rank2(b, "rhs")?;
    if ka != kb {
        return Err(ShapeError::new(format!(
            "matmul inner dims {ka} vs {kb} ({} * {})",
            a.shape(),
            b.shape()
        ))
        .into());
    }
    let mut out = Tensor::zeros(&[m, n]);
    matmul_into(
        a.as_slice(),
        b.as_slice(),
        out.as_mut_slice(),
        m,
        ka,
        n,
        threads,
    );
    Ok(out)
}

/// Single-threaded reference for [`matmul`] (the original i-k-j loop).
///
/// # Errors
///
/// Same conditions as [`matmul`].
pub fn matmul_reference(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, ka) = check_rank2(a, "lhs")?;
    let (kb, n) = check_rank2(b, "rhs")?;
    if ka != kb {
        return Err(ShapeError::new(format!(
            "matmul inner dims {ka} vs {kb} ({} * {})",
            a.shape(),
            b.shape()
        ))
        .into());
    }
    let mut out = Tensor::zeros(&[m, n]);
    let av = a.as_slice();
    let bv = b.as_slice();
    let ov = out.as_mut_slice();
    for i in 0..m {
        let arow = &av[i * ka..(i + 1) * ka];
        let orow = &mut ov[i * n..(i + 1) * n];
        for (k, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = &bv[k * n..(k + 1) * n];
            for (o, &bkj) in orow.iter_mut().zip(brow) {
                *o += aik * bkj;
            }
        }
    }
    Ok(out)
}

/// Computes `aᵀ (k×m)ᵀ * b (k×n)`, i.e. `a` is stored transposed.
///
/// # Errors
///
/// Returns a shape error on rank/dimension mismatch.
pub fn matmul_transpose_a(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    matmul_transpose_a_threaded(a, b, parallel::max_threads())
}

/// [`matmul_transpose_a`] with an explicit worker count (1 = fully
/// serial). Output rows are partitioned across workers; each element
/// still accumulates over `k` in increasing order.
///
/// # Errors
///
/// Same conditions as [`matmul_transpose_a`].
pub fn matmul_transpose_a_threaded(
    a: &Tensor,
    b: &Tensor,
    threads: usize,
) -> Result<Tensor, TensorError> {
    let (ka, m) = check_rank2(a, "lhs")?;
    let (kb, n) = check_rank2(b, "rhs")?;
    if ka != kb {
        return Err(ShapeError::new(format!("matmul_transpose_a inner dims {ka} vs {kb}")).into());
    }
    let mut out = Tensor::zeros(&[m, n]);
    let av = a.as_slice();
    let bv = b.as_slice();
    parallel::parallel_rows_mut(
        out.as_mut_slice(),
        m,
        n,
        threads,
        min_rows_per_thread(ka, n),
        |rows, block| {
            for (local, i) in rows.enumerate() {
                let orow = &mut block[local * n..(local + 1) * n];
                for k in 0..ka {
                    let aki = av[k * m + i];
                    if aki == 0.0 {
                        continue;
                    }
                    let brow = &bv[k * n..(k + 1) * n];
                    for (o, &bkj) in orow.iter_mut().zip(brow) {
                        *o += aki * bkj;
                    }
                }
            }
        },
    );
    Ok(out)
}

/// Single-threaded reference for [`matmul_transpose_a`] (the original
/// k-outer loop).
///
/// # Errors
///
/// Same conditions as [`matmul_transpose_a`].
pub fn matmul_transpose_a_reference(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (ka, m) = check_rank2(a, "lhs")?;
    let (kb, n) = check_rank2(b, "rhs")?;
    if ka != kb {
        return Err(ShapeError::new(format!("matmul_transpose_a inner dims {ka} vs {kb}")).into());
    }
    let mut out = Tensor::zeros(&[m, n]);
    let av = a.as_slice();
    let bv = b.as_slice();
    let ov = out.as_mut_slice();
    for k in 0..ka {
        let arow = &av[k * m..(k + 1) * m];
        let brow = &bv[k * n..(k + 1) * n];
        for (i, &aki) in arow.iter().enumerate() {
            if aki == 0.0 {
                continue;
            }
            let orow = &mut ov[i * n..(i + 1) * n];
            for (o, &bkj) in orow.iter_mut().zip(brow) {
                *o += aki * bkj;
            }
        }
    }
    Ok(out)
}

/// Computes `a (m×k) * bᵀ (n×k)ᵀ`, i.e. `b` is stored transposed.
///
/// This is the fast path for dense-layer forward passes where weights are
/// stored `[out, in]`. Zero elements of `a` are skipped, so ReLU-sparse
/// and masked activations pay only for their live entries.
///
/// # Errors
///
/// Returns a shape error on rank/dimension mismatch.
pub fn matmul_transpose_b(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    matmul_transpose_b_threaded(a, b, parallel::max_threads())
}

/// [`matmul_transpose_b`] with an explicit worker count (1 = fully
/// serial).
///
/// # Errors
///
/// Same conditions as [`matmul_transpose_b`].
pub fn matmul_transpose_b_threaded(
    a: &Tensor,
    b: &Tensor,
    threads: usize,
) -> Result<Tensor, TensorError> {
    let (m, ka) = check_rank2(a, "lhs")?;
    let (n, kb) = check_rank2(b, "rhs")?;
    if ka != kb {
        return Err(ShapeError::new(format!("matmul_transpose_b inner dims {ka} vs {kb}")).into());
    }
    let mut out = Tensor::zeros(&[m, n]);
    matmul_transpose_b_into(
        a.as_slice(),
        b.as_slice(),
        out.as_mut_slice(),
        m,
        ka,
        n,
        threads,
    );
    Ok(out)
}

/// Single-threaded reference for [`matmul_transpose_b`] (the original
/// dense dot-product loop, no zero skipping).
///
/// # Errors
///
/// Same conditions as [`matmul_transpose_b`].
pub fn matmul_transpose_b_reference(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, ka) = check_rank2(a, "lhs")?;
    let (n, kb) = check_rank2(b, "rhs")?;
    if ka != kb {
        return Err(ShapeError::new(format!("matmul_transpose_b inner dims {ka} vs {kb}")).into());
    }
    let mut out = Tensor::zeros(&[m, n]);
    let av = a.as_slice();
    let bv = b.as_slice();
    let ov = out.as_mut_slice();
    for i in 0..m {
        let arow = &av[i * ka..(i + 1) * ka];
        for j in 0..n {
            let brow = &bv[j * kb..(j + 1) * kb];
            let mut acc = 0.0;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            ov[i * n + j] = acc;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::XorShiftRng;

    #[test]
    fn matmul_small_known() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = XorShiftRng::new(1);
        let a = Tensor::uniform(&[4, 4], -1.0, 1.0, &mut rng);
        let c = matmul(&a, &Tensor::eye(4)).unwrap();
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul(&a, &Tensor::zeros(&[3])).is_err());
        assert!(matmul(&Tensor::zeros(&[3]), &a).is_err());
        assert!(matmul_reference(&a, &b).is_err());
        assert!(matmul_threaded(&a, &b, 2).is_err());
    }

    #[test]
    fn transpose_variants_agree_with_plain() {
        let mut rng = XorShiftRng::new(2);
        let a = Tensor::uniform(&[3, 5], -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(&[5, 4], -1.0, 1.0, &mut rng);
        let plain = matmul(&a, &b).unwrap();

        let at = a.transpose().unwrap();
        let via_ta = matmul_transpose_a(&at, &b).unwrap();
        let bt = b.transpose().unwrap();
        let via_tb = matmul_transpose_b(&a, &bt).unwrap();

        for ((&x, &y), &z) in plain
            .as_slice()
            .iter()
            .zip(via_ta.as_slice())
            .zip(via_tb.as_slice())
        {
            assert!((x - y).abs() < 1e-5);
            assert!((x - z).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_variants_reject_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 5]);
        assert!(matmul_transpose_a(&a, &b).is_err());
        assert!(matmul_transpose_b(&a, &b).is_err());
        assert!(matmul_transpose_a_reference(&a, &b).is_err());
        assert!(matmul_transpose_b_reference(&a, &b).is_err());
        assert!(matmul_transpose_a_threaded(&a, &b, 2).is_err());
        assert!(matmul_transpose_b_threaded(&a, &b, 2).is_err());
    }

    #[test]
    fn matmul_with_zero_dim() {
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[0, 2]);
    }

    #[test]
    fn threaded_kernels_match_reference_bitwise() {
        let mut rng = XorShiftRng::new(9);
        // n > JB exercises the column-tiled path
        let a = Tensor::uniform(&[7, 13], -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(&[13, 600], -1.0, 1.0, &mut rng);
        let reference = matmul_reference(&a, &b).unwrap();
        for threads in [1usize, 2, 3, 8] {
            let got = matmul_threaded(&a, &b, threads).unwrap();
            assert_eq!(got.as_slice(), reference.as_slice(), "threads={threads}");
        }

        let at = a.transpose().unwrap();
        let ta_ref = matmul_transpose_a_reference(&at, &b).unwrap();
        for threads in [1usize, 2, 5] {
            let got = matmul_transpose_a_threaded(&at, &b, threads).unwrap();
            assert_eq!(got.as_slice(), ta_ref.as_slice(), "threads={threads}");
        }
    }

    /// Scalar reference: bias first, then inputs ascending — the
    /// `Dense::forward` contract the batched kernels must reproduce.
    fn dense_reference(x: &[f32], wt: &[f32], bias: &[f32], n_in: usize, n_out: usize) -> Vec<f32> {
        let mut out = bias.to_vec();
        for c in 0..n_in {
            for (j, o) in out.iter_mut().enumerate() {
                if x[c] != 0.0 {
                    *o += x[c] * wt[c * n_out + j];
                }
            }
        }
        out
    }

    #[test]
    fn dense_batch_matches_per_sample_reference() {
        let mut rng = XorShiftRng::new(21);
        let (n_in, n_out) = (37, 19);
        let wt = Tensor::uniform(&[n_in, n_out], -1.0, 1.0, &mut rng);
        let bias = Tensor::uniform(&[n_out], -0.5, 0.5, &mut rng);
        for batch in [1usize, 3, 8, 20] {
            let mut a = Tensor::uniform(&[batch, n_in], -1.0, 1.0, &mut rng);
            // plant zeros like ReLU activations
            for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
                if i % 5 == 0 {
                    *v = 0.0;
                }
            }
            let panels = pack_dense_panels(wt.as_slice(), n_in, n_out);
            for threads in [1usize, 3] {
                let mut out = vec![0.0f32; batch * n_out];
                dense_batch_into(
                    a.as_slice(),
                    &panels,
                    bias.as_slice(),
                    &mut out,
                    batch,
                    n_in,
                    n_out,
                    threads,
                );
                for b in 0..batch {
                    let want = dense_reference(
                        &a.as_slice()[b * n_in..(b + 1) * n_in],
                        wt.as_slice(),
                        bias.as_slice(),
                        n_in,
                        n_out,
                    );
                    assert_eq!(
                        &out[b * n_out..(b + 1) * n_out],
                        &want[..],
                        "batch={batch} threads={threads} sample={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn dense_batch_chw_matches_flattened() {
        let mut rng = XorShiftRng::new(23);
        let (channels, plane, n_out, batch) = (3usize, 10usize, 7usize, 5usize);
        let n_in = channels * plane;
        let wt = Tensor::uniform(&[n_in, n_out], -1.0, 1.0, &mut rng);
        let bias = Tensor::uniform(&[n_out], -0.5, 0.5, &mut rng);
        let flat = Tensor::uniform(&[batch, n_in], -1.0, 1.0, &mut rng);
        // repack sample-major flat into channel-major batched CHW
        let mut chw = vec![0.0f32; batch * n_in];
        for b in 0..batch {
            for c in 0..channels {
                for p in 0..plane {
                    chw[(c * batch + b) * plane + p] = flat.as_slice()[b * n_in + c * plane + p];
                }
            }
        }
        let panels = pack_dense_panels(wt.as_slice(), n_in, n_out);
        let mut want = vec![0.0f32; batch * n_out];
        dense_batch_into(
            flat.as_slice(),
            &panels,
            bias.as_slice(),
            &mut want,
            batch,
            n_in,
            n_out,
            1,
        );
        for threads in [1usize, 2] {
            let mut got = vec![0.0f32; batch * n_out];
            dense_batch_chw_into(
                &chw,
                &panels,
                bias.as_slice(),
                &mut got,
                batch,
                channels,
                plane,
                n_out,
                threads,
            );
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn dense_batch_zero_in_features_yields_bias() {
        let bias = [1.5f32, -2.0];
        let mut out = vec![0.0f32; 4];
        dense_batch_into(&[], &[], &bias, &mut out, 2, 0, 2, 1);
        assert_eq!(out, vec![1.5, -2.0, 1.5, -2.0]);
    }

    #[test]
    fn transpose_b_zero_skip_matches_reference() {
        let mut rng = XorShiftRng::new(11);
        let mut a = Tensor::uniform(&[6, 40], -1.0, 1.0, &mut rng);
        // plant zeros like a masked/ReLU activation
        for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
            if i % 3 == 0 {
                *v = 0.0;
            }
        }
        let b = Tensor::uniform(&[10, 40], -1.0, 1.0, &mut rng);
        let reference = matmul_transpose_b_reference(&a, &b).unwrap();
        for threads in [1usize, 2, 4] {
            let got = matmul_transpose_b_threaded(&a, &b, threads).unwrap();
            for (&x, &y) in got.as_slice().iter().zip(reference.as_slice()) {
                assert!((x - y).abs() < 1e-6, "{x} vs {y}");
            }
        }
    }
}
