//! Symmetric int8 quantization and the quantized panel-GEMM kernels.
//!
//! The quantization scheme is the standard symmetric linear map used by
//! int8 inference runtimes: a tensor (or channel) with peak magnitude
//! `max_abs` gets the scale `max_abs / 127`, values quantize as
//! `round(x / scale)` clamped to `[-127, 127]` (the `-128` code is never
//! produced, keeping the grid symmetric), and dequantization is a single
//! multiply in the f32 epilogue. Weights are quantized **per output
//! channel** at pack time — each output column/channel sees only its own
//! dynamic range, so a single outlier channel cannot crush everyone
//! else's resolution — while activations are quantized **per sample** at
//! run time (one scale per sample, computed from that sample's peak).
//! Per-sample rather than per-batch-buffer scales matter for more than
//! accuracy: batched execution partitions samples across workers, and a
//! buffer-wide maximum would make every sample's rounding depend on who
//! else shares its batch. With per-sample scales the int8 path keeps the
//! crate-wide determinism contract — bitwise-identical results across
//! batch sizes, tile positions and thread counts.
//!
//! The GEMM kernels follow the register blocking of the f32 panel
//! kernels in `crate::ops` (same runtime AVX2 re-dispatch, same worker
//! partitioning) but accumulate products in `i32` and lean on the AVX2
//! `vpmaddwd` instruction: two adjacent reduction rows are processed per
//! step as sign-extended `i16` pairs, so one instruction performs 16
//! multiplies and 8 pairwise adds into exact `i32` lanes. To feed it
//! without shuffles the dense weight packer emits a **pair-interleaved**
//! panel layout (`[w[2k][j], w[2k+1][j]]` byte pairs per column, odd
//! depth padded with a zero row); the conv kernel interleaves im2col row
//! pairs on the fly with one byte-unpack. Integer accumulation is exact —
//! there is no rounding and no reassociation error — so the optimized
//! kernels are **bitwise** identical to the scalar references by
//! construction, not merely value-identical: any summation order gives
//! the same `i32`. The only floating-point arithmetic is the shared
//! epilogue, `acc as f32 * (act_scale * weight_scale) + bias` (then
//! `max(0)` when ReLU is fused), written as the identical expression in
//! every path.
//!
//! Accumulator range: each product is at most `127² = 16 129`, so the
//! `i32` accumulator is safe up to a reduction depth of ~133 000 —
//! orders of magnitude above any layer in this codebase (the packers
//! assert the bound).

use crate::ops::{min_rows_per_thread, CONV_MR, CONV_NR, DENSE_JT, DENSE_SB};
use crate::parallel;

/// Largest magnitude the symmetric int8 grid represents: codes span
/// `[-127, 127]` (the asymmetric `-128` code is unused).
pub const I8_QMAX: f32 = 127.0;

/// Deepest reduction the `i32` accumulators tolerate without overflow:
/// `i32::MAX / 127²`, with a small safety margin.
const MAX_I8_REDUCTION: usize = (i32::MAX / (127 * 127)) as usize - 1;

/// Peak magnitude of `xs` (0.0 for an empty slice).
pub fn max_abs(xs: &[f32]) -> f32 {
    xs.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
}

/// Symmetric int8 scale for a tensor with peak magnitude `max_abs`:
/// the f32 step between adjacent codes. A zero range yields scale 0.0 —
/// every value quantizes to code 0 and dequantizes to exactly 0.0, which
/// is consistent end to end (an all-zero tensor stays all-zero).
pub fn i8_scale(max_abs: f32) -> f32 {
    max_abs / I8_QMAX
}

/// Multiplier taking an f32 value to its (unclamped) int8 code:
/// `127 / max_abs`, or 0.0 for a zero range so everything maps to code 0.
pub fn i8_inv_scale(max_abs: f32) -> f32 {
    if max_abs > 0.0 {
        I8_QMAX / max_abs
    } else {
        0.0
    }
}

/// Quantizes one value with a precomputed [`i8_inv_scale`] multiplier:
/// round-half-away-from-zero, clamped to the symmetric code range.
#[inline(always)]
pub fn quantize_i8(x: f32, inv: f32) -> i8 {
    (x * inv).round().clamp(-I8_QMAX, I8_QMAX) as i8
}

/// Quantizes `src` into `dst` with a single per-tensor scale derived from
/// the slice's own peak magnitude, returning that scale ([`i8_scale`]).
/// This is the dynamic activation quantizer: one call per sample.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn quantize_slice_i8(src: &[f32], dst: &mut [i8]) -> f32 {
    assert_eq!(src.len(), dst.len(), "quantize buffer length");
    let m = max_abs(src);
    let inv = i8_inv_scale(m);
    for (d, &x) in dst.iter_mut().zip(src) {
        *d = quantize_i8(x, inv);
    }
    i8_scale(m)
}

/// Index of weight `(c, j)` inside the pair-interleaved dense int8 panel
/// buffer: panels of `DENSE_JT` output columns, reduction rows in
/// adjacent pairs with the pair's two bytes interleaved per column —
/// `[t][k][jj][r]` where `k = c/2` and `r = c%2`. The layout lets the
/// AVX2 kernel feed `vpmaddwd` with one straight 16-byte load per pair.
#[inline(always)]
fn dense_i8_index(c: usize, j: usize, npairs: usize) -> usize {
    let (t, jj) = (j / DENSE_JT, j % DENSE_JT);
    (t * npairs + c / 2) * 2 * DENSE_JT + 2 * jj + (c % 2)
}

/// Quantizes and packs a transposed dense weight matrix `wt` (input-major
/// `[n_in × n_out]`) into the pair-interleaved int8 panel layout (see
/// [`dense_i8_index`]; odd `n_in` is padded with a zero reduction row)
/// with **per-output-column** scales: returns the int8 panel buffer and
/// `scales[j]` = [`i8_scale`] of column `j`'s peak magnitude. Padding
/// columns of the last panel hold code 0 and their scale is never read.
///
/// # Panics
///
/// Panics if `wt.len() != n_in * n_out` or the reduction depth `n_in`
/// exceeds the `i32` accumulator bound.
pub fn quantize_dense_panels_i8(wt: &[f32], n_in: usize, n_out: usize) -> (Vec<i8>, Vec<f32>) {
    assert_eq!(wt.len(), n_in * n_out, "dense weight buffer shape");
    assert!(n_in <= MAX_I8_REDUCTION, "int8 reduction depth overflow");
    let tiles = n_out.div_ceil(DENSE_JT);
    let npairs = n_in.div_ceil(2);
    let mut packed = vec![0i8; tiles * npairs * 2 * DENSE_JT];
    let mut scales = vec![0.0f32; n_out];
    for (j, scale) in scales.iter_mut().enumerate() {
        let mut m = 0.0f32;
        for c in 0..n_in {
            m = m.max(wt[c * n_out + j].abs());
        }
        *scale = i8_scale(m);
        let inv = i8_inv_scale(m);
        for c in 0..n_in {
            packed[dense_i8_index(c, j, npairs)] = quantize_i8(wt[c * n_out + j], inv);
        }
    }
    (packed, scales)
}

/// Quantizes and packs a conv weight matrix `w` (row-major
/// `[out_c × krows]`) into the [`pack_conv_panels`](crate::pack_conv_panels)
/// layout with **per-output-channel** scales: returns the int8 panel
/// buffer (length [`conv_panels_len`](crate::conv_panels_len)) and
/// `scales[oc]` = [`i8_scale`] of row `oc`'s peak magnitude.
///
/// # Panics
///
/// Panics if `w.len() != out_c * krows` or the reduction depth `krows`
/// exceeds the `i32` accumulator bound.
pub fn quantize_conv_panels_i8(w: &[f32], out_c: usize, krows: usize) -> (Vec<i8>, Vec<f32>) {
    assert_eq!(w.len(), out_c * krows, "conv weight buffer shape");
    assert!(krows <= MAX_I8_REDUCTION, "int8 reduction depth overflow");
    let mut packed = vec![0i8; crate::ops::conv_panels_len(out_c, krows)];
    let mut scales = vec![0.0f32; out_c];
    for (oc, row) in w.chunks_exact(krows.max(1)).enumerate() {
        let m = max_abs(row);
        scales[oc] = i8_scale(m);
        let inv = i8_inv_scale(m);
        let base = (oc / CONV_MR) * krows * CONV_MR + oc % CONV_MR;
        for (r, &v) in row.iter().enumerate() {
            packed[base + r * CONV_MR] = quantize_i8(v, inv);
        }
    }
    (packed, scales)
}

/// Shared dequantization epilogue of the dense int8 kernels: one output
/// row segment. The expression is written once and reused verbatim by the
/// optimized tiles and the scalar references so every path performs the
/// identical f32 operations: `acc·(a_scale·w_scale) + bias`.
#[inline(always)]
pub(crate) fn dense_i8_epilogue(
    acc: &[i32],
    a_scale: f32,
    w_scales: &[f32],
    bias: &[f32],
    dst: &mut [f32],
) {
    for (((o, &q), &ws), &b) in dst.iter_mut().zip(acc).zip(w_scales).zip(bias) {
        *o = q as f32 * (a_scale * ws) + b;
    }
}

/// Packs two adjacent int8 codes into the 32-bit `(lo, hi)` i16-pair
/// operand `vpmaddwd` consumes after an 8-lane broadcast.
#[inline(always)]
pub(crate) fn pack_i8_pair(a0: i8, a1: i8) -> i32 {
    ((a0 as i16 as u16 as u32) | ((a1 as i16 as u16 as u32) << 16)) as i32
}

/// Register-blocked int8 microkernel shared by [`dense_batch_i8_into`]
/// and [`dense_batch_i8_chw_into`]: the int8 twin of the f32
/// `dense_batch_rows` in `crate::ops`, with the same affine activation
/// addressing (`bases[c] + b*stride`) and the same `DENSE_SB × DENSE_JT`
/// register tile — except reduction rows advance in pairs over the
/// pair-interleaved panel layout, accumulators are `i32` and the
/// bias/scale work moves to the f32 epilogue. Integer accumulation is
/// exact, so the `vpmaddwd` path is *bitwise* identical to the portable
/// body, not just value-identical.
#[inline]
#[allow(clippy::too_many_arguments)]
fn dense_i8_rows(
    aq: &[i8],
    stride: usize,
    bases: impl Iterator<Item = usize> + Clone,
    panels: &[i8],
    a_scales: &[f32],
    w_scales: &[f32],
    bias: &[f32],
    block: &mut [f32],
    row0: usize,
    nb: usize,
    n_in: usize,
    n_out: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the avx2 target feature is present at runtime.
        unsafe {
            dense_i8_rows_avx2(
                aq, stride, bases, panels, a_scales, w_scales, bias, block, row0, nb, n_in, n_out,
            )
        };
        return;
    }
    dense_i8_rows_impl(
        aq, stride, bases, panels, a_scales, w_scales, bias, block, row0, nb, n_in, n_out,
    );
}

/// `vpmaddwd` body of [`dense_i8_rows`]. Each sample's activation row is
/// sign-extended to `i16` once up front (odd depth zero-padded), so a
/// 32-bit broadcast load at offset `2k` *is* the `(a[2k], a[2k+1])` pair
/// operand — the inner loop is one 16-byte panel load + sign-extend per
/// pair row, then one `vpbroadcastd`+`vpmaddwd`+`vpaddd` per sample of
/// the `DENSE_SB` register tile: 16 multiplies per 3 instructions. The
/// `i32` lane sums equal the portable body's bitwise.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn dense_i8_rows_avx2(
    aq: &[i8],
    stride: usize,
    bases: impl Iterator<Item = usize> + Clone,
    panels: &[i8],
    a_scales: &[f32],
    w_scales: &[f32],
    bias: &[f32],
    block: &mut [f32],
    row0: usize,
    nb: usize,
    n_in: usize,
    n_out: usize,
) {
    use std::arch::x86_64::*;
    let tiles = n_out.div_ceil(DENSE_JT);
    let npairs = n_in.div_ceil(2);
    // Sign-extended activation rows for the whole worker block, gathered
    // through `bases` so flat and CHW layouts land identically. O(nb·n_in)
    // against the O(nb·n_in·n_out/8) main loop it feeds.
    let mut a16 = vec![0i16; nb * 2 * npairs];
    for s in 0..nb {
        let soff = (row0 + s) * stride;
        let dst = &mut a16[s * 2 * npairs..(s + 1) * 2 * npairs];
        for (c, base) in bases.clone().enumerate() {
            // SAFETY: the public entrypoints assert `aq` covers every
            // `bases[c] + sample·stride` index.
            *dst.get_unchecked_mut(c) = *aq.get_unchecked(base + soff) as i16;
        }
    }
    // SAFETY (main loop): panel pair rows are 2·DENSE_JT = 16 bytes,
    // exactly one xmm load; `a16` rows are 2·npairs lanes so the 32-bit
    // pair reads at 2k stay in bounds (read_unaligned: only 2-aligned).
    for t in 0..tiles {
        let j0 = t * DENSE_JT;
        let jn = (n_out - j0).min(DENSE_JT);
        let panel = &panels[t * npairs * 2 * DENSE_JT..(t + 1) * npairs * 2 * DENSE_JT];
        let wsc = &w_scales[j0..j0 + jn];
        let bsl = &bias[j0..j0 + jn];
        let mut s0 = 0;
        while s0 + DENSE_SB <= nb {
            let mut acc0 = _mm256_setzero_si256();
            let mut acc1 = _mm256_setzero_si256();
            let mut acc2 = _mm256_setzero_si256();
            let mut acc3 = _mm256_setzero_si256();
            let a0p = a16.as_ptr().add(s0 * 2 * npairs);
            let a1p = a0p.add(2 * npairs);
            let a2p = a1p.add(2 * npairs);
            let a3p = a2p.add(2 * npairs);
            for k in 0..npairs {
                let wv = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                    panel.as_ptr().add(k * 2 * DENSE_JT) as *const __m128i,
                ));
                let pair = |p: *const i16| {
                    _mm256_set1_epi32(core::ptr::read_unaligned(p.add(2 * k) as *const i32))
                };
                acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(pair(a0p), wv));
                acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(pair(a1p), wv));
                acc2 = _mm256_add_epi32(acc2, _mm256_madd_epi16(pair(a2p), wv));
                acc3 = _mm256_add_epi32(acc3, _mm256_madd_epi16(pair(a3p), wv));
            }
            for (s, acc) in [acc0, acc1, acc2, acc3].into_iter().enumerate() {
                let mut lanes = [0i32; DENSE_JT];
                _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
                dense_i8_epilogue(
                    &lanes[..jn],
                    a_scales[row0 + s0 + s],
                    wsc,
                    bsl,
                    &mut block[(s0 + s) * n_out + j0..(s0 + s) * n_out + j0 + jn],
                );
            }
            s0 += DENSE_SB;
        }
        while s0 < nb {
            let mut acc = _mm256_setzero_si256();
            let ap = a16.as_ptr().add(s0 * 2 * npairs);
            for k in 0..npairs {
                let wv = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                    panel.as_ptr().add(k * 2 * DENSE_JT) as *const __m128i,
                ));
                let av = _mm256_set1_epi32(core::ptr::read_unaligned(ap.add(2 * k) as *const i32));
                acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, wv));
            }
            let mut lanes = [0i32; DENSE_JT];
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
            dense_i8_epilogue(
                &lanes[..jn],
                a_scales[row0 + s0],
                wsc,
                bsl,
                &mut block[s0 * n_out + j0..s0 * n_out + j0 + jn],
            );
            s0 += 1;
        }
    }
}

/// Portable body of [`dense_i8_rows`] over the same pair-interleaved
/// panel layout; see its docs.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn dense_i8_rows_impl(
    aq: &[i8],
    stride: usize,
    bases: impl Iterator<Item = usize> + Clone,
    panels: &[i8],
    a_scales: &[f32],
    w_scales: &[f32],
    bias: &[f32],
    block: &mut [f32],
    row0: usize,
    nb: usize,
    n_in: usize,
    n_out: usize,
) {
    let tiles = n_out.div_ceil(DENSE_JT);
    let npairs = n_in.div_ceil(2);
    for t in 0..tiles {
        let j0 = t * DENSE_JT;
        let jn = (n_out - j0).min(DENSE_JT);
        let panel = &panels[t * npairs * 2 * DENSE_JT..(t + 1) * npairs * 2 * DENSE_JT];
        let wsc = &w_scales[j0..j0 + jn];
        let bsl = &bias[j0..j0 + jn];
        for s in 0..nb {
            let soff = (row0 + s) * stride;
            let mut acc = [0i32; DENSE_JT];
            let mut bit = bases.clone();
            let mut k = 0usize;
            while let Some(b0) = bit.next() {
                let a0 = aq[b0 + soff] as i32;
                let a1 = bit.next().map_or(0, |b1| aq[b1 + soff] as i32);
                let wrow = &panel[k * 2 * DENSE_JT..(k + 1) * 2 * DENSE_JT];
                for (jj, o) in acc.iter_mut().enumerate() {
                    *o += a0 * wrow[2 * jj] as i32 + a1 * wrow[2 * jj + 1] as i32;
                }
                k += 1;
            }
            dense_i8_epilogue(
                &acc[..jn],
                a_scales[row0 + s],
                wsc,
                bsl,
                &mut block[s * n_out + j0..s * n_out + j0 + jn],
            );
        }
    }
}

/// Batched int8 dense layer on quantized packed weights: for each sample
/// `b` of the sample-major quantized activation `aq` (`batch × n_in`,
/// scale `a_scales[b]`),
///
/// ```text
/// out[b][j] = (Σ_c aq[b][c]·qw[c][j]) · (a_scales[b]·w_scales[j]) + bias[j]
/// ```
///
/// with the weights supplied as the [`quantize_dense_panels_i8`] panel
/// buffer and per-column scales. The `i32` reduction is exact, so results
/// are bitwise identical to [`dense_batch_i8_reference`] for every batch
/// size, tiling and thread count. Samples are row-partitioned across
/// `threads` workers exactly like the f32 kernel.
#[allow(clippy::too_many_arguments)]
pub fn dense_batch_i8_into(
    aq: &[i8],
    a_scales: &[f32],
    panels: &[i8],
    w_scales: &[f32],
    bias: &[f32],
    out: &mut [f32],
    batch: usize,
    n_in: usize,
    n_out: usize,
    threads: usize,
) {
    assert!(a_scales.len() >= batch, "per-sample activation scales");
    assert!(aq.len() >= batch * n_in, "quantized activation buffer");
    assert_eq!(
        panels.len(),
        n_out.div_ceil(DENSE_JT) * n_in.div_ceil(2) * 2 * DENSE_JT,
        "pair-interleaved panel buffer"
    );
    parallel::parallel_rows_mut(
        out,
        batch,
        n_out,
        threads,
        min_rows_per_thread(n_in, n_out),
        |rows, block| {
            dense_i8_rows(
                aq,
                n_in,
                0..n_in,
                panels,
                a_scales,
                w_scales,
                bias,
                block,
                rows.start,
                rows.len(),
                n_in,
                n_out,
            );
        },
    );
}

/// [`dense_batch_i8_into`] over a *channel-major batched* quantized CHW
/// activation — element `(b, c, p)` of `aq` at `(c·batch + b)·plane + p`,
/// the layout the conv front of a compiled plan produces. Same per-sample
/// scales, same bitwise contract.
#[allow(clippy::too_many_arguments)]
pub fn dense_batch_i8_chw_into(
    aq: &[i8],
    a_scales: &[f32],
    panels: &[i8],
    w_scales: &[f32],
    bias: &[f32],
    out: &mut [f32],
    batch: usize,
    channels: usize,
    plane: usize,
    n_out: usize,
    threads: usize,
) {
    assert!(a_scales.len() >= batch, "per-sample activation scales");
    let n_in = channels * plane;
    assert!(aq.len() >= batch * n_in, "quantized activation buffer");
    assert_eq!(
        panels.len(),
        n_out.div_ceil(DENSE_JT) * n_in.div_ceil(2) * 2 * DENSE_JT,
        "pair-interleaved panel buffer"
    );
    parallel::parallel_rows_mut(
        out,
        batch,
        n_out,
        threads,
        min_rows_per_thread(n_in, n_out),
        |rows, block| {
            let bases = (0..channels).flat_map(|c| (0..plane).map(move |p| c * batch * plane + p));
            dense_i8_rows(
                aq,
                plane,
                bases,
                panels,
                a_scales,
                w_scales,
                bias,
                block,
                rows.start,
                rows.len(),
                n_in,
                n_out,
            );
        },
    );
}

/// Scalar reference for [`dense_batch_i8_into`]: plain serial loops over
/// the same packed panel buffer, with the epilogue written as the
/// identical f32 expression. The optimized kernel must match this
/// **bitwise** — integer accumulation has no rounding to hide behind.
#[allow(clippy::too_many_arguments)]
pub fn dense_batch_i8_reference(
    aq: &[i8],
    a_scales: &[f32],
    panels: &[i8],
    w_scales: &[f32],
    bias: &[f32],
    out: &mut [f32],
    batch: usize,
    n_in: usize,
    n_out: usize,
) {
    let npairs = n_in.div_ceil(2);
    for b in 0..batch {
        for j in 0..n_out {
            let mut acc = 0i32;
            for c in 0..n_in {
                acc += aq[b * n_in + c] as i32 * panels[dense_i8_index(c, j, npairs)] as i32;
            }
            out[b * n_out + j] = acc as f32 * (a_scales[b] * w_scales[j]) + bias[j];
        }
    }
}

/// Scalar reference for [`dense_batch_i8_chw_into`].
#[allow(clippy::too_many_arguments)]
pub fn dense_batch_i8_chw_reference(
    aq: &[i8],
    a_scales: &[f32],
    panels: &[i8],
    w_scales: &[f32],
    bias: &[f32],
    out: &mut [f32],
    batch: usize,
    channels: usize,
    plane: usize,
    n_out: usize,
) {
    let n_in = channels * plane;
    let npairs = n_in.div_ceil(2);
    for b in 0..batch {
        for j in 0..n_out {
            let mut acc = 0i32;
            for c in 0..channels {
                for p in 0..plane {
                    let flat = c * plane + p;
                    acc += aq[(c * batch + b) * plane + p] as i32
                        * panels[dense_i8_index(flat, j, npairs)] as i32;
                }
            }
            out[b * n_out + j] = acc as f32 * (a_scales[b] * w_scales[j]) + bias[j];
        }
    }
}

/// Shared dequantization epilogue of the conv int8 kernels: one output
/// row segment of channel `oc`. Identical expression in tiles, edge rows
/// and the scalar reference: `acc·(col_scale·w_scale) + bias`, then the
/// fused ReLU clamp.
#[inline(always)]
pub(crate) fn conv_i8_epilogue(
    acc: &[i32],
    w_scale: f32,
    col_scales: &[f32],
    bias: f32,
    relu: bool,
    dst: &mut [f32],
) {
    for ((o, &q), &cs) in dst.iter_mut().zip(acc).zip(col_scales) {
        let v = q as f32 * (cs * w_scale) + bias;
        *o = if relu { v.max(0.0) } else { v };
    }
}

/// Panel-packed int8 conv GEMM with fused dequantize+bias+ReLU epilogue:
/// the int8 twin of [`conv_gemm_into`](crate::conv_gemm_into) over a
/// quantized im2col matrix. `panels`/`w_scales` come from
/// [`quantize_conv_panels_i8`]; `cols` is the quantized `krows × n`
/// column matrix and `col_scales[j]` is the activation scale of column
/// `j` — in batched plan execution every column of sample `b` carries
/// that sample's scale, so the buffer is a per-sample scale broadcast
/// over each sample's `oh·ow` column window.
///
/// ```text
/// out[oc][j] = dequant(Σ_r qw(oc,r)·cols[r][j]) + bias[oc]   (then ReLU)
/// dequant(q) = q · (col_scales[j] · w_scales[oc])
/// ```
///
/// The `i32` reduction is exact, so results are bitwise identical to
/// [`conv_gemm_i8_reference`] across tilings and thread counts. Output
/// rows are partitioned across `threads` workers with the same mid-panel
/// edge handling as the f32 kernel.
#[allow(clippy::too_many_arguments)]
pub fn conv_gemm_i8_into(
    panels: &[i8],
    w_scales: &[f32],
    cols: &[i8],
    col_scales: &[f32],
    bias: Option<&[f32]>,
    out: &mut [f32],
    out_c: usize,
    krows: usize,
    n: usize,
    relu: bool,
    threads: usize,
) {
    assert_eq!(
        panels.len(),
        crate::ops::conv_panels_len(out_c, krows),
        "panel buffer"
    );
    assert!(cols.len() >= krows * n, "im2col buffer");
    assert!(col_scales.len() >= n, "per-column scales");
    assert!(out.len() >= out_c * n, "output buffer");
    parallel::parallel_rows_mut(
        out,
        out_c,
        n,
        threads,
        min_rows_per_thread(krows, n),
        |rows, block| {
            conv_i8_rows(
                panels, w_scales, cols, col_scales, bias, block, rows.start, rows.end, krows, n,
                relu,
            );
        },
    );
}

/// Runtime-dispatched worker body of [`conv_gemm_i8_into`]: rows
/// `r0..r1` of the output into `block`.
#[inline]
#[allow(clippy::too_many_arguments)]
fn conv_i8_rows(
    panels: &[i8],
    w_scales: &[f32],
    cols: &[i8],
    col_scales: &[f32],
    bias: Option<&[f32]>,
    block: &mut [f32],
    r0: usize,
    r1: usize,
    krows: usize,
    n: usize,
    relu: bool,
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the avx2 target feature is present at runtime.
        unsafe {
            conv_i8_rows_avx2(
                panels, w_scales, cols, col_scales, bias, block, r0, r1, krows, n, relu,
            )
        };
        return;
    }
    conv_i8_rows_impl(
        panels, w_scales, cols, col_scales, bias, block, r0, r1, krows, n, relu,
    );
}

/// `vpmaddwd` body of [`conv_i8_rows`]: im2col reduction rows advance in
/// pairs, interleaved on the fly with one byte-unpack (two 8-byte row
/// loads → 16 interleaved `i16` lanes), and each of the panel's `CONV_MR`
/// output channels contributes its weight pair as an 8-lane broadcast —
/// one `vpmaddwd`+`vpaddd` per channel retires 16 multiplies over a full
/// `CONV_NR` column tile. Pair-broadcast weights are precomputed once per
/// panel and reused across every column tile. Tail columns (`< CONV_NR`)
/// and mid-panel worker edges take the scalar paths; `i32` sums are exact
/// either way, so all paths agree bitwise.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn conv_i8_rows_avx2(
    panels: &[i8],
    w_scales: &[f32],
    cols: &[i8],
    col_scales: &[f32],
    bias: Option<&[f32]>,
    block: &mut [f32],
    r0: usize,
    r1: usize,
    krows: usize,
    n: usize,
    relu: bool,
) {
    use std::arch::x86_64::*;
    let bias_at = |oc: usize| bias.map_or(0.0, |b| b[oc]);
    let npairs = krows.div_ceil(2);
    let mut oc = r0;
    while oc < r1 {
        if !(oc.is_multiple_of(CONV_MR) && oc + CONV_MR <= r1) {
            let row = &mut block[(oc - r0) * n..(oc - r0 + 1) * n];
            conv_i8_row(
                panels,
                cols,
                col_scales,
                bias_at(oc),
                w_scales[oc],
                row,
                oc,
                krows,
                n,
                relu,
            );
            oc += 1;
            continue;
        }
        let panel = &panels[(oc / CONV_MR) * krows * CONV_MR..][..krows * CONV_MR];
        // per-pair broadcast weights for the panel's four channels, built
        // once and streamed over every column tile
        let mut wp = vec![0i32; npairs * CONV_MR];
        for k in 0..npairs {
            for m in 0..CONV_MR {
                let w0 = panel[2 * k * CONV_MR + m];
                let w1 = if 2 * k + 1 < krows {
                    panel[(2 * k + 1) * CONV_MR + m]
                } else {
                    0
                };
                wp[k * CONV_MR + m] = pack_i8_pair(w0, w1);
            }
        }
        let mut j0 = 0;
        while j0 + CONV_NR <= n {
            let mut acc0 = _mm256_setzero_si256();
            let mut acc1 = _mm256_setzero_si256();
            let mut acc2 = _mm256_setzero_si256();
            let mut acc3 = _mm256_setzero_si256();
            for k in 0..npairs {
                // SAFETY: j0 + CONV_NR ≤ n and both rows are < krows, so
                // the 8-byte loads stay inside `cols` (len ≥ krows·n).
                let c0 = _mm_loadl_epi64(cols.as_ptr().add(2 * k * n + j0) as *const __m128i);
                let c1 = if 2 * k + 1 < krows {
                    _mm_loadl_epi64(cols.as_ptr().add((2 * k + 1) * n + j0) as *const __m128i)
                } else {
                    _mm_setzero_si128()
                };
                let cv = _mm256_cvtepi8_epi16(_mm_unpacklo_epi8(c0, c1));
                let wk = &wp[k * CONV_MR..(k + 1) * CONV_MR];
                acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(cv, _mm256_set1_epi32(wk[0])));
                acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(cv, _mm256_set1_epi32(wk[1])));
                acc2 = _mm256_add_epi32(acc2, _mm256_madd_epi16(cv, _mm256_set1_epi32(wk[2])));
                acc3 = _mm256_add_epi32(acc3, _mm256_madd_epi16(cv, _mm256_set1_epi32(wk[3])));
            }
            let csc = &col_scales[j0..j0 + CONV_NR];
            for (m, acc) in [acc0, acc1, acc2, acc3].into_iter().enumerate() {
                let mut lanes = [0i32; CONV_NR];
                _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
                conv_i8_epilogue(
                    &lanes,
                    w_scales[oc + m],
                    csc,
                    bias_at(oc + m),
                    relu,
                    &mut block[(oc - r0 + m) * n + j0..(oc - r0 + m) * n + j0 + CONV_NR],
                );
            }
            j0 += CONV_NR;
        }
        if j0 < n {
            // scalar tail: same exact i32 sums on the leftover columns
            let jn = n - j0;
            for m in 0..CONV_MR {
                let mut acc = [0i32; CONV_NR];
                for r in 0..krows {
                    let w = panel[r * CONV_MR + m] as i32;
                    let crow = &cols[r * n + j0..r * n + j0 + jn];
                    for (o, &c) in acc[..jn].iter_mut().zip(crow) {
                        *o += w * c as i32;
                    }
                }
                conv_i8_epilogue(
                    &acc[..jn],
                    w_scales[oc + m],
                    &col_scales[j0..j0 + jn],
                    bias_at(oc + m),
                    relu,
                    &mut block[(oc - r0 + m) * n + j0..(oc - r0 + m) * n + j0 + jn],
                );
            }
        }
        oc += CONV_MR;
    }
}

/// Portable body of [`conv_i8_rows`]; see [`conv_gemm_i8_into`].
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn conv_i8_rows_impl(
    panels: &[i8],
    w_scales: &[f32],
    cols: &[i8],
    col_scales: &[f32],
    bias: Option<&[f32]>,
    block: &mut [f32],
    r0: usize,
    r1: usize,
    krows: usize,
    n: usize,
    relu: bool,
) {
    let bias_at = |oc: usize| bias.map_or(0.0, |b| b[oc]);
    let mut oc = r0;
    while oc < r1 {
        if oc.is_multiple_of(CONV_MR) && oc + CONV_MR <= r1 {
            let panel = &panels[(oc / CONV_MR) * krows * CONV_MR..][..krows * CONV_MR];
            let bs = [
                bias_at(oc),
                bias_at(oc + 1),
                bias_at(oc + 2),
                bias_at(oc + 3),
            ];
            let ws = [
                w_scales[oc],
                w_scales[oc + 1],
                w_scales[oc + 2],
                w_scales[oc + 3],
            ];
            let tile = &mut block[(oc - r0) * n..(oc - r0 + CONV_MR) * n];
            conv_i8_tile(panel, cols, col_scales, bs, ws, tile, n, relu);
            oc += CONV_MR;
        } else {
            let row = &mut block[(oc - r0) * n..(oc - r0 + 1) * n];
            conv_i8_row(
                panels,
                cols,
                col_scales,
                bias_at(oc),
                w_scales[oc],
                row,
                oc,
                krows,
                n,
                relu,
            );
            oc += 1;
        }
    }
}

/// One full `CONV_MR`-row int8 panel against every `CONV_NR`-wide column
/// tile; see [`conv_gemm_i8_into`] for the numeric contract.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn conv_i8_tile(
    panel: &[i8],
    cols: &[i8],
    col_scales: &[f32],
    bias: [f32; CONV_MR],
    w_scales: [f32; CONV_MR],
    tile: &mut [f32],
    n: usize,
    relu: bool,
) {
    let mut j0 = 0;
    while j0 < n {
        let jn = (n - j0).min(CONV_NR);
        let mut acc0 = [0i32; CONV_NR];
        let mut acc1 = [0i32; CONV_NR];
        let mut acc2 = [0i32; CONV_NR];
        let mut acc3 = [0i32; CONV_NR];
        if jn == CONV_NR {
            for (r, w) in panel.chunks_exact(CONV_MR).enumerate() {
                let crow: &[i8; CONV_NR] = cols[r * n + j0..r * n + j0 + CONV_NR]
                    .try_into()
                    .expect("column tile");
                let ws = [w[0] as i32, w[1] as i32, w[2] as i32, w[3] as i32];
                for (o, &c) in acc0.iter_mut().zip(crow) {
                    *o += ws[0] * c as i32;
                }
                for (o, &c) in acc1.iter_mut().zip(crow) {
                    *o += ws[1] * c as i32;
                }
                for (o, &c) in acc2.iter_mut().zip(crow) {
                    *o += ws[2] * c as i32;
                }
                for (o, &c) in acc3.iter_mut().zip(crow) {
                    *o += ws[3] * c as i32;
                }
            }
        } else {
            for (r, w) in panel.chunks_exact(CONV_MR).enumerate() {
                let crow = &cols[r * n + j0..r * n + j0 + jn];
                let ws = [w[0] as i32, w[1] as i32, w[2] as i32, w[3] as i32];
                for (o, &c) in acc0[..jn].iter_mut().zip(crow) {
                    *o += ws[0] * c as i32;
                }
                for (o, &c) in acc1[..jn].iter_mut().zip(crow) {
                    *o += ws[1] * c as i32;
                }
                for (o, &c) in acc2[..jn].iter_mut().zip(crow) {
                    *o += ws[2] * c as i32;
                }
                for (o, &c) in acc3[..jn].iter_mut().zip(crow) {
                    *o += ws[3] * c as i32;
                }
            }
        }
        let csc = &col_scales[j0..j0 + jn];
        conv_i8_epilogue(
            &acc0[..jn],
            w_scales[0],
            csc,
            bias[0],
            relu,
            &mut tile[j0..j0 + jn],
        );
        conv_i8_epilogue(
            &acc1[..jn],
            w_scales[1],
            csc,
            bias[1],
            relu,
            &mut tile[n + j0..n + j0 + jn],
        );
        conv_i8_epilogue(
            &acc2[..jn],
            w_scales[2],
            csc,
            bias[2],
            relu,
            &mut tile[2 * n + j0..2 * n + j0 + jn],
        );
        conv_i8_epilogue(
            &acc3[..jn],
            w_scales[3],
            csc,
            bias[3],
            relu,
            &mut tile[3 * n + j0..3 * n + j0 + jn],
        );
        j0 += CONV_NR;
    }
}

/// Single output-channel edge path for worker ranges that start or end
/// mid-panel: reads the packed layout with stride `CONV_MR`, accumulating
/// the same exact `i32` sum as [`conv_i8_tile`].
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn conv_i8_row(
    panels: &[i8],
    cols: &[i8],
    col_scales: &[f32],
    bias: f32,
    w_scale: f32,
    row: &mut [f32],
    oc: usize,
    krows: usize,
    n: usize,
    relu: bool,
) {
    let base = (oc / CONV_MR) * krows * CONV_MR + oc % CONV_MR;
    let mut j0 = 0;
    while j0 < n {
        let jn = (n - j0).min(CONV_NR);
        let mut acc = [0i32; CONV_NR];
        for r in 0..krows {
            let w = panels[base + r * CONV_MR] as i32;
            let crow = &cols[r * n + j0..r * n + j0 + jn];
            for (o, &c) in acc[..jn].iter_mut().zip(crow) {
                *o += w * c as i32;
            }
        }
        conv_i8_epilogue(
            &acc[..jn],
            w_scale,
            &col_scales[j0..j0 + jn],
            bias,
            relu,
            &mut row[j0..j0 + jn],
        );
        j0 += CONV_NR;
    }
}

/// Scalar reference for [`conv_gemm_i8_into`]: plain serial loops over
/// the same packed panel buffer with the identical epilogue expression.
/// The optimized kernel must match this bitwise.
#[allow(clippy::too_many_arguments)]
pub fn conv_gemm_i8_reference(
    panels: &[i8],
    w_scales: &[f32],
    cols: &[i8],
    col_scales: &[f32],
    bias: Option<&[f32]>,
    out: &mut [f32],
    out_c: usize,
    krows: usize,
    n: usize,
    relu: bool,
) {
    for oc in 0..out_c {
        let base = (oc / CONV_MR) * krows * CONV_MR + oc % CONV_MR;
        let b = bias.map_or(0.0, |b| b[oc]);
        for j in 0..n {
            let mut acc = 0i32;
            for r in 0..krows {
                acc += panels[base + r * CONV_MR] as i32 * cols[r * n + j] as i32;
            }
            let v = acc as f32 * (col_scales[j] * w_scales[oc]) + b;
            out[oc * n + j] = if relu { v.max(0.0) } else { v };
        }
    }
}

/// Sign-extends a quantized im2col matrix (`krows × n` int8) into the
/// pair-interleaved `i16` layout the widened conv kernel streams:
/// reduction rows advance in pairs, and pair `k`, column `j` stores rows
/// `2k` and `2k+1` adjacently at `cols16[(k·n + j)·2 ..][..2]` (the odd
/// tail row is materialized as 0).
///
/// [`conv_gemm_i8_into`] re-derives this interleaving *inside* the
/// microkernel — two 8-byte loads, a byte-unpack and a widen per column
/// tile, repeated for every `CONV_MR`-channel panel and every worker.
/// Calling this once per batch hoists that work out of the
/// `out_c / CONV_MR` panel loop entirely; [`conv_gemm_i8w_into`] then
/// replaces the unpack sequence with a single 32-byte load.
pub fn widen_i8_cols_pairs(cols: &[i8], krows: usize, n: usize, cols16: &mut Vec<i16>) {
    assert!(cols.len() >= krows * n, "im2col buffer");
    let npairs = krows.div_ceil(2);
    cols16.clear();
    cols16.resize(npairs * n * 2, 0);
    for k in 0..npairs {
        let lo = &cols[2 * k * n..2 * k * n + n];
        let dst = &mut cols16[k * n * 2..(k + 1) * n * 2];
        if 2 * k + 1 < krows {
            let hi = &cols[(2 * k + 1) * n..(2 * k + 1) * n + n];
            for ((d, &a), &b) in dst.chunks_exact_mut(2).zip(lo).zip(hi) {
                d[0] = a as i16;
                d[1] = b as i16;
            }
        } else {
            for (d, &a) in dst.chunks_exact_mut(2).zip(lo) {
                d[0] = a as i16;
            }
        }
    }
}

/// Panel-packed int8 conv GEMM over a pre-widened im2col matrix: the
/// fast twin of [`conv_gemm_i8_into`] consuming the
/// [`widen_i8_cols_pairs`] layout instead of raw `i8` columns. Identical
/// numeric contract — exact `i32` sums, shared epilogue — so results are
/// bitwise identical to [`conv_gemm_i8_reference`] over the original
/// columns. The AVX2 inner loop is one 32-byte load + `vpmaddwd` per
/// (pair, channel), with the byte-unpack amortized across the whole
/// batch by the caller.
#[allow(clippy::too_many_arguments)]
pub fn conv_gemm_i8w_into(
    panels: &[i8],
    w_scales: &[f32],
    cols16: &[i16],
    col_scales: &[f32],
    bias: Option<&[f32]>,
    out: &mut [f32],
    out_c: usize,
    krows: usize,
    n: usize,
    relu: bool,
    threads: usize,
) {
    assert_eq!(
        panels.len(),
        crate::ops::conv_panels_len(out_c, krows),
        "panel buffer"
    );
    assert!(
        cols16.len() >= krows.div_ceil(2) * n * 2,
        "widened im2col buffer"
    );
    assert!(col_scales.len() >= n, "per-column scales");
    assert!(out.len() >= out_c * n, "output buffer");
    parallel::parallel_rows_mut(
        &mut out[..out_c * n],
        out_c,
        n,
        threads,
        min_rows_per_thread(krows, n),
        |rows, block| {
            conv_i8w_rows(
                panels, w_scales, cols16, col_scales, bias, block, rows.start, rows.end, krows, n,
                relu,
            );
        },
    );
}

/// Runtime-dispatched worker body of [`conv_gemm_i8w_into`].
#[inline]
#[allow(clippy::too_many_arguments)]
fn conv_i8w_rows(
    panels: &[i8],
    w_scales: &[f32],
    cols16: &[i16],
    col_scales: &[f32],
    bias: Option<&[f32]>,
    block: &mut [f32],
    r0: usize,
    r1: usize,
    krows: usize,
    n: usize,
    relu: bool,
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the avx2 target feature is present at runtime.
        unsafe {
            conv_i8w_rows_avx2(
                panels, w_scales, cols16, col_scales, bias, block, r0, r1, krows, n, relu,
            )
        };
        return;
    }
    conv_i8w_rows_impl(
        panels, w_scales, cols16, col_scales, bias, block, r0, r1, krows, n, relu,
    );
}

/// `vpmaddwd` body of [`conv_i8w_rows`]: the [`conv_i8_rows_avx2`]
/// structure with the per-tile unpack sequence (2 loads + `punpcklbw` +
/// `pmovsxbw`) collapsed into one aligned-layout 32-byte load from the
/// pre-widened buffer.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn conv_i8w_rows_avx2(
    panels: &[i8],
    w_scales: &[f32],
    cols16: &[i16],
    col_scales: &[f32],
    bias: Option<&[f32]>,
    block: &mut [f32],
    r0: usize,
    r1: usize,
    krows: usize,
    n: usize,
    relu: bool,
) {
    use std::arch::x86_64::*;
    let bias_at = |oc: usize| bias.map_or(0.0, |b| b[oc]);
    let npairs = krows.div_ceil(2);
    let mut oc = r0;
    while oc < r1 {
        if !(oc.is_multiple_of(CONV_MR) && oc + CONV_MR <= r1) {
            let row = &mut block[(oc - r0) * n..(oc - r0 + 1) * n];
            conv_i8w_row(
                panels,
                cols16,
                col_scales,
                bias_at(oc),
                w_scales[oc],
                row,
                oc,
                krows,
                n,
                relu,
            );
            oc += 1;
            continue;
        }
        let panel = &panels[(oc / CONV_MR) * krows * CONV_MR..][..krows * CONV_MR];
        // per-pair broadcast weights for the panel's four channels, built
        // once and streamed over every column tile
        let mut wp = vec![0i32; npairs * CONV_MR];
        for k in 0..npairs {
            for m in 0..CONV_MR {
                let w0 = panel[2 * k * CONV_MR + m];
                let w1 = if 2 * k + 1 < krows {
                    panel[(2 * k + 1) * CONV_MR + m]
                } else {
                    0
                };
                wp[k * CONV_MR + m] = pack_i8_pair(w0, w1);
            }
        }
        let mut j0 = 0;
        while j0 + CONV_NR <= n {
            let mut acc0 = _mm256_setzero_si256();
            let mut acc1 = _mm256_setzero_si256();
            let mut acc2 = _mm256_setzero_si256();
            let mut acc3 = _mm256_setzero_si256();
            for k in 0..npairs {
                // SAFETY: j0 + CONV_NR ≤ n and k < npairs, so the 32-byte
                // load stays inside `cols16` (len ≥ npairs·n·2).
                let cv =
                    _mm256_loadu_si256(cols16.as_ptr().add((k * n + j0) * 2) as *const __m256i);
                let wk = &wp[k * CONV_MR..(k + 1) * CONV_MR];
                acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(cv, _mm256_set1_epi32(wk[0])));
                acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(cv, _mm256_set1_epi32(wk[1])));
                acc2 = _mm256_add_epi32(acc2, _mm256_madd_epi16(cv, _mm256_set1_epi32(wk[2])));
                acc3 = _mm256_add_epi32(acc3, _mm256_madd_epi16(cv, _mm256_set1_epi32(wk[3])));
            }
            let csc = &col_scales[j0..j0 + CONV_NR];
            for (m, acc) in [acc0, acc1, acc2, acc3].into_iter().enumerate() {
                let mut lanes = [0i32; CONV_NR];
                _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
                conv_i8_epilogue(
                    &lanes,
                    w_scales[oc + m],
                    csc,
                    bias_at(oc + m),
                    relu,
                    &mut block[(oc - r0 + m) * n + j0..(oc - r0 + m) * n + j0 + CONV_NR],
                );
            }
            j0 += CONV_NR;
        }
        if j0 < n {
            // scalar tail: same exact i32 sums on the leftover columns
            let jn = n - j0;
            for m in 0..CONV_MR {
                let mut acc = [0i32; CONV_NR];
                for k in 0..npairs {
                    let w0 = wp[k * CONV_MR + m] as i16 as i32;
                    let w1 = (wp[k * CONV_MR + m] >> 16) as i32;
                    let prow = &cols16[(k * n + j0) * 2..(k * n + j0 + jn) * 2];
                    for (o, p) in acc[..jn].iter_mut().zip(prow.chunks_exact(2)) {
                        *o += w0 * p[0] as i32 + w1 * p[1] as i32;
                    }
                }
                conv_i8_epilogue(
                    &acc[..jn],
                    w_scales[oc + m],
                    &col_scales[j0..j0 + jn],
                    bias_at(oc + m),
                    relu,
                    &mut block[(oc - r0 + m) * n + j0..(oc - r0 + m) * n + j0 + jn],
                );
            }
        }
        oc += CONV_MR;
    }
}

/// Portable body of [`conv_i8w_rows`]: widening `i32` multiplies over the
/// pair-interleaved buffer, exact sums, shared epilogue — bitwise equal
/// to the AVX2 body and to the narrow-kernel reference.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn conv_i8w_rows_impl(
    panels: &[i8],
    w_scales: &[f32],
    cols16: &[i16],
    col_scales: &[f32],
    bias: Option<&[f32]>,
    block: &mut [f32],
    r0: usize,
    r1: usize,
    krows: usize,
    n: usize,
    relu: bool,
) {
    let bias_at = |oc: usize| bias.map_or(0.0, |b| b[oc]);
    for oc in r0..r1 {
        let row = &mut block[(oc - r0) * n..(oc - r0 + 1) * n];
        conv_i8w_row(
            panels,
            cols16,
            col_scales,
            bias_at(oc),
            w_scales[oc],
            row,
            oc,
            krows,
            n,
            relu,
        );
    }
}

/// Single output-channel path over the widened buffer: reads the packed
/// panel layout with stride `CONV_MR` and the pair-interleaved columns,
/// accumulating the same exact `i32` sum as [`conv_i8_row`].
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn conv_i8w_row(
    panels: &[i8],
    cols16: &[i16],
    col_scales: &[f32],
    bias: f32,
    w_scale: f32,
    row: &mut [f32],
    oc: usize,
    krows: usize,
    n: usize,
    relu: bool,
) {
    let base = (oc / CONV_MR) * krows * CONV_MR + oc % CONV_MR;
    let npairs = krows.div_ceil(2);
    let mut j0 = 0;
    while j0 < n {
        let jn = (n - j0).min(CONV_NR);
        let mut acc = [0i32; CONV_NR];
        for k in 0..npairs {
            let w0 = panels[base + 2 * k * CONV_MR] as i32;
            let w1 = if 2 * k + 1 < krows {
                panels[base + (2 * k + 1) * CONV_MR] as i32
            } else {
                0
            };
            let prow = &cols16[(k * n + j0) * 2..(k * n + j0 + jn) * 2];
            for (o, p) in acc[..jn].iter_mut().zip(prow.chunks_exact(2)) {
                *o += w0 * p[0] as i32 + w1 * p[1] as i32;
            }
        }
        conv_i8_epilogue(
            &acc[..jn],
            w_scale,
            &col_scales[j0..j0 + jn],
            bias,
            relu,
            &mut row[j0..j0 + jn],
        );
        j0 += CONV_NR;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Tensor, XorShiftRng};

    #[test]
    fn quantize_known_values() {
        // max_abs 2.0 → scale 2/127; codes hit the grid ends exactly
        let inv = i8_inv_scale(2.0);
        assert_eq!(quantize_i8(2.0, inv), 127);
        assert_eq!(quantize_i8(-2.0, inv), -127);
        assert_eq!(quantize_i8(0.0, inv), 0);
        assert_eq!(quantize_i8(1.0, inv), 64); // 63.5 rounds away from zero
    }

    #[test]
    fn zero_range_quantizes_to_zero() {
        let src = [0.0f32; 5];
        let mut dst = [7i8; 5];
        let scale = quantize_slice_i8(&src, &mut dst);
        assert_eq!(scale, 0.0);
        assert_eq!(dst, [0i8; 5]);
    }

    #[test]
    fn slice_roundtrip_error_bounded_by_half_step() {
        let mut rng = XorShiftRng::new(5);
        let src = Tensor::uniform(&[400], -3.0, 3.0, &mut rng);
        let mut q = vec![0i8; 400];
        let scale = quantize_slice_i8(src.as_slice(), &mut q);
        for (&x, &code) in src.as_slice().iter().zip(&q) {
            let back = code as f32 * scale;
            assert!(
                (x - back).abs() <= scale * 0.5 + 1e-6,
                "{x} vs {back} (scale {scale})"
            );
        }
    }

    #[test]
    fn dense_panel_scales_are_per_column() {
        // column 0 small-range, column 1 large-range: independent scales
        let wt = [0.1f32, 100.0, -0.05, -50.0]; // n_in=2, n_out=2
        let (_, scales) = quantize_dense_panels_i8(&wt, 2, 2);
        assert_eq!(scales[0], i8_scale(0.1));
        assert_eq!(scales[1], i8_scale(100.0));
    }

    #[test]
    fn dense_i8_matches_reference_bitwise() {
        let mut rng = XorShiftRng::new(17);
        for (n_in, n_out) in [(1usize, 1usize), (37, 19), (64, 24), (13, 8)] {
            let wt = Tensor::uniform(&[n_in, n_out], -1.0, 1.0, &mut rng);
            let bias = Tensor::uniform(&[n_out], -0.5, 0.5, &mut rng);
            let (panels, wsc) = quantize_dense_panels_i8(wt.as_slice(), n_in, n_out);
            for batch in [1usize, 3, 8, 21] {
                let a = Tensor::uniform(&[batch, n_in], -2.0, 2.0, &mut rng);
                let mut aq = vec![0i8; batch * n_in];
                let mut asc = vec![0.0f32; batch];
                for b in 0..batch {
                    asc[b] = quantize_slice_i8(
                        &a.as_slice()[b * n_in..(b + 1) * n_in],
                        &mut aq[b * n_in..(b + 1) * n_in],
                    );
                }
                let mut want = vec![0.0f32; batch * n_out];
                dense_batch_i8_reference(
                    &aq,
                    &asc,
                    &panels,
                    &wsc,
                    bias.as_slice(),
                    &mut want,
                    batch,
                    n_in,
                    n_out,
                );
                for threads in [1usize, 3] {
                    let mut got = vec![0.0f32; batch * n_out];
                    dense_batch_i8_into(
                        &aq,
                        &asc,
                        &panels,
                        &wsc,
                        bias.as_slice(),
                        &mut got,
                        batch,
                        n_in,
                        n_out,
                        threads,
                    );
                    assert_eq!(got, want, "n_in={n_in} n_out={n_out} batch={batch}");
                }
            }
        }
    }

    #[test]
    fn dense_i8_chw_matches_flat_reference_bitwise() {
        let mut rng = XorShiftRng::new(19);
        let (channels, plane, n_out, batch) = (3usize, 10usize, 7usize, 6usize);
        let n_in = channels * plane;
        let wt = Tensor::uniform(&[n_in, n_out], -1.0, 1.0, &mut rng);
        let bias = Tensor::uniform(&[n_out], -0.5, 0.5, &mut rng);
        let (panels, wsc) = quantize_dense_panels_i8(wt.as_slice(), n_in, n_out);
        let flat = Tensor::uniform(&[batch, n_in], -1.5, 1.5, &mut rng);
        // per-sample quantization of the flat layout...
        let mut fq = vec![0i8; batch * n_in];
        let mut asc = vec![0.0f32; batch];
        for b in 0..batch {
            asc[b] = quantize_slice_i8(
                &flat.as_slice()[b * n_in..(b + 1) * n_in],
                &mut fq[b * n_in..(b + 1) * n_in],
            );
        }
        // ...repacked channel-major gives the same codes per sample
        let mut cq = vec![0i8; batch * n_in];
        for b in 0..batch {
            for c in 0..channels {
                for p in 0..plane {
                    cq[(c * batch + b) * plane + p] = fq[b * n_in + c * plane + p];
                }
            }
        }
        let mut want = vec![0.0f32; batch * n_out];
        dense_batch_i8_reference(
            &fq,
            &asc,
            &panels,
            &wsc,
            bias.as_slice(),
            &mut want,
            batch,
            n_in,
            n_out,
        );
        let mut ref_chw = vec![0.0f32; batch * n_out];
        dense_batch_i8_chw_reference(
            &cq,
            &asc,
            &panels,
            &wsc,
            bias.as_slice(),
            &mut ref_chw,
            batch,
            channels,
            plane,
            n_out,
        );
        assert_eq!(ref_chw, want);
        for threads in [1usize, 2] {
            let mut got = vec![0.0f32; batch * n_out];
            dense_batch_i8_chw_into(
                &cq,
                &asc,
                &panels,
                &wsc,
                bias.as_slice(),
                &mut got,
                batch,
                channels,
                plane,
                n_out,
                threads,
            );
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn conv_i8_matches_reference_bitwise() {
        let mut rng = XorShiftRng::new(23);
        for (out_c, krows, n) in [
            (1usize, 9usize, 5usize),
            (4, 18, 16),
            (6, 27, 70),
            (12, 54, 64),
        ] {
            let w = Tensor::uniform(&[out_c, krows], -1.0, 1.0, &mut rng);
            let bias = Tensor::uniform(&[out_c], -0.5, 0.5, &mut rng);
            let (panels, wsc) = quantize_conv_panels_i8(w.as_slice(), out_c, krows);
            let colsf = Tensor::uniform(&[krows, n], -2.0, 2.0, &mut rng);
            let mut cols = vec![0i8; krows * n];
            // one shared activation scale, broadcast per column (single
            // sample in the batched layout)
            let scale = quantize_slice_i8(colsf.as_slice(), &mut cols);
            let col_scales = vec![scale; n];
            for relu in [false, true] {
                for bias_opt in [None, Some(bias.as_slice())] {
                    let mut want = vec![0.0f32; out_c * n];
                    conv_gemm_i8_reference(
                        &panels,
                        &wsc,
                        &cols,
                        &col_scales,
                        bias_opt,
                        &mut want,
                        out_c,
                        krows,
                        n,
                        relu,
                    );
                    for threads in [1usize, 2, 5] {
                        let mut got = vec![0.0f32; out_c * n];
                        conv_gemm_i8_into(
                            &panels,
                            &wsc,
                            &cols,
                            &col_scales,
                            bias_opt,
                            &mut got,
                            out_c,
                            krows,
                            n,
                            relu,
                            threads,
                        );
                        assert_eq!(
                            got, want,
                            "out_c={out_c} krows={krows} n={n} relu={relu} threads={threads}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn conv_i8_zero_depth_is_bias_epilogue() {
        let bias = [0.75f32, -1.25];
        let (panels, wsc) = quantize_conv_panels_i8(&[], 2, 0);
        let col_scales = [1.0f32; 3];
        let mut out = vec![f32::NAN; 6];
        conv_gemm_i8_into(
            &panels,
            &wsc,
            &[],
            &col_scales,
            Some(&bias),
            &mut out,
            2,
            0,
            3,
            true,
            1,
        );
        assert_eq!(out, vec![0.75, 0.75, 0.75, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn dequantized_dense_tracks_f32_result() {
        // end-to-end fidelity: int8 dense output within a few quantization
        // steps of the f32 kernel on a realistic layer
        let mut rng = XorShiftRng::new(29);
        let (n_in, n_out, batch) = (64usize, 32usize, 4usize);
        let wt = Tensor::uniform(&[n_in, n_out], -0.5, 0.5, &mut rng);
        let bias = Tensor::uniform(&[n_out], -0.2, 0.2, &mut rng);
        let a = Tensor::uniform(&[batch, n_in], -1.0, 1.0, &mut rng);
        let panels = crate::pack_dense_panels(wt.as_slice(), n_in, n_out);
        let mut want = vec![0.0f32; batch * n_out];
        crate::dense_batch_into(
            a.as_slice(),
            &panels,
            bias.as_slice(),
            &mut want,
            batch,
            n_in,
            n_out,
            1,
        );
        let (qpanels, wsc) = quantize_dense_panels_i8(wt.as_slice(), n_in, n_out);
        let mut aq = vec![0i8; batch * n_in];
        let mut asc = vec![0.0f32; batch];
        for b in 0..batch {
            asc[b] = quantize_slice_i8(
                &a.as_slice()[b * n_in..(b + 1) * n_in],
                &mut aq[b * n_in..(b + 1) * n_in],
            );
        }
        let mut got = vec![0.0f32; batch * n_out];
        dense_batch_i8_into(
            &aq,
            &asc,
            &qpanels,
            &wsc,
            bias.as_slice(),
            &mut got,
            batch,
            n_in,
            n_out,
            1,
        );
        for (b, (&x, &y)) in want.iter().zip(&got).enumerate() {
            // error budget: n_in products, each off by at most one half
            // step on each operand — loose bound, tight in practice
            let tol = 0.05 * (n_in as f32).sqrt() / I8_QMAX * 4.0 + 1e-4;
            assert!((x - y).abs() < tol.max(0.05), "elem {b}: {x} vs {y}");
        }
    }

    #[test]
    fn widened_conv_i8_matches_narrow_kernel_bitwise() {
        // pre-widened pair-interleaved kernel == narrow kernel == reference,
        // across odd/even krows, tail columns and worker splits
        let mut rng = XorShiftRng::new(31);
        for (out_c, krows, n) in [
            (1usize, 1usize, 1usize),
            (4, 9, 8),
            (6, 27, 19),
            (9, 16, 40),
        ] {
            let w = Tensor::uniform(&[out_c, krows], -1.0, 1.0, &mut rng);
            let bias = Tensor::uniform(&[out_c], -0.5, 0.5, &mut rng);
            let (panels, wsc) = quantize_conv_panels_i8(w.as_slice(), out_c, krows);
            let cols: Vec<i8> = (0..krows * n)
                .map(|_| (rng.next_u64() % 255) as i8)
                .collect();
            let csc: Vec<f32> = (0..n).map(|_| rng.next_uniform() * 0.01).collect();
            let mut cols16 = Vec::new();
            widen_i8_cols_pairs(&cols, krows, n, &mut cols16);
            let mut narrow = vec![0.0f32; out_c * n];
            let mut wide = vec![0.0f32; out_c * n];
            let mut slow = vec![0.0f32; out_c * n];
            for relu in [false, true] {
                for threads in [1usize, 3] {
                    conv_gemm_i8_into(
                        &panels,
                        &wsc,
                        &cols,
                        &csc,
                        Some(bias.as_slice()),
                        &mut narrow,
                        out_c,
                        krows,
                        n,
                        relu,
                        threads,
                    );
                    conv_gemm_i8w_into(
                        &panels,
                        &wsc,
                        &cols16,
                        &csc,
                        Some(bias.as_slice()),
                        &mut wide,
                        out_c,
                        krows,
                        n,
                        relu,
                        threads,
                    );
                    conv_gemm_i8_reference(
                        &panels,
                        &wsc,
                        &cols,
                        &csc,
                        Some(bias.as_slice()),
                        &mut slow,
                        out_c,
                        krows,
                        n,
                        relu,
                    );
                    assert_eq!(wide, narrow);
                    assert_eq!(wide, slow);
                }
            }
        }
    }
}
