//! Shape type: an owned list of dimension sizes with volume/stride helpers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape (list of dimension sizes) of a [`Tensor`](crate::Tensor).
///
/// Shapes are stored row-major; the last axis is contiguous.
///
/// # Examples
///
/// ```
/// use capnn_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.volume(), 24);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    pub fn new(dims: &[usize]) -> Self {
        Self {
            dims: dims.to_vec(),
        }
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of all dimensions; 1 for rank 0).
    pub fn volume(&self) -> usize {
        self.dims.iter().product()
    }

    /// Size of axis `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides (in elements) for each axis.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-dimensional index.
    ///
    /// Returns `None` if `index` has the wrong rank or any coordinate is out
    /// of bounds.
    pub fn offset(&self, index: &[usize]) -> Option<usize> {
        if index.len() != self.dims.len() {
            return None;
        }
        let mut off = 0;
        for (i, (&ix, &d)) in index.iter().zip(&self.dims).enumerate() {
            if ix >= d {
                return None;
            }
            off = off * d + ix;
            let _ = i;
        }
        Some(off)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Self { dims }
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.volume(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dim(1), 3);
    }

    #[test]
    fn empty_shape_is_scalar() {
        let s = Shape::new(&[]);
        assert_eq!(s.volume(), 1);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.offset(&[]), Some(0));
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        let s1 = Shape::new(&[7]);
        assert_eq!(s1.strides(), vec![1]);
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::new(&[2, 3, 4]);
        let strides = s.strides();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let expected = i * strides[0] + j * strides[1] + k * strides[2];
                    assert_eq!(s.offset(&[i, j, k]), Some(expected));
                }
            }
        }
    }

    #[test]
    fn offset_rejects_bad_indices() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.offset(&[2, 0]), None);
        assert_eq!(s.offset(&[0, 3]), None);
        assert_eq!(s.offset(&[0]), None);
        assert_eq!(s.offset(&[0, 0, 0]), None);
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2x3]");
        assert_eq!(Shape::new(&[]).to_string(), "[]");
    }

    #[test]
    fn zero_dim_volume_is_zero() {
        assert_eq!(Shape::new(&[2, 0, 3]).volume(), 0);
    }

    #[test]
    fn from_vec_and_slice() {
        let a: Shape = vec![1, 2].into();
        let b: Shape = (&[1usize, 2][..]).into();
        assert_eq!(a, b);
    }
}
