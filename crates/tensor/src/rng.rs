//! A tiny, deterministic xorshift64* RNG.
//!
//! Every workload in the reproduction is seeded through this generator so
//! experiments are bit-reproducible across runs and platforms, independent of
//! the `rand` crate's version-to-version stream changes. (`rand` is still used
//! at API boundaries where distributions are convenient.)

use serde::{Deserialize, Serialize};

/// Deterministic xorshift64* pseudo-random generator.
///
/// # Examples
///
/// ```
/// use capnn_tensor::XorShiftRng;
///
/// let mut a = XorShiftRng::new(7);
/// let mut b = XorShiftRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct XorShiftRng {
    state: u64,
    /// Cached second output of the Box–Muller transform.
    spare_gaussian: Option<f32>,
}

impl XorShiftRng {
    /// Creates a generator from a seed. A zero seed is remapped to a fixed
    /// non-zero constant (xorshift has an all-zero fixed point).
    pub fn new(seed: u64) -> Self {
        let state = if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        };
        Self {
            state,
            spare_gaussian: None,
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn next_uniform(&mut self) -> f32 {
        // Use the top 24 bits for a uniformly distributed mantissa.
        ((self.next_u64() >> 40) as f32) / (1u64 << 24) as f32
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "next_below(0) is undefined");
        (self.next_u64() % bound as u64) as usize
    }

    /// Standard-normal `f32` via Box–Muller.
    pub fn next_gaussian(&mut self) -> f32 {
        if let Some(g) = self.spare_gaussian.take() {
            return g;
        }
        // Avoid ln(0).
        let u1 = (self.next_uniform()).max(1e-12);
        let u2 = self.next_uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.spare_gaussian = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (a uniformly random
    /// combination), in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_combination(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct items from {n}");
        let mut pool: Vec<usize> = (0..n).collect();
        self.shuffle(&mut pool);
        let mut out = pool[..k].to_vec();
        out.sort_unstable();
        out
    }

    /// Derives an independent child generator (useful for parallel streams).
    pub fn fork(&mut self) -> Self {
        Self::new(self.next_u64() ^ 0xA076_1D64_78BD_642F)
    }
}

impl Default for XorShiftRng {
    fn default() -> Self {
        Self::new(0x5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = XorShiftRng::new(123);
        let mut b = XorShiftRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = XorShiftRng::new(1);
        let mut b = XorShiftRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShiftRng::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = XorShiftRng::new(9);
        for _ in 0..10_000 {
            let x = r.next_uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut r = XorShiftRng::new(11);
        let mean: f32 = (0..10_000).map(|_| r.next_uniform()).sum::<f32>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = XorShiftRng::new(5);
        for _ in 0..1000 {
            assert!(r.next_below(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "next_below(0)")]
    fn next_below_zero_panics() {
        XorShiftRng::new(1).next_below(0);
    }

    #[test]
    fn gaussian_moments() {
        let mut r = XorShiftRng::new(77);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| r.next_gaussian()).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.1, "var = {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = XorShiftRng::new(3);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_combination_distinct_sorted() {
        let mut r = XorShiftRng::new(4);
        for _ in 0..100 {
            let c = r.sample_combination(20, 5);
            assert_eq!(c.len(), 5);
            assert!(c.windows(2).all(|w| w[0] < w[1]));
            assert!(c.iter().all(|&i| i < 20));
        }
    }

    #[test]
    fn sample_combination_full_set() {
        let mut r = XorShiftRng::new(4);
        assert_eq!(r.sample_combination(5, 5), vec![0, 1, 2, 3, 4]);
        assert!(r.sample_combination(5, 0).is_empty());
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = XorShiftRng::new(99);
        let mut child = a.fork();
        assert_ne!(a.next_u64(), child.next_u64());
    }
}
