//! Minimal dense `f32` tensor math for the CAP'NN reproduction.
//!
//! This crate deliberately implements only what the neural-network substrate
//! ([`capnn-nn`](https://crates.io/crates/capnn-nn)) needs: contiguous
//! row-major tensors, matrix multiplication, im2col convolution, max pooling
//! and a handful of elementwise/reduction helpers. Keeping the math in-repo
//! (instead of binding to a BLAS or a deep-learning framework) makes every
//! experiment deterministic and dependency-free.
//!
//! # Examples
//!
//! ```
//! use capnn_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b).unwrap();
//! assert_eq!(c.as_slice(), a.as_slice());
//! ```

mod conv;
mod error;
mod ops;
pub mod parallel;
mod pool;
mod qops;
mod rng;
mod shape;
mod spops;
mod tensor;

pub use conv::{
    conv2d, conv2d_im2col, conv2d_im2col_scratch, conv2d_masked, im2col_batch_into,
    im2col_strided_into, Conv2dSpec, ConvScratch,
};
pub use error::{ShapeError, TensorError};
pub use ops::{
    conv_gemm_into, conv_panels_len, dense_batch_chw_into, dense_batch_into, matmul, matmul_into,
    matmul_layout, matmul_layout_reference, matmul_layout_threaded, matmul_transpose_a,
    matmul_transpose_b, pack_conv_panels, pack_dense_panels, MatmulLayout,
};
pub use pool::{max_pool2d, PoolSpec};
pub use qops::{
    conv_gemm_i8_into, conv_gemm_i8_reference, conv_gemm_i8w_into, dense_batch_i8_chw_into,
    dense_batch_i8_chw_reference, dense_batch_i8_into, dense_batch_i8_reference, i8_inv_scale,
    i8_scale, max_abs, quantize_conv_panels_i8, quantize_dense_panels_i8, quantize_i8,
    quantize_slice_i8, widen_i8_cols_pairs, I8_QMAX,
};
pub use rng::XorShiftRng;
pub use shape::Shape;
pub use spops::{
    conv_nm_gemm_i8_into, conv_nm_gemm_i8_reference, conv_nm_gemm_into, conv_nm_gemm_reference,
    dense_nm_batch_chw_into, dense_nm_batch_chw_reference, dense_nm_batch_i8_chw_into,
    dense_nm_batch_i8_chw_reference, dense_nm_batch_i8_into, dense_nm_batch_i8_reference,
    dense_nm_batch_into, dense_nm_batch_reference, nm_nnz, quantize_nm_conv_i8,
    quantize_nm_dense_i8, select_nm_conv, select_nm_dense,
};
pub use tensor::Tensor;
