//! Property-based equivalence of the panel-packed conv GEMM micro-kernel
//! stack against the plain `conv2d_im2col` reference: for any shape,
//! stride, padding, thread count and prune mask, the packed path
//! ([`pack_conv_panels`] + [`im2col_batch_into`] + [`conv_gemm_into`] with
//! its fused bias/ReLU epilogue) must reproduce the reference values —
//! elementwise `==` (exact-zero signs aside), hence argmax-bit-compatibly.

use capnn_tensor::{
    conv2d_im2col, conv2d_im2col_scratch, conv2d_masked, conv_gemm_into, conv_panels_len,
    im2col_batch_into, im2col_strided_into, pack_conv_panels, Conv2dSpec, ConvScratch, Tensor,
    XorShiftRng,
};
use proptest::prelude::*;

/// `(c_in, c_out, h, kernel, stride, padding)` with geometry guaranteed to
/// yield a non-empty output plane.
fn conv_case() -> impl Strategy<Value = (usize, usize, usize, usize, usize, usize)> {
    (
        1usize..4,
        1usize..7,
        5usize..10,
        prop::sample::select(vec![1usize, 2, 3]),
        1usize..3,
        0usize..2,
    )
}

fn thread_count() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![1usize, 2, 3, 5])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The explicit packed pipeline — pack panels once, batch-wide unfold,
    /// fused epilogue GEMM — is value-identical to `conv2d_im2col` plus a
    /// separate ReLU pass, for every geometry and thread count.
    #[test]
    fn packed_conv_gemm_matches_im2col_reference(
        (c_in, c_out, h, k, stride, padding) in conv_case(),
        relu in any::<bool>(),
        with_bias in any::<bool>(),
        threads in thread_count(),
        seed in any::<u64>(),
    ) {
        let mut rng = XorShiftRng::new(seed);
        let spec = Conv2dSpec::new(c_in, c_out, k, stride, padding);
        let input = Tensor::uniform(&[c_in, h, h], -1.0, 1.0, &mut rng);
        let w = Tensor::uniform(&[c_out, c_in, k, k], -1.0, 1.0, &mut rng);
        let bias = Tensor::uniform(&[c_out], -0.5, 0.5, &mut rng);
        let bias_ref = if with_bias { Some(&bias) } else { None };
        let (oh, ow) = spec.output_hw(h, h);
        let oplane = oh * ow;
        let krows = c_in * k * k;

        let mut reference = conv2d_im2col(&input, &w, bias_ref, &spec).unwrap();
        if relu {
            for v in reference.as_mut_slice() {
                *v = v.max(0.0);
            }
        }

        let panels = pack_conv_panels(w.as_slice(), c_out, krows);
        prop_assert_eq!(panels.len(), conv_panels_len(c_out, krows));
        let mut cols = vec![0.0f32; krows * oplane];
        im2col_batch_into(input.as_slice(), &spec, h, h, 1, &mut cols, threads);
        let mut out = vec![0.0f32; c_out * oplane];
        conv_gemm_into(
            &panels,
            &cols,
            if with_bias { Some(bias.as_slice()) } else { None },
            &mut out,
            c_out,
            krows,
            oplane,
            relu,
            threads,
        );
        prop_assert_eq!(out.as_slice(), reference.as_slice());
    }

    /// The production scratch path (which packs + runs the micro-kernel
    /// internally) stays bit-compatible with the reference across *all*
    /// strides and paddings, warm and cold.
    #[test]
    fn scratch_conv_matches_reference_all_geometries(
        (c_in, c_out, h, k, stride, padding) in conv_case(),
        seed in any::<u64>(),
    ) {
        let mut rng = XorShiftRng::new(seed);
        let spec = Conv2dSpec::new(c_in, c_out, k, stride, padding);
        let input = Tensor::uniform(&[c_in, h, h], -1.0, 1.0, &mut rng);
        let w = Tensor::uniform(&[c_out, c_in, k, k], -1.0, 1.0, &mut rng);
        let bias = Tensor::uniform(&[c_out], -0.5, 0.5, &mut rng);
        let reference = conv2d_im2col(&input, &w, Some(&bias), &spec).unwrap();
        let mut scratch = ConvScratch::new();
        for _ in 0..2 {
            let fast =
                conv2d_im2col_scratch(&input, &w, Some(&bias), &spec, &mut scratch).unwrap();
            prop_assert_eq!(fast.as_slice(), reference.as_slice());
        }
    }

    /// Masked conv (kept weights gathered straight into panels) matches the
    /// dense reference on kept channels and yields exact zeros on pruned
    /// ones, for random prune masks over both channel sides.
    #[test]
    fn masked_panel_conv_matches_zeroed_reference(
        (c_in, c_out, h, k, stride, padding) in conv_case(),
        keep_bits in any::<u32>(),
        seed in any::<u64>(),
    ) {
        let mut rng = XorShiftRng::new(seed);
        let spec = Conv2dSpec::new(c_in, c_out, k, stride, padding);
        let mut input = Tensor::uniform(&[c_in, h, h], -1.0, 1.0, &mut rng);
        let w = Tensor::uniform(&[c_out, c_in, k, k], -1.0, 1.0, &mut rng);
        let bias = Tensor::uniform(&[c_out], -0.5, 0.5, &mut rng);
        // random kept sets; the input side stays non-empty (engine contract)
        let kept_in: Vec<usize> = (0..c_in)
            .filter(|&c| c == 0 || keep_bits & (1 << c) != 0)
            .collect();
        let kept_out: Vec<usize> = (0..c_out)
            .filter(|&c| keep_bits & (1 << (8 + c)) != 0)
            .collect();
        // engine contract: pruned input channels hold exact zeros
        {
            let plane = h * h;
            let iv = input.as_mut_slice();
            for c in 0..c_in {
                if !kept_in.contains(&c) {
                    for v in &mut iv[c * plane..(c + 1) * plane] {
                        *v = 0.0;
                    }
                }
            }
        }
        let dense = conv2d_im2col(&input, &w, Some(&bias), &spec).unwrap();
        let mut scratch = ConvScratch::new();
        let masked =
            conv2d_masked(&input, &w, Some(&bias), &spec, &kept_out, &kept_in, &mut scratch)
                .unwrap();
        let (oh, ow) = spec.output_hw(h, h);
        let plane = oh * ow;
        for oc in 0..c_out {
            let m = &masked.as_slice()[oc * plane..(oc + 1) * plane];
            if kept_out.contains(&oc) {
                let d = &dense.as_slice()[oc * plane..(oc + 1) * plane];
                for (&x, &y) in m.iter().zip(d) {
                    prop_assert!((x - y).abs() < 1e-5, "{} vs {}", x, y);
                }
            } else {
                prop_assert!(m.iter().all(|&v| v == 0.0));
            }
        }
    }

    /// The batch-wide row-partitioned unfold fills exactly the matrix the
    /// per-sample strided unfold would, for every thread count.
    #[test]
    fn batch_unfold_matches_per_sample_strided(
        (c_in, _c_out, h, k, stride, padding) in conv_case(),
        batch in 1usize..5,
        threads in thread_count(),
        seed in any::<u64>(),
    ) {
        let mut rng = XorShiftRng::new(seed);
        let spec = Conv2dSpec::new(c_in, 1, k, stride, padding);
        let plane = h * h;
        // channel-major batched input: channel c of sample b at
        // (c·batch + b)·plane
        let input = Tensor::uniform(&[c_in * batch * plane], -1.0, 1.0, &mut rng);
        let (oh, ow) = spec.output_hw(h, h);
        let oplane = oh * ow;
        let wide = batch * oplane;
        let krows = c_in * k * k;
        let mut batch_cols = vec![0.0f32; krows * wide];
        im2col_batch_into(input.as_slice(), &spec, h, h, batch, &mut batch_cols, threads);
        let mut ref_cols = vec![0.0f32; krows * wide];
        for b in 0..batch {
            im2col_strided_into(
                input.as_slice(),
                &spec,
                h,
                h,
                batch * plane,
                b * plane,
                wide,
                b * oplane,
                &mut ref_cols,
            );
        }
        prop_assert_eq!(&batch_cols, &ref_cols);
    }
}
