//! Property-based equivalence of the int8 GEMM kernel stack against its
//! scalar references. Unlike the f32 suites, the contract here is
//! **bitwise**: the `i32` reduction is exact, so for any shape, batch,
//! thread count and prune-shaped weight matrix the runtime-dispatched
//! kernels must reproduce the references' every output bit — there is no
//! rounding for a tiling bug to hide behind.

use capnn_tensor::{
    conv_gemm_i8_into, conv_gemm_i8_reference, dense_batch_i8_chw_into,
    dense_batch_i8_chw_reference, dense_batch_i8_into, dense_batch_i8_reference, i8_scale,
    quantize_conv_panels_i8, quantize_dense_panels_i8, quantize_slice_i8, Tensor, XorShiftRng,
};
use proptest::prelude::*;

fn thread_count() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![1usize, 2, 3, 5])
}

/// Random f32 weights with a random subset of output columns zeroed, the
/// shape pruning leaves behind.
fn masked_weights(rng: &mut XorShiftRng, n_in: usize, n_out: usize) -> Vec<f32> {
    let mut wt: Vec<f32> = Tensor::uniform(&[n_in, n_out], -1.5, 1.5, rng)
        .as_slice()
        .to_vec();
    for j in 0..n_out {
        if rng.next_u64().is_multiple_of(4) {
            for c in 0..n_in {
                wt[c * n_out + j] = 0.0;
            }
        }
    }
    wt
}

fn quantized_activations(rng: &mut XorShiftRng, batch: usize, n_in: usize) -> (Vec<i8>, Vec<f32>) {
    let acts = Tensor::uniform(&[batch, n_in.max(1)], -2.0, 2.0, rng);
    let mut qa = vec![0i8; batch * n_in];
    let mut scales = vec![0.0f32; batch];
    for b in 0..batch {
        scales[b] = quantize_slice_i8(
            &acts.as_slice()[b * n_in..(b + 1) * n_in],
            &mut qa[b * n_in..(b + 1) * n_in],
        );
    }
    (qa, scales)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flat dense int8 kernel vs its scalar reference, bitwise, across
    /// random shapes, batch sizes, masked weights and thread counts.
    #[test]
    fn dense_i8_matches_reference_bitwise(
        batch in 1usize..20,
        n_in in 1usize..24,
        n_out in 1usize..24,
        threads in thread_count(),
        seed in any::<u64>(),
    ) {
        let mut rng = XorShiftRng::new(seed);
        let wt = masked_weights(&mut rng, n_in, n_out);
        let (panels, w_scales) = quantize_dense_panels_i8(&wt, n_in, n_out);
        let bias: Vec<f32> = Tensor::uniform(&[n_out], -0.5, 0.5, &mut rng)
            .as_slice()
            .to_vec();
        let (qa, a_scales) = quantized_activations(&mut rng, batch, n_in);

        let mut want = vec![0.0f32; batch * n_out];
        dense_batch_i8_reference(
            &qa, &a_scales, &panels, &w_scales, &bias, &mut want, batch, n_in, n_out,
        );
        let mut got = vec![0.0f32; batch * n_out];
        dense_batch_i8_into(
            &qa, &a_scales, &panels, &w_scales, &bias, &mut got, batch, n_in, n_out, threads,
        );
        prop_assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    /// CHW-strided dense int8 kernel vs its scalar reference, bitwise.
    #[test]
    fn dense_i8_chw_matches_reference_bitwise(
        batch in 1usize..12,
        channels in 1usize..6,
        plane in 1usize..10,
        n_out in 1usize..20,
        threads in thread_count(),
        seed in any::<u64>(),
    ) {
        let mut rng = XorShiftRng::new(seed);
        let n_in = channels * plane;
        let wt = masked_weights(&mut rng, n_in, n_out);
        let (panels, w_scales) = quantize_dense_panels_i8(&wt, n_in, n_out);
        let bias: Vec<f32> = Tensor::uniform(&[n_out], -0.5, 0.5, &mut rng)
            .as_slice()
            .to_vec();
        // channel-major batched CHW activation: (b, c, p) at (c·B + b)·plane + p
        let mut qa = vec![0i8; batch * n_in];
        let mut a_scales = vec![0.0f32; batch];
        for b in 0..batch {
            a_scales[b] = i8_scale(2.0);
            for c in 0..channels {
                for p in 0..plane {
                    qa[(c * batch + b) * plane + p] = (rng.next_u64() % 255) as i8;
                }
            }
        }

        let mut want = vec![0.0f32; batch * n_out];
        dense_batch_i8_chw_reference(
            &qa, &a_scales, &panels, &w_scales, &bias, &mut want, batch, channels, plane, n_out,
        );
        let mut got = vec![0.0f32; batch * n_out];
        dense_batch_i8_chw_into(
            &qa, &a_scales, &panels, &w_scales, &bias, &mut got, batch, channels, plane, n_out,
            threads,
        );
        prop_assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    /// Conv panel int8 GEMM vs its scalar reference, bitwise, including
    /// the fused bias/ReLU epilogue and per-column scale broadcast.
    #[test]
    fn conv_i8_matches_reference_bitwise(
        out_c in 1usize..10,
        krows in 1usize..28,
        n in 1usize..40,
        relu in any::<bool>(),
        with_bias in any::<bool>(),
        threads in thread_count(),
        seed in any::<u64>(),
    ) {
        let mut rng = XorShiftRng::new(seed);
        let w = masked_weights(&mut rng, krows, out_c); // column-pruned, any layout works
        let (panels, w_scales) = quantize_conv_panels_i8(&w, out_c, krows);
        let bias: Vec<f32> = Tensor::uniform(&[out_c], -0.5, 0.5, &mut rng)
            .as_slice()
            .to_vec();
        let bias_ref = with_bias.then_some(&bias[..]);
        let mut cols = vec![0i8; krows * n];
        for v in cols.iter_mut() {
            *v = (rng.next_u64() % 255) as i8;
        }
        let col_scales: Vec<f32> = (0..n).map(|_| i8_scale(1.0 + (rng.next_u64() % 7) as f32)).collect();

        let mut want = vec![0.0f32; out_c * n];
        conv_gemm_i8_reference(
            &panels, &w_scales, &cols, &col_scales, bias_ref, &mut want, out_c, krows, n, relu,
        );
        let mut got = vec![0.0f32; out_c * n];
        conv_gemm_i8_into(
            &panels, &w_scales, &cols, &col_scales, bias_ref, &mut got, out_c, krows, n, relu,
            threads,
        );
        prop_assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    /// Activation quantization round-trip error is bounded by half the
    /// returned scale, and all-zero slices round-trip exactly.
    #[test]
    fn quantize_slice_error_bounded(
        len in 1usize..64,
        seed in any::<u64>(),
    ) {
        let mut rng = XorShiftRng::new(seed);
        let xs: Vec<f32> = Tensor::uniform(&[len], -3.0, 3.0, &mut rng)
            .as_slice()
            .to_vec();
        let mut qs = vec![0i8; len];
        let scale = quantize_slice_i8(&xs, &mut qs);
        for (&x, &q) in xs.iter().zip(&qs) {
            let err = (x - q as f32 * scale).abs();
            prop_assert!(err <= scale * 0.5 + f32::EPSILON, "err {err} scale {scale}");
        }
        let zeros = vec![0.0f32; len];
        let mut qz = vec![0i8; len];
        prop_assert_eq!(quantize_slice_i8(&zeros, &mut qz), 0.0);
        prop_assert!(qz.iter().all(|&q| q == 0));
    }
}
