//! Property-based equivalence of the N:M semi-structured sparse GEMM
//! kernels against their scalar references: for any shape, N:M pattern,
//! batch size and thread count, the packed sparse paths (f32 and int8,
//! conv and dense, flat and CHW activation layouts) must reproduce the
//! reference values **bitwise** — the sparse tier's correctness contract
//! is exact, not approximate, so plan-level argmax agreement reduces to
//! the selection step alone.

use capnn_tensor::{
    conv_nm_gemm_i8_into, conv_nm_gemm_i8_reference, conv_nm_gemm_into, conv_nm_gemm_reference,
    dense_nm_batch_chw_into, dense_nm_batch_chw_reference, dense_nm_batch_i8_chw_into,
    dense_nm_batch_i8_chw_reference, dense_nm_batch_i8_into, dense_nm_batch_i8_reference,
    dense_nm_batch_into, dense_nm_batch_reference, i8_scale, nm_nnz, quantize_nm_conv_i8,
    quantize_nm_dense_i8, quantize_slice_i8, select_nm_conv, select_nm_dense, Tensor, XorShiftRng,
};
use proptest::prelude::*;

fn pattern() -> impl Strategy<Value = (usize, usize)> {
    prop::sample::select(vec![
        (1usize, 2usize),
        (2, 4),
        (4, 8),
        (1, 4),
        (3, 4),
        (2, 8),
    ])
}

fn thread_count() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![1usize, 2, 3, 5])
}

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|v| v.to_bits()).collect()
}

/// Weights with some rows zeroed, mimicking kept-channel pruning upstream
/// of the N:M selection.
fn weights(rng: &mut XorShiftRng, rows: usize, cols: usize) -> Vec<f32> {
    let mut w = Tensor::uniform(&[rows.max(1), cols.max(1)], -1.0, 1.0, rng)
        .as_slice()
        .to_vec();
    w.truncate(rows * cols);
    for r in 0..rows {
        if rng.next_u64().is_multiple_of(5) {
            for c in 0..cols {
                w[r * cols + c] = 0.0;
            }
        }
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conv selection structural invariants: per output channel, exactly
    /// `nm_nnz` kept positions, indices strictly ascending, each index a
    /// real reduction row, and every kept value the original weight at
    /// its index.
    #[test]
    fn conv_selection_is_structurally_valid(
        out_c in 1usize..8,
        krows in 1usize..40,
        (n, m) in pattern(),
        seed in any::<u64>(),
    ) {
        let mut rng = XorShiftRng::new(seed);
        let w = weights(&mut rng, out_c, krows);
        let (vals, idx) = select_nm_conv(&w, out_c, krows, n, m);
        let nnz = nm_nnz(krows, n, m).min(krows);
        prop_assert_eq!(vals.len(), out_c * nnz);
        prop_assert_eq!(idx.len(), out_c * nnz);
        for oc in 0..out_c {
            let row = &idx[oc * nnz..(oc + 1) * nnz];
            for t in 0..nnz {
                let r = row[t] as usize;
                prop_assert!(r < krows);
                if t > 0 {
                    prop_assert!(row[t] > row[t - 1], "indices ascending");
                }
                prop_assert_eq!(vals[oc * nnz + t], w[oc * krows + r]);
                // group-local: index t sits in group t·m/n at most
                prop_assert!(r / m <= (t * m) / n + 1);
            }
        }
    }

    /// f32 conv N:M kernel vs scalar reference, bitwise, across shapes,
    /// patterns, epilogues and thread counts.
    #[test]
    fn conv_nm_f32_matches_reference_bitwise(
        out_c in 1usize..10,
        krows in 1usize..28,
        cols_n in 1usize..40,
        (n, m) in pattern(),
        relu in any::<bool>(),
        with_bias in any::<bool>(),
        threads in thread_count(),
        seed in any::<u64>(),
    ) {
        let mut rng = XorShiftRng::new(seed);
        let w = weights(&mut rng, out_c, krows);
        let (vals, idx) = select_nm_conv(&w, out_c, krows, n, m);
        let nnz = nm_nnz(krows, n, m).min(krows);
        let bias: Vec<f32> = Tensor::uniform(&[out_c], -0.5, 0.5, &mut rng)
            .as_slice()
            .to_vec();
        let bias_ref = with_bias.then_some(&bias[..]);
        let cols = Tensor::uniform(&[krows, cols_n], -1.0, 1.0, &mut rng);

        let mut want = vec![0.0f32; out_c * cols_n];
        conv_nm_gemm_reference(
            &vals, &idx, bias_ref, cols.as_slice(), &mut want, out_c, nnz, cols_n, relu,
        );
        let mut got = vec![0.0f32; out_c * cols_n];
        conv_nm_gemm_into(
            &vals, &idx, bias_ref, cols.as_slice(), &mut got, out_c, nnz, cols_n, relu, threads,
        );
        prop_assert_eq!(bits(&got), bits(&want));
    }

    /// int8 conv N:M kernel vs scalar reference, bitwise: exact i32
    /// accumulation over gathered rows must agree on every path.
    #[test]
    fn conv_nm_i8_matches_reference_bitwise(
        out_c in 1usize..10,
        krows in 1usize..28,
        cols_n in 1usize..40,
        (n, m) in pattern(),
        relu in any::<bool>(),
        with_bias in any::<bool>(),
        threads in thread_count(),
        seed in any::<u64>(),
    ) {
        let mut rng = XorShiftRng::new(seed);
        let w = weights(&mut rng, out_c, krows);
        let (vals, idx) = select_nm_conv(&w, out_c, krows, n, m);
        let nnz = nm_nnz(krows, n, m).min(krows);
        let (qvals, w_scales) = quantize_nm_conv_i8(&vals, out_c, nnz);
        let bias: Vec<f32> = Tensor::uniform(&[out_c], -0.5, 0.5, &mut rng)
            .as_slice()
            .to_vec();
        let bias_ref = with_bias.then_some(&bias[..]);
        let mut cols = vec![0i8; krows * cols_n];
        for v in cols.iter_mut() {
            *v = (rng.next_u64() % 255) as i8;
        }
        let col_scales: Vec<f32> = (0..cols_n)
            .map(|_| i8_scale(1.0 + (rng.next_u64() % 7) as f32))
            .collect();

        let mut want = vec![0.0f32; out_c * cols_n];
        conv_nm_gemm_i8_reference(
            &qvals, &w_scales, &idx, &cols, &col_scales, bias_ref, &mut want, out_c, nnz,
            cols_n, relu,
        );
        let mut got = vec![0.0f32; out_c * cols_n];
        conv_nm_gemm_i8_into(
            &qvals, &w_scales, &idx, &cols, &col_scales, bias_ref, &mut got, out_c, nnz,
            cols_n, relu, threads,
        );
        prop_assert_eq!(bits(&got), bits(&want));
    }

    /// f32 dense N:M kernel, flat layout, vs scalar reference — bitwise
    /// across batch sizes and thread counts.
    #[test]
    fn dense_nm_f32_flat_matches_reference_bitwise(
        batch in 1usize..20,
        n_in in 1usize..24,
        n_out in 1usize..24,
        (n, m) in pattern(),
        threads in thread_count(),
        seed in any::<u64>(),
    ) {
        let mut rng = XorShiftRng::new(seed);
        let wt = weights(&mut rng, n_in, n_out);
        let (vals, idx) = select_nm_dense(&wt, n_in, n_out, n, m);
        let nnz = nm_nnz(n_in, n, m).min(n_in);
        let bias: Vec<f32> = Tensor::uniform(&[n_out], -0.5, 0.5, &mut rng)
            .as_slice()
            .to_vec();
        let a = Tensor::uniform(&[batch, n_in], -2.0, 2.0, &mut rng);

        let mut want = vec![0.0f32; batch * n_out];
        dense_nm_batch_reference(
            a.as_slice(), &vals, &idx, &bias, &mut want, batch, n_in, n_out, nnz,
        );
        let mut got = vec![0.0f32; batch * n_out];
        dense_nm_batch_into(
            a.as_slice(), &vals, &idx, &bias, &mut got, batch, n_in, n_out, nnz, threads,
        );
        prop_assert_eq!(bits(&got), bits(&want));
    }

    /// f32 dense N:M kernel over the channel-major batched CHW layout:
    /// bitwise vs its reference AND vs flattening + the flat kernel on
    /// the same logical activations.
    #[test]
    fn dense_nm_f32_chw_matches_reference_and_flat_bitwise(
        batch in 1usize..12,
        channels in 1usize..5,
        plane in 1usize..7,
        n_out in 1usize..20,
        (n, m) in pattern(),
        threads in thread_count(),
        seed in any::<u64>(),
    ) {
        let mut rng = XorShiftRng::new(seed);
        let n_in = channels * plane;
        let wt = weights(&mut rng, n_in, n_out);
        let (vals, idx) = select_nm_dense(&wt, n_in, n_out, n, m);
        let nnz = nm_nnz(n_in, n, m).min(n_in);
        let bias: Vec<f32> = Tensor::uniform(&[n_out], -0.5, 0.5, &mut rng)
            .as_slice()
            .to_vec();
        let flat = Tensor::uniform(&[batch, n_in], -2.0, 2.0, &mut rng);
        // channel-major batched CHW: element (b, c, p) at (c·batch + b)·plane + p
        let mut chw = vec![0.0f32; batch * n_in];
        for b in 0..batch {
            for c in 0..n_in {
                chw[(c / plane) * batch * plane + b * plane + c % plane] =
                    flat.as_slice()[b * n_in + c];
            }
        }

        let mut want = vec![0.0f32; batch * n_out];
        dense_nm_batch_chw_reference(
            &chw, &vals, &idx, &bias, &mut want, batch, plane, n_out, nnz,
        );
        let mut got = vec![0.0f32; batch * n_out];
        dense_nm_batch_chw_into(
            &chw, &vals, &idx, &bias, &mut got, batch, channels, plane, n_out, nnz, threads,
        );
        prop_assert_eq!(bits(&got), bits(&want));

        let mut via_flat = vec![0.0f32; batch * n_out];
        dense_nm_batch_into(
            flat.as_slice(), &vals, &idx, &bias, &mut via_flat, batch, n_in, n_out, nnz, threads,
        );
        prop_assert_eq!(bits(&got), bits(&via_flat));
    }

    /// int8 dense N:M kernels (flat and CHW) vs their scalar references,
    /// bitwise, with per-sample activation scales.
    #[test]
    fn dense_nm_i8_flat_and_chw_match_reference_bitwise(
        batch in 1usize..12,
        channels in 1usize..5,
        plane in 1usize..7,
        n_out in 1usize..20,
        (n, m) in pattern(),
        threads in thread_count(),
        seed in any::<u64>(),
    ) {
        let mut rng = XorShiftRng::new(seed);
        let n_in = channels * plane;
        let wt = weights(&mut rng, n_in, n_out);
        let (vals, idx) = select_nm_dense(&wt, n_in, n_out, n, m);
        let nnz = nm_nnz(n_in, n, m).min(n_in);
        let (qvals, w_scales) = quantize_nm_dense_i8(&vals, n_out, nnz);
        let bias: Vec<f32> = Tensor::uniform(&[n_out], -0.5, 0.5, &mut rng)
            .as_slice()
            .to_vec();
        let acts = Tensor::uniform(&[batch, n_in], -2.0, 2.0, &mut rng);
        let mut qa = vec![0i8; batch * n_in];
        let mut a_scales = vec![0.0f32; batch];
        for b in 0..batch {
            a_scales[b] = quantize_slice_i8(
                &acts.as_slice()[b * n_in..(b + 1) * n_in],
                &mut qa[b * n_in..(b + 1) * n_in],
            );
        }

        let mut want = vec![0.0f32; batch * n_out];
        dense_nm_batch_i8_reference(
            &qa, &a_scales, &qvals, &w_scales, &idx, &bias, &mut want, batch, n_in, n_out, nnz,
        );
        let mut got = vec![0.0f32; batch * n_out];
        dense_nm_batch_i8_into(
            &qa, &a_scales, &qvals, &w_scales, &idx, &bias, &mut got, batch, n_in, n_out, nnz,
            threads,
        );
        prop_assert_eq!(bits(&got), bits(&want));

        // same samples rearranged channel-major: (b, c, p) at (c·batch + b)·plane + p
        let mut qchw = vec![0i8; batch * n_in];
        for b in 0..batch {
            for c in 0..n_in {
                qchw[(c / plane) * batch * plane + b * plane + c % plane] = qa[b * n_in + c];
            }
        }
        let mut want_chw = vec![0.0f32; batch * n_out];
        dense_nm_batch_i8_chw_reference(
            &qchw, &a_scales, &qvals, &w_scales, &idx, &bias, &mut want_chw, batch, plane,
            n_out, nnz,
        );
        let mut got_chw = vec![0.0f32; batch * n_out];
        dense_nm_batch_i8_chw_into(
            &qchw, &a_scales, &qvals, &w_scales, &idx, &bias, &mut got_chw, batch, channels,
            plane, n_out, nnz, threads,
        );
        prop_assert_eq!(bits(&got_chw), bits(&want_chw));
        // the two layouts agree with each other on the same logical data
        prop_assert_eq!(bits(&got_chw), bits(&got));
    }
}
