//! Property-based tests for the tensor crate's core invariants.

use capnn_tensor::{
    conv2d, conv2d_im2col, conv2d_im2col_scratch, conv2d_masked, matmul, matmul_layout_reference,
    matmul_layout_threaded, max_pool2d, Conv2dSpec, ConvScratch, MatmulLayout, PoolSpec, Tensor,
    XorShiftRng,
};
use proptest::prelude::*;

fn small_dim() -> impl Strategy<Value = usize> {
    1usize..6
}

fn kernel_dim() -> impl Strategy<Value = usize> {
    1usize..40
}

fn thread_count() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![1usize, 2, 3, 4, 8])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_identity_left_and_right(m in small_dim(), n in small_dim(), seed in any::<u64>()) {
        let mut rng = XorShiftRng::new(seed);
        let a = Tensor::uniform(&[m, n], -2.0, 2.0, &mut rng);
        let left = matmul(&Tensor::eye(m), &a).unwrap();
        let right = matmul(&a, &Tensor::eye(n)).unwrap();
        for (&x, &y) in a.as_slice().iter().zip(left.as_slice()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
        for (&x, &y) in a.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        m in small_dim(), k in small_dim(), n in small_dim(), seed in any::<u64>()
    ) {
        let mut rng = XorShiftRng::new(seed);
        let a = Tensor::uniform(&[m, k], -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(&[k, n], -1.0, 1.0, &mut rng);
        let c = Tensor::uniform(&[k, n], -1.0, 1.0, &mut rng);
        let lhs = matmul(&a, &b.add(&c).unwrap()).unwrap();
        let rhs = matmul(&a, &b).unwrap().add(&matmul(&a, &c).unwrap()).unwrap();
        for (&x, &y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn transpose_is_involutive(m in small_dim(), n in small_dim(), seed in any::<u64>()) {
        let mut rng = XorShiftRng::new(seed);
        let a = Tensor::uniform(&[m, n], -1.0, 1.0, &mut rng);
        let back = a.transpose().unwrap().transpose().unwrap();
        prop_assert_eq!(a.as_slice(), back.as_slice());
    }

    #[test]
    fn im2col_conv_matches_direct(
        c_in in 1usize..4, c_out in 1usize..4, h in 4usize..9, seed in any::<u64>()
    ) {
        let mut rng = XorShiftRng::new(seed);
        let spec = Conv2dSpec::new(c_in, c_out, 3, 1, 1);
        let input = Tensor::uniform(&[c_in, h, h], -1.0, 1.0, &mut rng);
        let w = Tensor::uniform(&[c_out, c_in, 3, 3], -1.0, 1.0, &mut rng);
        let a = conv2d_im2col(&input, &w, None, &spec).unwrap();
        let b = conv2d(&input, &w, None, &spec).unwrap();
        for (&x, &y) in a.as_slice().iter().zip(b.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
        }
    }

    #[test]
    fn conv_is_linear_in_input(c_in in 1usize..3, h in 4usize..8, seed in any::<u64>()) {
        let mut rng = XorShiftRng::new(seed);
        let spec = Conv2dSpec::new(c_in, 2, 3, 1, 1);
        let x = Tensor::uniform(&[c_in, h, h], -1.0, 1.0, &mut rng);
        let y = Tensor::uniform(&[c_in, h, h], -1.0, 1.0, &mut rng);
        let w = Tensor::uniform(&[2, c_in, 3, 3], -1.0, 1.0, &mut rng);
        let sum = conv2d_im2col(&x.add(&y).unwrap(), &w, None, &spec).unwrap();
        let separate = conv2d_im2col(&x, &w, None, &spec)
            .unwrap()
            .add(&conv2d_im2col(&y, &w, None, &spec).unwrap())
            .unwrap();
        for (&a, &b) in sum.as_slice().iter().zip(separate.as_slice()) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn max_pool_output_bounded_by_input(c in 1usize..4, h in 2usize..8, seed in any::<u64>()) {
        let mut rng = XorShiftRng::new(seed);
        let input = Tensor::uniform(&[c, h, h], -5.0, 5.0, &mut rng);
        let (out, argmax) = max_pool2d(&input, &PoolSpec::new(2, 2)).unwrap();
        let max_in = input.max().unwrap();
        for (&o, &idx) in out.as_slice().iter().zip(&argmax) {
            prop_assert!(o <= max_in);
            // the argmax index really holds the reported value
            prop_assert_eq!(o, input.as_slice()[idx]);
        }
    }

    #[test]
    fn threaded_matmul_matches_reference(
        m in kernel_dim(), k in kernel_dim(), n in kernel_dim(),
        threads in thread_count(), seed in any::<u64>()
    ) {
        let mut rng = XorShiftRng::new(seed);
        let mut a = Tensor::uniform(&[m, k], -1.0, 1.0, &mut rng);
        // plant zeros so the skip path is exercised too
        for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
            if i % 5 == 0 {
                *v = 0.0;
            }
        }
        let b = Tensor::uniform(&[k, n], -1.0, 1.0, &mut rng);
        let reference = matmul_layout_reference(&a, &b, MatmulLayout::Plain).unwrap();
        let got = matmul_layout_threaded(&a, &b, MatmulLayout::Plain, threads).unwrap();
        for (&x, &y) in got.as_slice().iter().zip(reference.as_slice()) {
            prop_assert!((x - y).abs() < 1e-5, "{} vs {}", x, y);
        }
    }

    #[test]
    fn threaded_transpose_a_matches_reference(
        m in kernel_dim(), k in kernel_dim(), n in kernel_dim(),
        threads in thread_count(), seed in any::<u64>()
    ) {
        let mut rng = XorShiftRng::new(seed);
        let a = Tensor::uniform(&[k, m], -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(&[k, n], -1.0, 1.0, &mut rng);
        let reference = matmul_layout_reference(&a, &b, MatmulLayout::TransposeA).unwrap();
        let got = matmul_layout_threaded(&a, &b, MatmulLayout::TransposeA, threads).unwrap();
        for (&x, &y) in got.as_slice().iter().zip(reference.as_slice()) {
            prop_assert!((x - y).abs() < 1e-5, "{} vs {}", x, y);
        }
    }

    #[test]
    fn threaded_transpose_b_matches_reference(
        m in kernel_dim(), k in kernel_dim(), n in kernel_dim(),
        threads in thread_count(), seed in any::<u64>()
    ) {
        let mut rng = XorShiftRng::new(seed);
        let mut a = Tensor::uniform(&[m, k], -1.0, 1.0, &mut rng);
        // zeros exercise the new zero-skip fast path of the dense kernel
        for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
            if i % 3 == 0 {
                *v = 0.0;
            }
        }
        let b = Tensor::uniform(&[n, k], -1.0, 1.0, &mut rng);
        let reference = matmul_layout_reference(&a, &b, MatmulLayout::TransposeB).unwrap();
        let got = matmul_layout_threaded(&a, &b, MatmulLayout::TransposeB, threads).unwrap();
        for (&x, &y) in got.as_slice().iter().zip(reference.as_slice()) {
            prop_assert!((x - y).abs() < 1e-5, "{} vs {}", x, y);
        }
    }

    #[test]
    fn scratch_conv_matches_plain(
        c_in in 1usize..4, c_out in 1usize..4, h in 4usize..9, seed in any::<u64>()
    ) {
        let mut rng = XorShiftRng::new(seed);
        let spec = Conv2dSpec::new(c_in, c_out, 3, 1, 1);
        let input = Tensor::uniform(&[c_in, h, h], -1.0, 1.0, &mut rng);
        let w = Tensor::uniform(&[c_out, c_in, 3, 3], -1.0, 1.0, &mut rng);
        let bias = Tensor::uniform(&[c_out], -0.5, 0.5, &mut rng);
        let plain = conv2d_im2col(&input, &w, Some(&bias), &spec).unwrap();
        let mut scratch = ConvScratch::new();
        // run twice: second call reuses warm buffers
        for _ in 0..2 {
            let fast = conv2d_im2col_scratch(&input, &w, Some(&bias), &spec, &mut scratch).unwrap();
            prop_assert_eq!(fast.as_slice(), plain.as_slice());
        }
    }

    #[test]
    fn masked_conv_matches_zeroed_plain(
        c_in in 2usize..5, c_out in 2usize..6, h in 4usize..8, seed in any::<u64>()
    ) {
        let mut rng = XorShiftRng::new(seed);
        let spec = Conv2dSpec::new(c_in, c_out, 3, 1, 1);
        let mut input = Tensor::uniform(&[c_in, h, h], -1.0, 1.0, &mut rng);
        let w = Tensor::uniform(&[c_out, c_in, 3, 3], -1.0, 1.0, &mut rng);
        let bias = Tensor::uniform(&[c_out], -0.5, 0.5, &mut rng);
        // random kept sets (never empty on the input side contract-wise,
        // empty is allowed and tested in unit tests)
        let kept_in: Vec<usize> = (0..c_in).filter(|&c| c % 2 == 0 || c == c_in - 1).collect();
        let kept_out: Vec<usize> = (0..c_out).filter(|&c| c % 2 == 1 || c == 0).collect();
        // the engine contract: pruned input channels hold exact zeros
        {
            let plane = h * h;
            let iv = input.as_mut_slice();
            for c in 0..c_in {
                if !kept_in.contains(&c) {
                    for v in &mut iv[c * plane..(c + 1) * plane] {
                        *v = 0.0;
                    }
                }
            }
        }
        let dense = conv2d_im2col(&input, &w, Some(&bias), &spec).unwrap();
        let mut scratch = ConvScratch::new();
        let masked =
            conv2d_masked(&input, &w, Some(&bias), &spec, &kept_out, &kept_in, &mut scratch)
                .unwrap();
        let plane = dense.dims()[1] * dense.dims()[2];
        for oc in 0..c_out {
            let m = &masked.as_slice()[oc * plane..(oc + 1) * plane];
            if kept_out.contains(&oc) {
                let d = &dense.as_slice()[oc * plane..(oc + 1) * plane];
                for (&x, &y) in m.iter().zip(d) {
                    prop_assert!((x - y).abs() < 1e-5, "{} vs {}", x, y);
                }
            } else {
                prop_assert!(m.iter().all(|&v| v == 0.0));
            }
        }
    }

    #[test]
    fn top_k_returns_sorted_by_value(n in 1usize..30, seed in any::<u64>()) {
        let mut rng = XorShiftRng::new(seed);
        let t = Tensor::uniform(&[n], -1.0, 1.0, &mut rng);
        let k = (n / 2).max(1);
        let top = t.top_k(k);
        prop_assert_eq!(top.len(), k);
        for w in top.windows(2) {
            prop_assert!(t.as_slice()[w[0]] >= t.as_slice()[w[1]]);
        }
        // every non-selected element is <= the smallest selected one
        let min_sel = t.as_slice()[*top.last().unwrap()];
        for (i, &v) in t.as_slice().iter().enumerate() {
            if !top.contains(&i) {
                prop_assert!(v <= min_sel);
            }
        }
    }
}
