//! Accuracy-gated per-layer N:M sparsity selection — the profile-side half
//! of the hybrid-sparse execution tier.
//!
//! The compiled-plan engine can compress any conv/dense kernel to an N:M
//! pattern *within* the kept rows/columns of a user's prune mask
//! ([`CompiledPlan::compile_sparse_layers`]). Which layers tolerate that
//! compression is a per-network question, and this module answers it with
//! the statistics the cloud already has: class-selectivity summaries of the
//! firing-rate profiles. Layers whose units fire indiscriminately across
//! classes compute general features, and magnitude-based N:M selection
//! perturbs them least; highly class-selective layers concentrate their
//! discriminative mass in few weights and are tried last. The gate walks
//! candidates in that order, flips each to the requested pattern, and keeps
//! the flip only while top-1 agreement with the dense f32 reference stays
//! at or above a configurable floor.

use crate::firing::FiringRates;
use crate::selectivity::layer_selectivity;
use capnn_data::Dataset;
use capnn_nn::{CompiledPlan, Layer, Network, NnError, Precision, PruneMask, Sparsity};
use capnn_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// Tuning knobs for [`gate_nm_plan`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NmGateConfig {
    /// Pattern to try on each candidate layer. [`Sparsity::Dense`] makes
    /// the gate a no-op (useful for sweep baselines).
    pub pattern: Sparsity,
    /// Minimum top-1 agreement (fraction, in `[0, 1]`) a candidate plan
    /// must keep against the dense f32 reference for a flip to stick.
    pub min_agreement: f32,
    /// Precision the candidate plans are compiled and evaluated at. Gate
    /// at the precision you will serve at: int8 quantization noise and
    /// N:M truncation interact, so gating at f32 and serving int8 would
    /// overstate the achievable agreement.
    pub precision: Precision,
}

impl Default for NmGateConfig {
    fn default() -> Self {
        Self {
            pattern: Sparsity::NM(2, 4),
            min_agreement: 0.99,
            precision: Precision::F32,
        }
    }
}

/// Outcome of [`gate_nm_plan`]: the per-layer sparsity vector to hand to
/// [`CompiledPlan::compile_sparse_layers`], plus provenance for telemetry
/// and benchmark reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NmGateReport {
    /// One tier per network layer; non-GEMM layers stay
    /// [`Sparsity::Dense`].
    pub layers: Vec<Sparsity>,
    /// GEMM layer indices the gate managed to flip, in acceptance order.
    pub enabled: Vec<usize>,
    /// All GEMM layer indices considered, in trial order (ascending
    /// class selectivity).
    pub candidates: Vec<usize>,
    /// Top-1 agreement of the returned configuration against the dense
    /// f32 reference over the gating dataset.
    pub agreement: f32,
    /// Pattern the gate was run with.
    pub pattern: Sparsity,
}

impl NmGateReport {
    /// Fraction of candidate GEMM layers running the sparse tier.
    pub fn enabled_fraction(&self) -> f32 {
        if self.candidates.is_empty() {
            0.0
        } else {
            self.enabled.len() as f32 / self.candidates.len() as f32
        }
    }
}

/// GEMM (conv/dense) layer indices ordered by ascending class selectivity:
/// layers absent from `rates` (outside the profiled tail — early,
/// general-feature layers) come first, then profiled layers by rising
/// `mean_index`, ties broken by layer position.
pub fn nm_candidate_order(net: &Network, rates: &FiringRates) -> Vec<usize> {
    let sel = layer_selectivity(rates);
    let selectivity_of = |li: usize| sel.iter().find(|s| s.layer == li).map(|s| s.mean_index);
    let mut gemm: Vec<usize> = net
        .layers()
        .iter()
        .enumerate()
        .filter(|(_, l)| matches!(l, Layer::Conv2d(_) | Layer::Dense(_)))
        .map(|(i, _)| i)
        .collect();
    gemm.sort_by(|&a, &b| {
        let ka = selectivity_of(a).unwrap_or(f32::NEG_INFINITY);
        let kb = selectivity_of(b).unwrap_or(f32::NEG_INFINITY);
        ka.partial_cmp(&kb)
            .unwrap_or(Ordering::Equal)
            .then(a.cmp(&b))
    });
    gemm
}

/// Greedily enables `config.pattern` on GEMM layers of `net` (under
/// `mask`), in [`nm_candidate_order`], keeping each flip only while top-1
/// agreement with the dense f32 reference stays at or above
/// `config.min_agreement` over `dataset`.
///
/// The returned [`NmGateReport::agreement`] always describes the returned
/// `layers` vector (measured, not assumed — an all-dense result at int8
/// precision reports the int8 baseline agreement, not 1.0).
///
/// # Errors
///
/// Returns [`NnError::Config`] if `dataset` is empty (agreement over zero
/// samples would vacuously accept every layer), if the pattern is
/// degenerate, or if plan compilation fails for `net` + `mask`.
pub fn gate_nm_plan(
    net: &Network,
    mask: &PruneMask,
    rates: &FiringRates,
    dataset: &Dataset,
    config: &NmGateConfig,
) -> Result<NmGateReport, NnError> {
    config.pattern.validate()?;
    if dataset.is_empty() {
        return Err(NnError::Config(
            "N:M gate needs a non-empty dataset: agreement over zero samples \
             would vacuously accept every layer"
                .into(),
        ));
    }
    let inputs: Vec<Tensor> = dataset.samples().iter().map(|(x, _)| x.clone()).collect();
    let reference = CompiledPlan::compile(net, mask)?;
    let ref_top1: Vec<Option<usize>> = reference
        .forward_batch(&inputs)?
        .iter()
        .map(Tensor::argmax)
        .collect();

    let candidates = nm_candidate_order(net, rates);
    let mut layers = vec![Sparsity::Dense; net.len()];
    let mut enabled = Vec::new();
    // Agreement of the current `layers` state. All-dense f32 matches the
    // reference by construction; any other precision is measured below.
    let mut agreement = if config.precision == Precision::F32 {
        1.0
    } else {
        let base = CompiledPlan::compile_with_precision(net, mask, config.precision)?;
        top1_agreement(&base, &inputs, &ref_top1)?
    };
    if config.pattern == Sparsity::Dense {
        return Ok(NmGateReport {
            layers,
            enabled,
            candidates,
            agreement,
            pattern: config.pattern,
        });
    }
    for &li in &candidates {
        layers[li] = config.pattern;
        let plan = CompiledPlan::compile_sparse_layers(net, mask, config.precision, &layers, None)?;
        let agree = top1_agreement(&plan, &inputs, &ref_top1)?;
        if agree >= config.min_agreement {
            enabled.push(li);
            agreement = agree;
        } else {
            layers[li] = Sparsity::Dense;
        }
    }
    Ok(NmGateReport {
        layers,
        enabled,
        candidates,
        agreement,
        pattern: config.pattern,
    })
}

fn top1_agreement(
    plan: &CompiledPlan,
    inputs: &[Tensor],
    ref_top1: &[Option<usize>],
) -> Result<f32, NnError> {
    let outs = plan.forward_batch(inputs)?;
    let matches = outs
        .iter()
        .zip(ref_top1)
        .filter(|(out, want)| out.argmax() == **want)
        .count();
    Ok(matches as f32 / ref_top1.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firing::{FiringRateProfiler, LayerRates};
    use capnn_nn::NetworkBuilder;

    fn net() -> Network {
        NetworkBuilder::cnn(&[1, 8, 8], &[(6, 1)], &[16], 4, 11)
            .build()
            .unwrap()
    }

    fn dataset(n: usize) -> Dataset {
        let mut rng = capnn_tensor::XorShiftRng::new(5);
        let samples = (0..n)
            .map(|i| {
                let x = Tensor::uniform(&[1, 8, 8], -1.0, 1.0, &mut rng);
                (x, i % 4)
            })
            .collect();
        Dataset::new(samples, 4).unwrap()
    }

    fn gate_inputs() -> (Network, PruneMask, FiringRates, Dataset) {
        let n = net();
        let mask = PruneMask::all_kept(&n);
        let ds = dataset(24);
        let rates = FiringRateProfiler::new(4).profile(&n, &ds).unwrap();
        (n, mask, rates, ds)
    }

    #[test]
    fn gate_returns_spanning_layers_and_meets_floor() {
        let (n, mask, rates, ds) = gate_inputs();
        let config = NmGateConfig {
            min_agreement: 0.5,
            ..NmGateConfig::default()
        };
        let report = gate_nm_plan(&n, &mask, &rates, &ds, &config).unwrap();
        assert_eq!(report.layers.len(), n.len());
        assert!(report.agreement >= config.min_agreement);
        assert!(!report.candidates.is_empty());
        for &li in &report.enabled {
            assert_eq!(report.layers[li], config.pattern);
            assert!(report.candidates.contains(&li));
        }
        for (li, sp) in report.layers.iter().enumerate() {
            if !report.enabled.contains(&li) {
                assert_eq!(*sp, Sparsity::Dense);
            }
        }
        // The gated vector must actually compile.
        CompiledPlan::compile_sparse_layers(&n, &mask, config.precision, &report.layers, None)
            .unwrap();
    }

    #[test]
    fn impossible_floor_keeps_everything_dense() {
        let (n, mask, rates, ds) = gate_inputs();
        let config = NmGateConfig {
            min_agreement: 1.1,
            ..NmGateConfig::default()
        };
        let report = gate_nm_plan(&n, &mask, &rates, &ds, &config).unwrap();
        assert!(report.enabled.is_empty());
        assert!(report.layers.iter().all(|sp| *sp == Sparsity::Dense));
        assert_eq!(report.agreement, 1.0);
        assert_eq!(report.enabled_fraction(), 0.0);
    }

    #[test]
    fn dense_pattern_is_a_no_op() {
        let (n, mask, rates, ds) = gate_inputs();
        let config = NmGateConfig {
            pattern: Sparsity::Dense,
            ..NmGateConfig::default()
        };
        let report = gate_nm_plan(&n, &mask, &rates, &ds, &config).unwrap();
        assert!(report.enabled.is_empty());
        assert!(report.layers.iter().all(|sp| *sp == Sparsity::Dense));
        assert_eq!(report.agreement, 1.0);
    }

    #[test]
    fn empty_dataset_and_degenerate_pattern_rejected() {
        let (n, mask, rates, _) = gate_inputs();
        let empty = Dataset::new(Vec::new(), 4).unwrap();
        assert!(gate_nm_plan(&n, &mask, &rates, &empty, &NmGateConfig::default()).is_err());
        let ds = dataset(4);
        let bad = NmGateConfig {
            pattern: Sparsity::NM(4, 4),
            ..NmGateConfig::default()
        };
        assert!(gate_nm_plan(&n, &mask, &rates, &ds, &bad).is_err());
    }

    #[test]
    fn candidate_order_prefers_least_selective_profiled_layers() {
        let n = net(); // conv at 0, dense at 4 and 6
        let gemm: Vec<usize> = n
            .layers()
            .iter()
            .enumerate()
            .filter(|(_, l)| matches!(l, Layer::Conv2d(_) | Layer::Dense(_)))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(gemm.len(), 3);
        // Profile only the two dense layers; make the LAST one fire
        // uniformly (unselective) and the middle one one-hot (selective).
        let uniform = LayerRates {
            layer: gemm[2],
            rates: Tensor::from_vec(vec![0.5; 8], &[2, 4]).unwrap(),
        };
        let onehot = LayerRates {
            layer: gemm[1],
            rates: Tensor::from_vec(vec![0.9, 0.0, 0.0, 0.0, 0.0, 0.9, 0.0, 0.0], &[2, 4]).unwrap(),
        };
        let rates = FiringRates::from_layers(vec![onehot, uniform], 4);
        let order = nm_candidate_order(&n, &rates);
        // Unprofiled conv first, then the uniform (unselective) dense,
        // then the one-hot (selective) dense.
        assert_eq!(order, vec![gemm[0], gemm[2], gemm[1]]);
    }

    #[test]
    fn int8_gate_reports_measured_baseline_agreement() {
        let (n, mask, rates, ds) = gate_inputs();
        let config = NmGateConfig {
            precision: Precision::Int8,
            min_agreement: 1.1, // force all-dense so agreement is the baseline
            ..NmGateConfig::default()
        };
        let report = gate_nm_plan(&n, &mask, &rates, &ds, &config).unwrap();
        assert!(report.enabled.is_empty());
        assert!((0.0..=1.0).contains(&report.agreement));
    }
}
