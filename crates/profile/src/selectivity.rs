//! Class-selectivity analysis of firing-rate profiles.
//!
//! The paper prunes only the *last* layers because "earlier layers are
//! typically not class-specific and extract more general features"
//! (footnote 3). This module quantifies that claim on a profiled network:
//! per-unit selectivity indices and per-layer summaries that the
//! `analysis_selectivity` binary turns into evidence for the `l_start`
//! choice.

use crate::firing::{FiringRates, LayerRates};
use serde::{Deserialize, Serialize};

/// Per-unit selectivity measures derived from one row of a firing-rate
/// matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnitSelectivity {
    /// `(max − mean) / (max + mean)` over classes; 0 = uniform, → 1 =
    /// responds to a single class. 0 for silent units.
    pub index: f32,
    /// Shannon entropy (bits) of the normalized rate profile; log2(C) =
    /// uniform, 0 = single class.
    pub entropy_bits: f32,
    /// Highest per-class rate.
    pub max_rate: f32,
    /// Mean rate over classes.
    pub mean_rate: f32,
}

/// Computes the selectivity of unit `n` in a layer's rate matrix.
///
/// # Panics
///
/// Panics if `n` is out of range.
pub fn unit_selectivity(rates: &LayerRates, n: usize) -> UnitSelectivity {
    let c = rates.classes();
    let row: Vec<f32> = (0..c).map(|k| rates.rate(n, k)).collect();
    let max = row.iter().cloned().fold(0.0f32, f32::max);
    let sum: f32 = row.iter().sum();
    let mean = sum / c.max(1) as f32;
    let index = if max + mean > 0.0 {
        (max - mean) / (max + mean)
    } else {
        0.0
    };
    let entropy_bits = if sum > 0.0 {
        row.iter()
            .filter(|&&r| r > 0.0)
            .map(|&r| {
                let p = r / sum;
                -p * p.log2()
            })
            .sum()
    } else {
        0.0
    };
    UnitSelectivity {
        index,
        entropy_bits,
        max_rate: max,
        mean_rate: mean,
    }
}

/// Per-layer selectivity summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerSelectivity {
    /// Layer index in the network.
    pub layer: usize,
    /// Number of units summarized.
    pub units: usize,
    /// Mean selectivity index over units.
    pub mean_index: f32,
    /// Mean profile entropy (bits) over units.
    pub mean_entropy_bits: f32,
    /// Fraction of units that are almost silent (max rate < 0.05) — the
    /// "ineffectual for everything" pool class-unaware pruning also finds.
    pub silent_fraction: f32,
}

/// Summarizes every profiled layer.
///
/// # Examples
///
/// ```
/// use capnn_profile::{layer_selectivity, FiringRates, LayerRates};
/// use capnn_tensor::Tensor;
///
/// let lr = LayerRates {
///     layer: 0,
///     rates: Tensor::from_vec(vec![0.9, 0.0, 0.45, 0.45], &[2, 2]).unwrap(),
/// };
/// let summary = layer_selectivity(&FiringRates::from_layers(vec![lr], 2));
/// assert_eq!(summary.len(), 1);
/// assert!(summary[0].mean_index > 0.0);
/// ```
pub fn layer_selectivity(rates: &FiringRates) -> Vec<LayerSelectivity> {
    rates
        .layers()
        .iter()
        .map(|lr| {
            let units = lr.units();
            let mut sum_index = 0.0f32;
            let mut sum_entropy = 0.0f32;
            let mut silent = 0usize;
            for n in 0..units {
                let s = unit_selectivity(lr, n);
                sum_index += s.index;
                sum_entropy += s.entropy_bits;
                if s.max_rate < 0.05 {
                    silent += 1;
                }
            }
            let denom = units.max(1) as f32;
            LayerSelectivity {
                layer: lr.layer,
                units,
                mean_index: sum_index / denom,
                mean_entropy_bits: sum_entropy / denom,
                silent_fraction: silent as f32 / denom,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use capnn_tensor::Tensor;

    fn layer(rates: Vec<f32>, units: usize, classes: usize) -> LayerRates {
        LayerRates {
            layer: 0,
            rates: Tensor::from_vec(rates, &[units, classes]).unwrap(),
        }
    }

    #[test]
    fn one_hot_unit_is_maximally_selective() {
        let lr = layer(vec![0.9, 0.0, 0.0, 0.0], 1, 4);
        let s = unit_selectivity(&lr, 0);
        assert!(s.index > 0.5, "index {}", s.index);
        assert!(s.entropy_bits < 1e-6);
        assert_eq!(s.max_rate, 0.9);
    }

    #[test]
    fn uniform_unit_has_zero_index_max_entropy() {
        let lr = layer(vec![0.5; 4], 1, 4);
        let s = unit_selectivity(&lr, 0);
        assert!(s.index.abs() < 1e-6);
        assert!((s.entropy_bits - 2.0).abs() < 1e-5);
    }

    #[test]
    fn silent_unit_is_neutral() {
        let lr = layer(vec![0.0; 3], 1, 3);
        let s = unit_selectivity(&lr, 0);
        assert_eq!(s.index, 0.0);
        assert_eq!(s.entropy_bits, 0.0);
        assert_eq!(s.max_rate, 0.0);
    }

    #[test]
    fn layer_summary_aggregates() {
        let lr = layer(
            vec![
                0.9, 0.0, // selective
                0.4, 0.4, // uniform
                0.0, 0.0, // silent
            ],
            3,
            2,
        );
        let summary = layer_selectivity(&FiringRates::from_layers(vec![lr], 2));
        assert_eq!(summary.len(), 1);
        let s = &summary[0];
        assert_eq!(s.units, 3);
        assert!((s.silent_fraction - 1.0 / 3.0).abs() < 1e-6);
        assert!(s.mean_index > 0.0);
        assert!(s.mean_entropy_bits < 1.0);
    }

    #[test]
    fn selectivity_index_is_bounded() {
        for row in [vec![1.0, 0.0], vec![0.3, 0.7], vec![0.01, 0.02]] {
            let lr = layer(row, 1, 2);
            let s = unit_selectivity(&lr, 0);
            assert!((0.0..=1.0).contains(&s.index), "index {}", s.index);
        }
    }
}
