//! Confusion-matrix computation (step 1 of CAP'NN-M).

use capnn_data::Dataset;
use capnn_nn::{Engine, InferenceRequest, Network, NnError, PruneMask};
use capnn_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A row-normalized confusion matrix: entry `(k, c)` is the fraction of
/// inputs of true class `k` that the network predicted as class `c`.
///
/// # Examples
///
/// ```
/// use capnn_profile::ConfusionMatrix;
/// use capnn_data::{VectorClusters, VectorClustersConfig};
/// use capnn_nn::NetworkBuilder;
///
/// let gen = VectorClusters::new(VectorClustersConfig::easy(3, 4))?;
/// let net = NetworkBuilder::mlp(&[4, 8, 3], 1).build().unwrap();
/// let cm = ConfusionMatrix::measure(&net, &gen.generate(5, 1)).unwrap();
/// assert_eq!(cm.num_classes(), 3);
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// `[classes × classes]` fractions, rows sum to 1 for classes with
    /// samples.
    fractions: Tensor,
}

impl ConfusionMatrix {
    /// Runs `net` over `dataset` and tallies top-1 predictions.
    ///
    /// # Errors
    ///
    /// Returns an error if a sample's shape does not match the network.
    pub fn measure(net: &Network, dataset: &Dataset) -> Result<Self, NnError> {
        Self::measure_masked(net, dataset, &PruneMask::all_kept(net))
    }

    /// Like [`ConfusionMatrix::measure`] but under a prune mask.
    ///
    /// # Errors
    ///
    /// Returns an error if a sample's shape does not match the network.
    pub fn measure_masked(
        net: &Network,
        dataset: &Dataset,
        mask: &PruneMask,
    ) -> Result<Self, NnError> {
        let c = dataset.num_classes();
        let mut counts = vec![0u32; c * c];
        let mut totals = vec![0u32; c];
        // One engine for the whole sweep: the conv scratch persists across
        // samples, so steady-state measurement is allocation-free.
        let mut engine = Engine::new(net);
        for (x, label) in dataset.samples() {
            let pred = engine
                .run(InferenceRequest::single(x).masked(mask))?
                .into_single()?
                .argmax()
                .unwrap_or(0);
            counts[label * c + pred] += 1;
            totals[*label] += 1;
        }
        let mut fractions = Tensor::zeros(&[c, c]);
        let fv = fractions.as_mut_slice();
        for k in 0..c {
            if totals[k] > 0 {
                for j in 0..c {
                    fv[k * c + j] = counts[k * c + j] as f32 / totals[k] as f32;
                }
            }
        }
        Ok(Self { fractions })
    }

    /// Creates a matrix from raw fractions (used by tests and synthetic
    /// setups).
    ///
    /// # Errors
    ///
    /// Returns an error string if `fractions` is not square.
    pub fn from_fractions(fractions: Tensor) -> Result<Self, String> {
        if fractions.shape().rank() != 2 || fractions.dims()[0] != fractions.dims()[1] {
            return Err(format!(
                "confusion matrix must be square, got {}",
                fractions.shape()
            ));
        }
        Ok(Self { fractions })
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.fractions.dims()[0]
    }

    /// Fraction of class-`k` inputs predicted as class `c`.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `c` is out of range.
    pub fn fraction(&self, k: usize, c: usize) -> f32 {
        self.fractions.get(&[k, c]).expect("indices in range")
    }

    /// Top-1 accuracy of class `k` (the diagonal entry).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn class_accuracy(&self, k: usize) -> f32 {
        self.fraction(k, k)
    }

    /// The `n` classes most confused with `k` — the off-diagonal entries of
    /// row `k` with the largest trigger fractions, in descending order.
    /// This is step 1 of CAP'NN-M (the paper uses `n = 5`, matching top-5
    /// accuracy).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn top_confusing(&self, k: usize, n: usize) -> Vec<usize> {
        let c = self.num_classes();
        let row = self.fractions.row(k);
        let mut idx: Vec<usize> = (0..c).filter(|&j| j != k).collect();
        idx.sort_by(|&a, &b| {
            row.as_slice()[b]
                .partial_cmp(&row.as_slice()[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        idx.truncate(n);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capnn_data::{VectorClusters, VectorClustersConfig};
    use capnn_nn::{NetworkBuilder, Trainer, TrainerConfig};

    #[test]
    fn rows_sum_to_one() {
        let gen = VectorClusters::new(VectorClustersConfig::easy(3, 4)).unwrap();
        let net = NetworkBuilder::mlp(&[4, 8, 3], 1).build().unwrap();
        let cm = ConfusionMatrix::measure(&net, &gen.generate(6, 1)).unwrap();
        for k in 0..3 {
            let sum: f32 = (0..3).map(|c| cm.fraction(k, c)).sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn trained_network_is_diagonal_dominant() {
        let gen = VectorClusters::new(VectorClustersConfig::easy(3, 4)).unwrap();
        let mut net = NetworkBuilder::mlp(&[4, 12, 3], 2).build().unwrap();
        let cfg = TrainerConfig {
            epochs: 10,
            ..TrainerConfig::default()
        };
        Trainer::new(cfg, 1)
            .fit(&mut net, gen.generate(30, 1).samples())
            .unwrap();
        let cm = ConfusionMatrix::measure(&net, &gen.generate(20, 2)).unwrap();
        for k in 0..3 {
            assert!(
                cm.class_accuracy(k) > 0.7,
                "class {k}: {}",
                cm.class_accuracy(k)
            );
        }
    }

    #[test]
    fn top_confusing_excludes_self_and_orders() {
        let f = Tensor::from_vec(
            vec![
                0.6, 0.3, 0.1, 0.0, //
                0.1, 0.9, 0.0, 0.0, //
                0.0, 0.2, 0.5, 0.3, //
                0.0, 0.0, 0.0, 1.0,
            ],
            &[4, 4],
        )
        .unwrap();
        let cm = ConfusionMatrix::from_fractions(f).unwrap();
        assert_eq!(cm.top_confusing(0, 2), vec![1, 2]);
        assert_eq!(cm.top_confusing(2, 2), vec![3, 1]);
        assert!(!cm.top_confusing(3, 3).contains(&3));
        assert_eq!(cm.top_confusing(0, 99).len(), 3);
    }

    #[test]
    fn from_fractions_requires_square() {
        assert!(ConfusionMatrix::from_fractions(Tensor::zeros(&[2, 3])).is_err());
        assert!(ConfusionMatrix::from_fractions(Tensor::zeros(&[4])).is_err());
        assert!(ConfusionMatrix::from_fractions(Tensor::zeros(&[3, 3])).is_ok());
    }

    #[test]
    fn masked_measure_differs_when_units_pruned() {
        let gen = VectorClusters::new(VectorClustersConfig::easy(3, 4)).unwrap();
        let mut net = NetworkBuilder::mlp(&[4, 10, 3], 3).build().unwrap();
        let cfg = TrainerConfig {
            epochs: 8,
            ..TrainerConfig::default()
        };
        Trainer::new(cfg, 1)
            .fit(&mut net, gen.generate(20, 1).samples())
            .unwrap();
        let eval = gen.generate(15, 2);
        let full = ConfusionMatrix::measure(&net, &eval).unwrap();
        let mut mask = capnn_nn::PruneMask::all_kept(&net);
        mask.set_layer(0, vec![false; 10]).unwrap();
        let gutted = ConfusionMatrix::measure_masked(&net, &eval, &mask).unwrap();
        let full_acc: f32 = (0..3).map(|k| full.class_accuracy(k)).sum();
        let gutted_acc: f32 = (0..3).map(|k| gutted.class_accuracy(k)).sum();
        assert!(gutted_acc < full_acc);
    }
}
