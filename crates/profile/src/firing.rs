//! Class-specific firing-rate measurement.

use capnn_data::Dataset;
use capnn_nn::{Network, NnError};
use capnn_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Firing rates of one prunable layer: a `[units × classes]` matrix `F`
/// where `F(n, c)` is how often unit `n` fires for inputs of class `c`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerRates {
    /// Index of the layer within the profiled network.
    pub layer: usize,
    /// `[units × classes]` firing-rate matrix, entries in `[0, 1]`.
    pub rates: Tensor,
}

impl LayerRates {
    /// Number of prunable units in this layer.
    pub fn units(&self) -> usize {
        self.rates.dims()[0]
    }

    /// Number of classes profiled.
    pub fn classes(&self) -> usize {
        self.rates.dims()[1]
    }

    /// Firing rate of unit `n` for class `c`.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `c` is out of range.
    pub fn rate(&self, n: usize, c: usize) -> f32 {
        self.rates.get(&[n, c]).expect("index validated by caller")
    }

    /// Effective firing rate of unit `n` under user classes and weights:
    /// `Σ_k w_k · F(n, k)` (the quantity thresholded by CAP'NN-W).
    ///
    /// # Panics
    ///
    /// Panics if `classes` and `weights` have different lengths or contain
    /// out-of-range class ids.
    pub fn effective_rate(&self, n: usize, classes: &[usize], weights: &[f32]) -> f32 {
        assert_eq!(classes.len(), weights.len(), "classes/weights mismatch");
        classes
            .iter()
            .zip(weights)
            .map(|(&k, &w)| w * self.rate(n, k))
            .sum()
    }
}

/// Firing rates for every profiled layer of a network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FiringRates {
    layers: Vec<LayerRates>,
    num_classes: usize,
}

impl FiringRates {
    /// Creates the container from per-layer matrices. Intended for
    /// deserialized or synthetic rates; normally produced by
    /// [`FiringRateProfiler::profile`].
    pub fn from_layers(layers: Vec<LayerRates>, num_classes: usize) -> Self {
        Self {
            layers,
            num_classes,
        }
    }

    /// Per-layer rate matrices, ordered by layer index.
    pub fn layers(&self) -> &[LayerRates] {
        &self.layers
    }

    /// Mutable per-layer rate matrices (CAP'NN-M zeroes miseffectual
    /// entries).
    pub fn layers_mut(&mut self) -> &mut [LayerRates] {
        &mut self.layers
    }

    /// Number of classes profiled.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The rates of the network layer with index `layer`, if profiled.
    pub fn for_layer(&self, layer: usize) -> Option<&LayerRates> {
        self.layers.iter().find(|l| l.layer == layer)
    }

    /// Raw storage footprint of the rate matrices at `bits_per_rate` bits
    /// per entry, in bytes (the paper's §V-C memory-overhead accounting).
    pub fn memory_bytes(&self, bits_per_rate: u32) -> u64 {
        let entries: u64 = self.layers.iter().map(|l| l.rates.len() as u64).sum();
        (entries * bits_per_rate as u64).div_ceil(8)
    }
}

/// Measures class-specific firing rates over a balanced profiling dataset.
#[derive(Debug, Clone, Copy)]
pub struct FiringRateProfiler {
    /// Number of trailing prunable layers to profile (the paper profiles the
    /// prunable tail; earlier layers are never pruned).
    tail: usize,
}

impl FiringRateProfiler {
    /// Creates a profiler covering the last `tail` prunable layers.
    pub fn new(tail: usize) -> Self {
        Self { tail }
    }

    /// Runs `net` over `dataset` and measures firing rates.
    ///
    /// A unit "fires" when its pre-ReLU output is strictly positive (our
    /// networks apply ReLU right after every prunable layer, so this equals
    /// post-ReLU non-zero-ness). Dense units contribute 0/1 per sample;
    /// conv channels contribute the fraction of positive elements in their
    /// feature map.
    ///
    /// Samples are sharded across the worker pool
    /// ([`capnn_tensor::parallel`]); each worker accumulates into private
    /// sum matrices which are merged in shard order, so results are
    /// deterministic for a given thread count.
    ///
    /// # Errors
    ///
    /// Returns an error if a sample's shape does not match the network.
    pub fn profile(&self, net: &Network, dataset: &Dataset) -> Result<FiringRates, NnError> {
        let tail_layers = net.prunable_tail(self.tail);
        let num_classes = dataset.num_classes();
        let shapes = net.layer_shapes()?;
        let zero_sums = || -> Vec<Tensor> {
            tail_layers
                .iter()
                .map(|&li| {
                    let units = net.layers()[li].unit_count().unwrap_or(0);
                    Tensor::zeros(&[units, num_classes])
                })
                .collect()
        };
        let samples = dataset.samples();
        let threads = capnn_tensor::parallel::max_threads();
        let min_items = capnn_tensor::parallel::min_items_per_thread(net.mac_count_from(0)?);
        let partials =
            capnn_tensor::parallel::parallel_reduce(samples.len(), threads, min_items, |range| {
                let mut sums = zero_sums();
                let mut counts = vec![0usize; num_classes];
                for (x, label) in &samples[range] {
                    counts[*label] += 1;
                    let trace = net.forward_trace(x)?;
                    for (t, &li) in tail_layers.iter().enumerate() {
                        let act = &trace[li + 1];
                        accumulate_firing(&mut sums[t], act, *label, &shapes[li + 1]);
                    }
                }
                Ok::<_, NnError>((sums, counts))
            });
        let mut sums = zero_sums();
        let mut counts = vec![0usize; num_classes];
        for partial in partials {
            let (psums, pcounts) = partial?;
            for (sum, psum) in sums.iter_mut().zip(&psums) {
                for (s, &p) in sum.as_mut_slice().iter_mut().zip(psum.as_slice()) {
                    *s += p;
                }
            }
            for (c, &p) in counts.iter_mut().zip(&pcounts) {
                *c += p;
            }
        }
        let layers = tail_layers
            .iter()
            .zip(sums)
            .map(|(&li, mut sum)| {
                // normalize per class by sample count
                let dims = sum.dims().to_vec();
                let sv = sum.as_mut_slice();
                for n in 0..dims[0] {
                    for (c, &cnt) in counts.iter().enumerate() {
                        if cnt > 0 {
                            sv[n * dims[1] + c] /= cnt as f32;
                        }
                    }
                }
                LayerRates {
                    layer: li,
                    rates: sum,
                }
            })
            .collect();
        Ok(FiringRates {
            layers,
            num_classes,
        })
    }
}

/// Adds one sample's firing indicator for each unit of a layer activation.
fn accumulate_firing(sum: &mut Tensor, act: &Tensor, class: usize, shape: &[usize]) {
    let classes = sum.dims()[1];
    let sv = sum.as_mut_slice();
    match shape.len() {
        1 => {
            for (n, &v) in act.as_slice().iter().enumerate() {
                if v > 0.0 {
                    sv[n * classes + class] += 1.0;
                }
            }
        }
        3 => {
            let plane = shape[1] * shape[2];
            let av = act.as_slice();
            for n in 0..shape[0] {
                let fired = av[n * plane..(n + 1) * plane]
                    .iter()
                    .filter(|&&v| v > 0.0)
                    .count();
                sv[n * classes + class] += fired as f32 / plane as f32;
            }
        }
        _ => unreachable!("prunable layers produce rank-1 or rank-3 activations"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capnn_data::{VectorClusters, VectorClustersConfig};
    use capnn_nn::{Dense, Layer, NetworkBuilder, Trainer, TrainerConfig};
    use capnn_tensor::XorShiftRng;

    #[test]
    fn rates_are_probabilities() {
        let gen = VectorClusters::new(VectorClustersConfig::easy(3, 4)).unwrap();
        let ds = gen.generate(10, 1);
        let net = NetworkBuilder::mlp(&[4, 8, 6, 3], 2).build().unwrap();
        let rates = FiringRateProfiler::new(3).profile(&net, &ds).unwrap();
        assert_eq!(rates.num_classes(), 3);
        for lr in rates.layers() {
            assert!(lr
                .rates
                .as_slice()
                .iter()
                .all(|&r| (0.0..=1.0).contains(&r)));
        }
    }

    #[test]
    fn tail_selection_counts_layers() {
        let gen = VectorClusters::new(VectorClustersConfig::easy(3, 4)).unwrap();
        let ds = gen.generate(2, 1);
        let net = NetworkBuilder::mlp(&[4, 8, 6, 3], 2).build().unwrap();
        let rates = FiringRateProfiler::new(2).profile(&net, &ds).unwrap();
        assert_eq!(rates.layers().len(), 2);
        // the covered layers are the LAST prunable ones
        let prunable = net.prunable_layers();
        assert_eq!(rates.layers()[0].layer, prunable[1]);
        assert_eq!(rates.layers()[1].layer, prunable[2]);
        assert!(rates.for_layer(prunable[0]).is_none());
        assert!(rates.for_layer(prunable[2]).is_some());
    }

    #[test]
    fn hand_built_neuron_has_expected_rates() {
        // 2-class "network": one dense layer, 2 units. Unit 0 fires only on
        // positive first input, unit 1 always fires (large bias).
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![0.0, 10.0], &[2]).unwrap();
        let l0 = Layer::Dense(Dense::new(w, b).unwrap());
        let out = Layer::Dense(
            Dense::new(
                Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap(),
                Tensor::zeros(&[2]),
            )
            .unwrap(),
        );
        let net = Network::new(vec![l0, Layer::Relu, out], &[2]).unwrap();
        // class 0 inputs: x = (+1, 0); class 1: x = (-1, 0)
        let ds = Dataset::new(
            vec![
                (Tensor::from_vec(vec![1.0, 0.0], &[2]).unwrap(), 0),
                (Tensor::from_vec(vec![1.0, 0.0], &[2]).unwrap(), 0),
                (Tensor::from_vec(vec![-1.0, 0.0], &[2]).unwrap(), 1),
                (Tensor::from_vec(vec![-1.0, 0.0], &[2]).unwrap(), 1),
            ],
            2,
        )
        .unwrap();
        let rates = FiringRateProfiler::new(2).profile(&net, &ds).unwrap();
        let lr = &rates.layers()[0];
        assert_eq!(lr.rate(0, 0), 1.0); // unit 0 fires for class 0
        assert_eq!(lr.rate(0, 1), 0.0); // never for class 1
        assert_eq!(lr.rate(1, 0), 1.0); // unit 1 always fires
        assert_eq!(lr.rate(1, 1), 1.0);
    }

    #[test]
    fn effective_rate_weights_classes() {
        let lr = LayerRates {
            layer: 0,
            rates: Tensor::from_vec(vec![0.8, 0.2], &[1, 2]).unwrap(),
        };
        let eff = lr.effective_rate(0, &[0, 1], &[0.5, 0.5]);
        assert!((eff - 0.5).abs() < 1e-6);
        // one-hot weight recovers the class rate
        let eff0 = lr.effective_rate(0, &[0, 1], &[1.0, 0.0]);
        assert!((eff0 - 0.8).abs() < 1e-6);
    }

    #[test]
    fn trained_network_rates_show_class_selectivity() {
        // After training on separable clusters, at least some hidden units
        // should have visibly different rates across classes.
        let gen = VectorClusters::new(VectorClustersConfig::easy(4, 6)).unwrap();
        let train = gen.generate(30, 1);
        let mut net = NetworkBuilder::mlp(&[6, 16, 12, 4], 3).build().unwrap();
        let cfg = TrainerConfig {
            epochs: 10,
            ..TrainerConfig::default()
        };
        Trainer::new(cfg, 1).fit(&mut net, train.samples()).unwrap();
        let profile_ds = gen.generate(25, 2);
        let rates = FiringRateProfiler::new(2)
            .profile(&net, &profile_ds)
            .unwrap();
        let lr = &rates.layers()[0];
        let mut max_spread = 0.0f32;
        for n in 0..lr.units() {
            let row: Vec<f32> = (0..4).map(|c| lr.rate(n, c)).collect();
            let spread = row.iter().cloned().fold(f32::MIN, f32::max)
                - row.iter().cloned().fold(f32::MAX, f32::min);
            max_spread = max_spread.max(spread);
        }
        assert!(
            max_spread > 0.3,
            "expected class-selective units, max spread {max_spread}"
        );
    }

    #[test]
    fn conv_channel_rates_are_fractional() {
        let mut rng = XorShiftRng::new(4);
        let net = NetworkBuilder::cnn(&[1, 8, 8], &[(4, 1)], &[8], 2, 3)
            .build()
            .unwrap();
        let samples = (0..6)
            .map(|i| (Tensor::uniform(&[1, 8, 8], -1.0, 1.0, &mut rng), i % 2))
            .collect();
        let ds = Dataset::new(samples, 2).unwrap();
        let rates = FiringRateProfiler::new(3).profile(&net, &ds).unwrap();
        let conv_rates = &rates.layers()[0];
        // conv rates are averages of plane fractions → rarely exactly 0/1
        assert!(conv_rates
            .rates
            .as_slice()
            .iter()
            .all(|&r| (0.0..=1.0).contains(&r)));
    }

    #[test]
    fn memory_accounting() {
        let lr = LayerRates {
            layer: 0,
            rates: Tensor::zeros(&[100, 10]),
        };
        let fr = FiringRates::from_layers(vec![lr], 10);
        assert_eq!(fr.memory_bytes(3), (1000u64 * 3).div_ceil(8));
        assert_eq!(fr.memory_bytes(8), 1000);
        assert_eq!(fr.memory_bytes(32), 4000);
    }
}
