//! Linear quantization of firing rates (§V-C of the paper).
//!
//! CAP'NN-W must store per-class firing rates for the prunable tail; the
//! paper quantizes them to 3 bits, shrinking the overhead to ~1.3 % of the
//! model. This module implements the quantizer and its storage accounting so
//! the `memory_overhead` experiment and the `ablation_quant` sweep can
//! measure fidelity vs footprint.

use crate::firing::{FiringRates, LayerRates};
use serde::{Deserialize, Serialize};

/// Firing rates quantized to `bits` bits per entry, with the dequantized
/// matrices materialized for downstream use.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedRates {
    /// Dequantized rates (entries snapped to the quantization grid).
    pub rates: FiringRates,
    /// Bits per stored entry.
    pub bits: u32,
}

impl QuantizedRates {
    /// Storage footprint in bytes at the configured bit width.
    pub fn memory_bytes(&self) -> u64 {
        self.rates.memory_bytes(self.bits)
    }

    /// Worst-case absolute quantization error of the grid (half a step).
    pub fn max_error(&self) -> f32 {
        let levels = (1u32 << self.bits) - 1;
        0.5 / levels as f32
    }
}

/// Linearly quantizes every rate to `bits` bits (`2^bits` levels spanning
/// `[0, 1]`), returning the snapped rates.
///
/// # Panics
///
/// Panics if `bits` is 0 or greater than 16.
///
/// # Examples
///
/// ```
/// use capnn_profile::{quantize_rates, FiringRates, LayerRates};
/// use capnn_tensor::Tensor;
///
/// let lr = LayerRates { layer: 0, rates: Tensor::from_vec(vec![0.31], &[1, 1]).unwrap() };
/// let q = quantize_rates(&FiringRates::from_layers(vec![lr], 1), 3);
/// // 3 bits → levels k/7; 0.31 snaps to 2/7
/// assert!((q.rates.layers()[0].rate(0, 0) - 2.0 / 7.0).abs() < 1e-6);
/// ```
pub fn quantize_rates(rates: &FiringRates, bits: u32) -> QuantizedRates {
    assert!(
        (1..=16).contains(&bits),
        "bits must be in 1..=16, got {bits}"
    );
    let levels = ((1u32 << bits) - 1) as f32;
    let layers = rates
        .layers()
        .iter()
        .map(|lr| LayerRates {
            layer: lr.layer,
            rates: lr
                .rates
                .map(|r| (r.clamp(0.0, 1.0) * levels).round() / levels),
        })
        .collect();
    QuantizedRates {
        rates: FiringRates::from_layers(layers, rates.num_classes()),
        bits,
    }
}

/// Round-trip fidelity of symmetric per-channel int8 weight quantization —
/// the scheme [`Precision::Int8`](capnn_nn::Precision) compiled plans apply
/// to their packed panels. Lets the ablation experiments report *weight*
/// quantization error alongside the firing-rate grid error above, and the
/// storage win of shipping int8 panels to devices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Int8WeightStats {
    /// Quantization groups (output channels / columns) measured.
    pub channels: usize,
    /// Total weights measured.
    pub elements: usize,
    /// Largest absolute round-trip error across all weights.
    pub max_abs_error: f32,
    /// Root-mean-square round-trip error across all weights.
    pub rms_error: f32,
    /// Largest per-channel scale (the worst channel's quantization step).
    pub max_scale: f32,
    /// Bytes to store the weights in f32.
    pub f32_bytes: u64,
    /// Bytes to store the int8 weights plus one f32 scale per channel.
    pub int8_bytes: u64,
}

impl Int8WeightStats {
    /// Storage compression factor of the int8 representation (≈4 minus the
    /// per-channel scale overhead).
    pub fn compression(&self) -> f64 {
        if self.int8_bytes == 0 {
            return 1.0;
        }
        self.f32_bytes as f64 / self.int8_bytes as f64
    }
}

/// Measures symmetric int8 round-trip fidelity over per-channel weight
/// groups: each `channels` slice is quantized with its own scale
/// (`max_abs/127`, the [`capnn_tensor::i8_scale`] grid) and compared
/// against the original. The error of every weight is bounded by half its
/// channel's scale; all-zero channels round-trip exactly.
///
/// # Examples
///
/// ```
/// use capnn_profile::int8_weight_stats;
///
/// let stats = int8_weight_stats([&[0.5f32, -1.0, 0.25][..], &[0.0; 4][..]]);
/// assert_eq!(stats.channels, 2);
/// assert!(stats.max_abs_error <= stats.max_scale / 2.0);
/// assert!(stats.compression() > 1.5); // tiny channels: scale overhead dominates
/// ```
pub fn int8_weight_stats<'a>(channels: impl IntoIterator<Item = &'a [f32]>) -> Int8WeightStats {
    use capnn_tensor::{i8_inv_scale, i8_scale, max_abs, quantize_i8};
    let mut n_ch = 0usize;
    let mut n = 0usize;
    let mut max_err = 0.0f32;
    let mut sq_sum = 0.0f64;
    let mut max_scale = 0.0f32;
    for ch in channels {
        n_ch += 1;
        n += ch.len();
        let m = max_abs(ch);
        let scale = i8_scale(m);
        let inv = i8_inv_scale(m);
        max_scale = max_scale.max(scale);
        for &x in ch {
            let err = (x - quantize_i8(x, inv) as f32 * scale).abs();
            max_err = max_err.max(err);
            sq_sum += (err as f64) * (err as f64);
        }
    }
    Int8WeightStats {
        channels: n_ch,
        elements: n,
        max_abs_error: max_err,
        rms_error: if n == 0 {
            0.0
        } else {
            (sq_sum / n as f64).sqrt() as f32
        },
        max_scale,
        f32_bytes: 4 * n as u64,
        int8_bytes: n as u64 + 4 * n_ch as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capnn_tensor::Tensor;

    fn sample_rates() -> FiringRates {
        let lr = LayerRates {
            layer: 2,
            rates: Tensor::from_vec(vec![0.0, 0.13, 0.49, 0.5, 0.87, 1.0], &[3, 2]).unwrap(),
        };
        FiringRates::from_layers(vec![lr], 2)
    }

    #[test]
    fn quantized_values_on_grid() {
        let q = quantize_rates(&sample_rates(), 3);
        for &v in q.rates.layers()[0].rates.as_slice() {
            let scaled = v * 7.0;
            assert!((scaled - scaled.round()).abs() < 1e-5, "{v} not on grid");
        }
    }

    #[test]
    fn error_bounded_by_half_step() {
        let original = sample_rates();
        for bits in [1u32, 2, 3, 4, 8] {
            let q = quantize_rates(&original, bits);
            let bound = q.max_error() + 1e-6;
            for (o, n) in original.layers()[0]
                .rates
                .as_slice()
                .iter()
                .zip(q.rates.layers()[0].rates.as_slice())
            {
                assert!((o - n).abs() <= bound, "bits={bits}: {o} vs {n}");
            }
        }
    }

    #[test]
    fn endpoints_are_exact() {
        let q = quantize_rates(&sample_rates(), 1);
        let vals = q.rates.layers()[0].rates.as_slice();
        assert_eq!(vals[0], 0.0);
        assert_eq!(vals[5], 1.0);
    }

    #[test]
    fn more_bits_never_worse() {
        let original = sample_rates();
        let err = |bits| {
            let q = quantize_rates(&original, bits);
            original.layers()[0]
                .rates
                .as_slice()
                .iter()
                .zip(q.rates.layers()[0].rates.as_slice())
                .map(|(o, n)| (o - n).abs())
                .fold(0.0f32, f32::max)
        };
        assert!(err(8) <= err(3));
        assert!(err(3) <= err(1));
    }

    #[test]
    fn memory_scales_with_bits() {
        let original = sample_rates();
        let q3 = quantize_rates(&original, 3);
        let q8 = quantize_rates(&original, 8);
        assert!(q3.memory_bytes() < q8.memory_bytes());
        assert_eq!(q8.memory_bytes(), 6);
    }

    #[test]
    #[should_panic(expected = "bits must be in 1..=16")]
    fn zero_bits_panics() {
        quantize_rates(&sample_rates(), 0);
    }

    #[test]
    fn int8_stats_error_bounded_by_half_scale() {
        let c0 = [0.7f32, -0.31, 0.002, 1.5, -1.5];
        let c1 = [0.01f32, -0.002, 0.0033];
        let stats = int8_weight_stats([&c0[..], &c1[..]]);
        assert_eq!(stats.channels, 2);
        assert_eq!(stats.elements, 8);
        // per-channel scales mean the tiny channel does not inherit the
        // big channel's coarse grid, so the global bound is max_scale/2
        assert!(stats.max_abs_error <= stats.max_scale / 2.0 + f32::EPSILON);
        assert!(stats.rms_error <= stats.max_abs_error);
        // channel extremes (±max_abs) quantize exactly to ±127
        assert!((stats.max_scale - 1.5 / 127.0).abs() < 1e-7);
    }

    #[test]
    fn int8_stats_zero_channel_roundtrips_exactly() {
        let stats = int8_weight_stats([&[0.0f32; 6][..]]);
        assert_eq!(stats.max_abs_error, 0.0);
        assert_eq!(stats.rms_error, 0.0);
        assert_eq!(stats.max_scale, 0.0);
    }

    #[test]
    fn int8_stats_storage_accounting() {
        let stats = int8_weight_stats([&[1.0f32; 100][..], &[2.0f32; 100][..]]);
        assert_eq!(stats.f32_bytes, 800);
        assert_eq!(stats.int8_bytes, 200 + 8);
        assert!(stats.compression() > 3.5);
        let empty = int8_weight_stats(std::iter::empty::<&[f32]>());
        assert_eq!(empty.elements, 0);
        assert_eq!(empty.compression(), 1.0);
    }
}
