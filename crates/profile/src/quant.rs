//! Linear quantization of firing rates (§V-C of the paper).
//!
//! CAP'NN-W must store per-class firing rates for the prunable tail; the
//! paper quantizes them to 3 bits, shrinking the overhead to ~1.3 % of the
//! model. This module implements the quantizer and its storage accounting so
//! the `memory_overhead` experiment and the `ablation_quant` sweep can
//! measure fidelity vs footprint.

use crate::firing::{FiringRates, LayerRates};
use serde::{Deserialize, Serialize};

/// Firing rates quantized to `bits` bits per entry, with the dequantized
/// matrices materialized for downstream use.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedRates {
    /// Dequantized rates (entries snapped to the quantization grid).
    pub rates: FiringRates,
    /// Bits per stored entry.
    pub bits: u32,
}

impl QuantizedRates {
    /// Storage footprint in bytes at the configured bit width.
    pub fn memory_bytes(&self) -> u64 {
        self.rates.memory_bytes(self.bits)
    }

    /// Worst-case absolute quantization error of the grid (half a step).
    pub fn max_error(&self) -> f32 {
        let levels = (1u32 << self.bits) - 1;
        0.5 / levels as f32
    }
}

/// Linearly quantizes every rate to `bits` bits (`2^bits` levels spanning
/// `[0, 1]`), returning the snapped rates.
///
/// # Panics
///
/// Panics if `bits` is 0 or greater than 16.
///
/// # Examples
///
/// ```
/// use capnn_profile::{quantize_rates, FiringRates, LayerRates};
/// use capnn_tensor::Tensor;
///
/// let lr = LayerRates { layer: 0, rates: Tensor::from_vec(vec![0.31], &[1, 1]).unwrap() };
/// let q = quantize_rates(&FiringRates::from_layers(vec![lr], 1), 3);
/// // 3 bits → levels k/7; 0.31 snaps to 2/7
/// assert!((q.rates.layers()[0].rate(0, 0) - 2.0 / 7.0).abs() < 1e-6);
/// ```
pub fn quantize_rates(rates: &FiringRates, bits: u32) -> QuantizedRates {
    assert!(
        (1..=16).contains(&bits),
        "bits must be in 1..=16, got {bits}"
    );
    let levels = ((1u32 << bits) - 1) as f32;
    let layers = rates
        .layers()
        .iter()
        .map(|lr| LayerRates {
            layer: lr.layer,
            rates: lr
                .rates
                .map(|r| (r.clamp(0.0, 1.0) * levels).round() / levels),
        })
        .collect();
    QuantizedRates {
        rates: FiringRates::from_layers(layers, rates.num_classes()),
        bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capnn_tensor::Tensor;

    fn sample_rates() -> FiringRates {
        let lr = LayerRates {
            layer: 2,
            rates: Tensor::from_vec(vec![0.0, 0.13, 0.49, 0.5, 0.87, 1.0], &[3, 2]).unwrap(),
        };
        FiringRates::from_layers(vec![lr], 2)
    }

    #[test]
    fn quantized_values_on_grid() {
        let q = quantize_rates(&sample_rates(), 3);
        for &v in q.rates.layers()[0].rates.as_slice() {
            let scaled = v * 7.0;
            assert!((scaled - scaled.round()).abs() < 1e-5, "{v} not on grid");
        }
    }

    #[test]
    fn error_bounded_by_half_step() {
        let original = sample_rates();
        for bits in [1u32, 2, 3, 4, 8] {
            let q = quantize_rates(&original, bits);
            let bound = q.max_error() + 1e-6;
            for (o, n) in original.layers()[0]
                .rates
                .as_slice()
                .iter()
                .zip(q.rates.layers()[0].rates.as_slice())
            {
                assert!((o - n).abs() <= bound, "bits={bits}: {o} vs {n}");
            }
        }
    }

    #[test]
    fn endpoints_are_exact() {
        let q = quantize_rates(&sample_rates(), 1);
        let vals = q.rates.layers()[0].rates.as_slice();
        assert_eq!(vals[0], 0.0);
        assert_eq!(vals[5], 1.0);
    }

    #[test]
    fn more_bits_never_worse() {
        let original = sample_rates();
        let err = |bits| {
            let q = quantize_rates(&original, bits);
            original.layers()[0]
                .rates
                .as_slice()
                .iter()
                .zip(q.rates.layers()[0].rates.as_slice())
                .map(|(o, n)| (o - n).abs())
                .fold(0.0f32, f32::max)
        };
        assert!(err(8) <= err(3));
        assert!(err(3) <= err(1));
    }

    #[test]
    fn memory_scales_with_bits() {
        let original = sample_rates();
        let q3 = quantize_rates(&original, 3);
        let q8 = quantize_rates(&original, 8);
        assert!(q3.memory_bytes() < q8.memory_bytes());
        assert_eq!(q8.memory_bytes(), 6);
    }

    #[test]
    #[should_panic(expected = "bits must be in 1..=16")]
    fn zero_bits_panics() {
        quantize_rates(&sample_rates(), 0);
    }
}
