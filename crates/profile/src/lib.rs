//! Class-specific firing-rate profiling, confusion matrices and firing-rate
//! quantization — the offline preprocessing stage of CAP'NN (§II/III of the
//! paper).
//!
//! The class-specific firing rate of a neuron is the fraction of inputs of a
//! given class for which the neuron's (post-ReLU) activation is non-zero;
//! for convolutional layers the rate of a *channel* is the mean fraction of
//! non-zero elements in its feature map (following Hu et al.'s network
//! trimming measure, the paper's reference \[6\]). These rates are computed
//! once in the cloud and drive all three pruning variants.
//!
//! # Examples
//!
//! ```
//! use capnn_data::{SyntheticImages, SyntheticImagesConfig};
//! use capnn_nn::{NetworkBuilder, VggConfig};
//! use capnn_profile::FiringRateProfiler;
//!
//! let gen = SyntheticImages::new(SyntheticImagesConfig::small(4))?;
//! let net = NetworkBuilder::vgg(&VggConfig::vgg_tiny(4), 7).build().unwrap();
//! let ds = gen.generate(4, 1);
//! let rates = FiringRateProfiler::new(4).profile(&net, &ds).unwrap();
//! assert_eq!(rates.layers().len(), 4);
//! # Ok::<(), String>(())
//! ```

mod confusion;
mod firing;
mod nm;
mod quant;
mod selectivity;

pub use confusion::ConfusionMatrix;
pub use firing::{FiringRateProfiler, FiringRates, LayerRates};
pub use nm::{gate_nm_plan, nm_candidate_order, NmGateConfig, NmGateReport};
pub use quant::{int8_weight_stats, quantize_rates, Int8WeightStats, QuantizedRates};
pub use selectivity::{layer_selectivity, unit_selectivity, LayerSelectivity, UnitSelectivity};
