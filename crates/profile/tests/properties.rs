//! Property tests for the profiling crate: firing rates, confusion matrices
//! and quantization must behave for arbitrary (small) trained networks and
//! datasets.

use capnn_data::{Dataset, VectorClusters, VectorClustersConfig};
use capnn_nn::NetworkBuilder;
use capnn_profile::{quantize_rates, ConfusionMatrix, FiringRateProfiler};
use capnn_tensor::{Tensor, XorShiftRng};
use proptest::prelude::*;

fn random_dataset(classes: usize, per_class: usize, dim: usize, seed: u64) -> Dataset {
    let gen = VectorClusters::new(VectorClustersConfig {
        classes,
        dim,
        separation: 2.5,
        noise: 0.6,
        seed,
    })
    .expect("gen");
    gen.generate(per_class, seed ^ 0x99)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn firing_rates_are_probabilities(
        classes in 2usize..5, per_class in 2usize..6, seed in any::<u64>()
    ) {
        let ds = random_dataset(classes, per_class, 5, seed);
        let net = NetworkBuilder::mlp(&[5, 10, 8, classes], seed ^ 1)
            .build()
            .expect("builds");
        let rates = FiringRateProfiler::new(3).profile(&net, &ds).expect("profile");
        prop_assert_eq!(rates.num_classes(), classes);
        for lr in rates.layers() {
            for &r in lr.rates.as_slice() {
                prop_assert!((0.0..=1.0).contains(&r), "rate {}", r);
            }
        }
    }

    #[test]
    fn confusion_rows_are_distributions(
        classes in 2usize..5, per_class in 2usize..6, seed in any::<u64>()
    ) {
        let ds = random_dataset(classes, per_class, 5, seed);
        let net = NetworkBuilder::mlp(&[5, 8, classes], seed ^ 2)
            .build()
            .expect("builds");
        let cm = ConfusionMatrix::measure(&net, &ds).expect("measure");
        for k in 0..classes {
            let row_sum: f32 = (0..classes).map(|c| cm.fraction(k, c)).sum();
            prop_assert!((row_sum - 1.0).abs() < 1e-5, "row {} sums to {}", k, row_sum);
            for c in 0..classes {
                prop_assert!((0.0..=1.0).contains(&cm.fraction(k, c)));
            }
        }
    }

    #[test]
    fn top_confusing_never_contains_self(
        classes in 3usize..6, n in 1usize..5, seed in any::<u64>()
    ) {
        // random row-stochastic matrix
        let mut rng = XorShiftRng::new(seed);
        let mut m = vec![0.0f32; classes * classes];
        for k in 0..classes {
            let mut row: Vec<f32> = (0..classes).map(|_| rng.next_uniform() + 0.01).collect();
            let s: f32 = row.iter().sum();
            for r in &mut row {
                *r /= s;
            }
            m[k * classes..(k + 1) * classes].copy_from_slice(&row);
        }
        let cm = ConfusionMatrix::from_fractions(
            Tensor::from_vec(m, &[classes, classes]).expect("square"),
        )
        .expect("cm");
        for k in 0..classes {
            let top = cm.top_confusing(k, n);
            prop_assert!(!top.contains(&k));
            prop_assert!(top.len() == n.min(classes - 1));
            // descending order of trigger fraction
            for w in top.windows(2) {
                prop_assert!(cm.fraction(k, w[0]) >= cm.fraction(k, w[1]));
            }
        }
    }

    #[test]
    fn quantization_idempotent(bits in 1u32..9, seed in any::<u64>()) {
        let ds = random_dataset(3, 3, 4, seed);
        let net = NetworkBuilder::mlp(&[4, 8, 3], seed ^ 3).build().expect("builds");
        let rates = FiringRateProfiler::new(2).profile(&net, &ds).expect("profile");
        let q1 = quantize_rates(&rates, bits);
        let q2 = quantize_rates(&q1.rates, bits);
        prop_assert_eq!(q1.rates, q2.rates, "quantizing twice must be a no-op");
    }
}
