//! The metric primitives: atomic counters, gauges, log₂ histograms and
//! scope-timer spans.

use crate::snapshot::{BucketSnapshot, HistogramSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins instantaneous value (e.g. a utilization fraction).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at `0.0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Resets to `0.0`.
    pub fn reset(&self) {
        self.bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// Number of histogram buckets: one for zero plus one per power of two of
/// the `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log₂-bucketed distribution of `u64` samples (latencies in
/// nanoseconds, sizes in parameters, …).
///
/// Bucket 0 holds exact zeros; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i - 1]`. Recording is wait-free (three relaxed atomic RMWs
/// plus a `fetch_max`/`fetch_min` pair), so worker threads can record
/// concurrently without coordination; quantile estimates are read from the
/// bucket a target rank falls into, i.e. accurate to a factor of two —
/// plenty for latency-SLO style monitoring.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index a value lands in: 0 for 0, otherwise
    /// `⌊log₂ v⌋ + 1`.
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Inclusive lower bound of bucket `index`.
    pub fn bucket_lower(index: usize) -> u64 {
        if index == 0 {
            0
        } else {
            1u64 << (index - 1)
        }
    }

    /// Inclusive upper bound of bucket `index`.
    pub fn bucket_upper(index: usize) -> u64 {
        if index == 0 {
            0
        } else if index >= 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) as the upper bound of
    /// the bucket the target rank falls in, clamped to the observed
    /// maximum. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let max = self.max.load(Ordering::Relaxed);
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= target {
                return Self::bucket_upper(i).min(max);
            }
        }
        max
    }

    /// A serializable point-in-time view.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        let sum = self.sum();
        let buckets: Vec<BucketSnapshot> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| BucketSnapshot {
                    lo: Self::bucket_lower(i),
                    hi: Self::bucket_upper(i),
                    count: n,
                })
            })
            .collect();
        HistogramSnapshot {
            count,
            sum,
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            buckets,
        }
    }

    /// Clears all samples.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A scope timer: started by [`crate::time`] (or [`Span::start`]),
/// records elapsed nanoseconds into the named global histogram when
/// dropped. Inert — no clock read, no allocation — when telemetry is
/// disabled at start time.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span {
    armed: Option<(String, Instant)>,
}

impl Span {
    /// Starts a span over the named histogram.
    #[inline]
    pub fn start(name: &str) -> Self {
        Self {
            armed: crate::enabled().then(|| (name.to_string(), Instant::now())),
        }
    }

    /// Stops the span now, recording the elapsed time (same as dropping).
    pub fn finish(mut self) {
        self.record();
    }

    fn record(&mut self) {
        if let Some((name, start)) = self.armed.take() {
            crate::observe_duration(&name, start.elapsed());
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.add(3);
        c.add(4);
        assert_eq!(c.get(), 7);
        c.reset();
        assert_eq!(c.get(), 0);
        let g = Gauge::new();
        g.set(-2.5);
        assert_eq!(g.get(), -2.5);
        g.reset();
        assert_eq!(g.get(), 0.0);
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // 0 has its own bucket
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_lower(0), 0);
        assert_eq!(Histogram::bucket_upper(0), 0);
        // bucket i ≥ 1 covers [2^(i-1), 2^i - 1]
        for (value, bucket) in [
            (1u64, 1usize),
            (2, 2),
            (3, 2),
            (4, 3),
            (7, 3),
            (8, 4),
            (1023, 10),
            (1024, 11),
            (u64::MAX, 64),
        ] {
            assert_eq!(Histogram::bucket_index(value), bucket, "value {value}");
            assert!(Histogram::bucket_lower(bucket) <= value);
            assert!(value <= Histogram::bucket_upper(bucket));
        }
        // boundaries tile the u64 range with no gaps or overlaps
        for i in 1..HISTOGRAM_BUCKETS {
            assert_eq!(
                Histogram::bucket_lower(i),
                Histogram::bucket_upper(i - 1).wrapping_add(1),
                "gap between buckets {} and {}",
                i - 1,
                i
            );
        }
        assert_eq!(Histogram::bucket_upper(64), u64::MAX);
    }

    #[test]
    fn histogram_records_land_in_their_buckets() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 900, 1000, 1100] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 7);
        assert_eq!(snap.sum, 3006);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 1100);
        // zero bucket, the 1-bucket, the 2..3 bucket, and 512..1023 /
        // 1024..2047 from the larger samples
        let lows: Vec<u64> = snap.buckets.iter().map(|b| b.lo).collect();
        assert_eq!(lows, vec![0, 1, 2, 512, 1024]);
        let total: u64 = snap.buckets.iter().map(|b| b.count).sum();
        assert_eq!(total, snap.count);
    }

    #[test]
    fn quantiles_are_bucket_accurate_and_clamped() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(100); // bucket [64, 127]
        }
        h.record(10_000); // bucket [8192, 16383]
        assert_eq!(h.quantile(0.5), 127);
        assert_eq!(h.quantile(0.99), 127);
        // the single outlier caps at the observed max, not the bucket edge
        assert_eq!(h.quantile(1.0), 10_000);
        let empty = Histogram::new();
        assert_eq!(empty.quantile(0.5), 0);
    }

    #[test]
    fn histogram_reset_clears_everything() {
        let h = Histogram::new();
        h.record(5);
        h.reset();
        let snap = h.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.sum, 0);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 0);
        assert!(snap.buckets.is_empty());
    }

    #[test]
    fn concurrent_histogram_records_are_lossless() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..5_000u64 {
                        h.record(t * 1_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 20_000);
    }
}
