//! Serving telemetry for the CAP'NN reproduction.
//!
//! The ROADMAP's north star is a production serving system, and both the
//! paper's own online loop (device-side class monitoring triggering
//! re-pruning, §II) and the stream-serving designs it inspired presuppose an
//! always-on, low-overhead measurement layer. This crate is that layer:
//!
//! * [`Counter`] / [`Gauge`] — lock-free atomics;
//! * [`Histogram`] — log₂-bucketed latency/size distributions with atomic
//!   buckets, safe to hammer from the worker pool;
//! * [`Registry`] — a process-global (or standalone) name → metric table;
//! * [`Span`] — a scope timer recording elapsed nanoseconds into a
//!   histogram on drop;
//! * [`Snapshot`] — a serializable point-in-time view of every metric,
//!   schema-aligned with the `results/BENCH_*.json` reports (sorted keys,
//!   flat maps) and emittable as JSON without any serde machinery via
//!   [`Snapshot::to_json`].
//!
//! # The toggle
//!
//! Telemetry is **off by default**. It turns on when the `CAPNN_TELEMETRY`
//! environment variable is set to anything but `0`/empty (resolved once, at
//! the first probe), or programmatically via [`set_enabled`]. When disabled,
//! every probe in the hot path ([`count`], [`observe`], [`time`], …) costs a
//! single relaxed atomic load and a predictable branch — no allocation, no
//! clock read, no lock.
//!
//! # Examples
//!
//! ```
//! capnn_telemetry::set_enabled(true);
//! capnn_telemetry::count("cache.hits", 1);
//! capnn_telemetry::observe("personalize.weighted_ns", 1_500);
//! let snap = capnn_telemetry::snapshot().unwrap();
//! assert_eq!(snap.counters["cache.hits"], 1);
//! capnn_telemetry::set_enabled(false);
//! capnn_telemetry::reset();
//! ```

mod metrics;
mod registry;
mod snapshot;

pub use metrics::{Counter, Gauge, Histogram, Span, HISTOGRAM_BUCKETS};
pub use registry::Registry;
pub use snapshot::{BucketSnapshot, HistogramSnapshot, Snapshot};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// Toggle state: 0 = unresolved, 1 = disabled, 2 = enabled.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether telemetry is recording. This is the single relaxed load every
/// probe pays when disabled.
///
/// First call resolves the `CAPNN_TELEMETRY` environment variable (set and
/// not `0`/empty → enabled); [`set_enabled`] overrides at any time.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        0 => resolve_from_env(),
        state => state == 2,
    }
}

#[cold]
fn resolve_from_env() -> bool {
    let on = std::env::var("CAPNN_TELEMETRY").is_ok_and(|v| v != "0" && !v.is_empty());
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Turns recording on or off for all subsequent probes (overrides the
/// `CAPNN_TELEMETRY` environment variable). Benchmarks use this to measure
/// the same code path in both modes.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// The process-global registry all free-function probes record into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Adds `n` to the named counter (no-op when disabled).
#[inline]
pub fn count(name: &str, n: u64) {
    if enabled() {
        global().counter(name).add(n);
    }
}

/// Sets the named gauge (no-op when disabled).
#[inline]
pub fn set_gauge(name: &str, value: f64) {
    if enabled() {
        global().gauge(name).set(value);
    }
}

/// Records one value into the named histogram (no-op when disabled).
#[inline]
pub fn observe(name: &str, value: u64) {
    if enabled() {
        global().histogram(name).record(value);
    }
}

/// Records a duration, in nanoseconds, into the named histogram (no-op
/// when disabled). Durations beyond ~584 years saturate.
#[inline]
pub fn observe_duration(name: &str, elapsed: Duration) {
    if enabled() {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        global().histogram(name).record(ns);
    }
}

/// Starts a scope timer that records elapsed nanoseconds into the named
/// histogram when dropped (or explicitly [`Span::finish`]ed). When
/// telemetry is disabled the span is inert: no clock read, no allocation.
#[inline]
pub fn time(name: &str) -> Span {
    Span::start(name)
}

/// A point-in-time view of every metric in the global registry, or `None`
/// when telemetry is disabled — disabled runs produce *no* snapshot output
/// by construction.
pub fn snapshot() -> Option<Snapshot> {
    enabled().then(|| global().snapshot())
}

/// Clears every metric in the global registry (tests and benchmarks
/// isolate their measurement windows this way).
pub fn reset() {
    global().reset();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// Global-state tests must not interleave: the toggle and the global
    /// registry are process-wide.
    pub(crate) fn serial() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_probes_record_nothing_and_yield_no_snapshot() {
        let _guard = serial();
        set_enabled(false);
        reset();
        count("smoke.counter", 5);
        set_gauge("smoke.gauge", 1.5);
        observe("smoke.hist", 42);
        drop(time("smoke.span"));
        assert!(snapshot().is_none(), "disabled mode must emit no snapshot");
        // nothing leaked into the registry either
        set_enabled(true);
        let snap = snapshot().expect("enabled");
        assert!(!snap.counters.contains_key("smoke.counter"));
        assert!(!snap.gauges.contains_key("smoke.gauge"));
        assert!(!snap.histograms.contains_key("smoke.hist"));
        assert!(!snap.histograms.contains_key("smoke.span"));
        set_enabled(false);
    }

    #[test]
    fn enabled_probes_land_in_the_global_registry() {
        let _guard = serial();
        set_enabled(true);
        reset();
        count("t.hits", 2);
        count("t.hits", 3);
        set_gauge("t.level", 0.25);
        observe("t.lat", 100);
        {
            let _span = time("t.span_ns");
        }
        let snap = snapshot().expect("enabled");
        assert_eq!(snap.counters["t.hits"], 5);
        assert!((snap.gauges["t.level"] - 0.25).abs() < 1e-12);
        assert_eq!(snap.histograms["t.lat"].count, 1);
        assert_eq!(snap.histograms["t.span_ns"].count, 1);
        set_enabled(false);
        reset();
    }

    #[test]
    fn concurrent_counter_increments_are_lossless() {
        let _guard = serial();
        set_enabled(true);
        reset();
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..per_thread {
                        count("t.concurrent", 1);
                    }
                });
            }
        });
        let snap = snapshot().expect("enabled");
        assert_eq!(snap.counters["t.concurrent"], threads * per_thread);
        set_enabled(false);
        reset();
    }

    #[test]
    fn set_enabled_overrides_env_resolution() {
        let _guard = serial();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }
}
