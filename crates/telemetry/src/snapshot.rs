//! Serializable point-in-time views of a [`Registry`](crate::Registry).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One non-empty histogram bucket: `count` samples in `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketSnapshot {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
    /// Samples in this bucket.
    pub count: u64,
}

/// A histogram's summary statistics plus its non-empty buckets.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Mean sample (0 when empty).
    pub mean: f64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Median estimate (upper bucket bound, clamped to `max`).
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Non-empty buckets in ascending order.
    pub buckets: Vec<BucketSnapshot>,
}

/// Every metric of a registry at one instant, with sorted names — the
/// same flat-map shape the `results/BENCH_*.json` reports use, so
/// downstream tooling can ingest both with one reader.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Whether no metric holds any data.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders the snapshot as a JSON document, with keys in sorted order.
    ///
    /// Hand-rolled (std-only) so snapshots can be emitted from binaries
    /// that do not link a JSON library; the output parses back into an
    /// equal `Snapshot` through serde.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"counters\": {");
        write_entries(&mut out, self.counters.iter(), |out, v| {
            out.push_str(&v.to_string());
        });
        out.push_str("},\n  \"gauges\": {");
        write_entries(&mut out, self.gauges.iter(), |out, v| {
            write_f64(out, **v);
        });
        out.push_str("},\n  \"histograms\": {");
        write_entries(&mut out, self.histograms.iter(), |out, h| {
            write_histogram(out, h);
        });
        out.push_str("}\n}\n");
        out
    }
}

/// Writes `"key": <value>` entries, comma-separated, on indented lines.
fn write_entries<'a, V: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, V)>,
    mut write_value: impl FnMut(&mut String, &V),
) {
    let mut first = true;
    for (key, value) in entries {
        out.push_str(if first { "\n    " } else { ",\n    " });
        first = false;
        write_escaped(out, key);
        out.push_str(": ");
        write_value(out, &value);
    }
    if !first {
        out.push_str("\n  ");
    }
}

/// Writes a JSON string literal with the minimal escaping metric names can
/// need.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes a finite f64 (JSON has no NaN/infinity — they become `null`).
fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let s = format!("{v}");
        out.push_str(&s);
        // Display prints integral floats without a decimal point; keep
        // the value a JSON number that reads back as f64 regardless.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_histogram(out: &mut String, h: &HistogramSnapshot) {
    out.push_str(&format!(
        "{{\"count\": {}, \"sum\": {}, \"mean\": ",
        h.count, h.sum
    ));
    write_f64(out, h.mean);
    out.push_str(&format!(
        ", \"min\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
        h.min, h.max, h.p50, h.p90, h.p99
    ));
    for (i, b) in h.buckets.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"lo\": {}, \"hi\": {}, \"count\": {}}}",
            b.lo, b.hi, b.count
        ));
    }
    out.push_str("]}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        let r = crate::Registry::new();
        r.counter("cache.hits").add(3);
        r.counter("cache.misses").add(1);
        r.gauge("pool.utilization").set(0.75);
        let h = r.histogram("personalize.weighted_ns");
        h.record(0);
        h.record(1_000);
        h.record(2_000);
        r.snapshot()
    }

    #[test]
    fn to_json_contains_every_metric() {
        let json = sample_snapshot().to_json();
        assert!(json.contains("\"cache.hits\": 3"));
        assert!(json.contains("\"cache.misses\": 1"));
        assert!(json.contains("\"pool.utilization\": 0.75"));
        assert!(json.contains("\"personalize.weighted_ns\""));
        assert!(json.contains("\"count\": 3"));
        assert!(json.contains("\"buckets\": ["));
    }

    #[test]
    fn empty_snapshot_renders_empty_maps() {
        let json = Snapshot::default().to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"gauges\": {}"));
        assert!(json.contains("\"histograms\": {}"));
        assert!(Snapshot::default().is_empty());
    }

    #[test]
    fn escaping_covers_quotes_and_control_chars() {
        let mut s = String::new();
        write_escaped(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "\"a\\\"b\\\\c\\u000ad\"");
    }

    #[test]
    fn non_finite_gauges_become_null() {
        let mut snap = Snapshot::default();
        snap.gauges.insert("bad".into(), f64::NAN);
        assert!(snap.to_json().contains("\"bad\": null"));
    }

    #[test]
    fn integral_floats_stay_json_floats() {
        let mut s = String::new();
        write_f64(&mut s, 2.0);
        assert_eq!(s, "2.0");
    }
}
