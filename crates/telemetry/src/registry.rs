//! The name → metric table.

use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::Snapshot;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// A named collection of metrics. Metrics are created on first use and
/// live for the registry's lifetime; handles are `Arc`s, so hot paths can
/// look a metric up once and record lock-free afterwards.
///
/// The free functions in the crate root ([`crate::count`],
/// [`crate::observe`], …) record into the process-global registry
/// ([`crate::global`]); standalone registries are for tests and embedded
/// collectors.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// Registry locks never hold user code, so poisoning (a panic while
/// holding the lock) cannot leave a metric half-written — recover the
/// guard instead of propagating the panic into the serving path.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The named counter, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = lock(&self.counters);
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        map.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// The named gauge, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = lock(&self.gauges);
        if let Some(g) = map.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::new());
        map.insert(name.to_string(), Arc::clone(&g));
        g
    }

    /// The named histogram, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = lock(&self.histograms);
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// A point-in-time view of every metric, with sorted names.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: lock(&self.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: lock(&self.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: lock(&self.histograms)
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Removes every metric. Outstanding `Arc` handles keep recording
    /// into their (now unlisted) metrics; new lookups start fresh.
    pub fn reset(&self) {
        lock(&self.counters).clear();
        lock(&self.gauges).clear();
        lock(&self.histograms).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_same_metric() {
        let r = Registry::new();
        r.counter("a").add(1);
        r.counter("a").add(2);
        assert_eq!(r.counter("a").get(), 3);
        assert!(Arc::ptr_eq(&r.histogram("h"), &r.histogram("h")));
    }

    #[test]
    fn snapshot_lists_sorted_names() {
        let r = Registry::new();
        r.counter("z").add(1);
        r.counter("a").add(1);
        r.gauge("m").set(2.0);
        r.histogram("h").record(7);
        let snap = r.snapshot();
        let names: Vec<&String> = snap.counters.keys().collect();
        assert_eq!(names, vec!["a", "z"]);
        assert_eq!(snap.gauges.len(), 1);
        assert_eq!(snap.histograms["h"].count, 1);
    }

    #[test]
    fn reset_empties_the_registry() {
        let r = Registry::new();
        r.counter("a").add(1);
        r.reset();
        let snap = r.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }
}
