//! Snapshot serde roundtrips, including through the hand-rolled JSON
//! writer.

use capnn_telemetry::{Registry, Snapshot};

fn populated_snapshot() -> Snapshot {
    let r = Registry::new();
    r.counter("cache.hits").add(7);
    r.counter("drift.repersonalize").add(2);
    r.gauge("pool.utilization").set(0.375);
    r.gauge("personalize.last_relative_size").set(0.62);
    let h = r.histogram("exec.layer00_conv_ns");
    for v in [0u64, 1, 130, 131, 5_000, 1 << 40] {
        h.record(v);
    }
    r.snapshot()
}

#[test]
fn snapshot_roundtrips_through_serde_json() {
    let snap = populated_snapshot();
    let json = serde_json::to_string(&snap).expect("serializes");
    let back: Snapshot = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, snap);
}

#[test]
fn hand_rolled_json_parses_back_equal() {
    let snap = populated_snapshot();
    let back: Snapshot = serde_json::from_str(&snap.to_json()).expect("valid JSON");
    assert_eq!(back, snap);
}

#[test]
fn empty_snapshot_roundtrips() {
    let snap = Snapshot::default();
    let back: Snapshot = serde_json::from_str(&snap.to_json()).expect("valid JSON");
    assert_eq!(back, snap);
    let back: Snapshot =
        serde_json::from_str(&serde_json::to_string(&snap).unwrap()).expect("deserializes");
    assert_eq!(back, snap);
}
