//! Threaded stress tests: the serving front-end's shared state under
//! concurrent load.
//!
//! The worker pool and any number of submitting threads funnel through
//! [`SharedFleetCache`] — one mutex over the [`FleetPlanCache`] and its
//! cloud. These tests pound that surface from many threads and assert the
//! properties the server relies on: no lost hit/miss/eviction counter
//! updates (every `plan_for` call is exactly one hit or one miss), and
//! resident bytes never exceeding the budget even under concurrent
//! compile + evict churn. A second group drives the whole
//! [`InferenceServer`] from concurrent submitters and checks every
//! admitted request is answered exactly once.

use capnn_core::{
    CapnnError, CloudServer, FleetPlanCache, InferenceServer, PruningConfig, ServeRequest,
    ServerConfig, SharedFleetCache, UserProfile, Variant,
};
use capnn_data::{VectorClusters, VectorClustersConfig};
use capnn_nn::{NetworkBuilder, Precision, Trainer, TrainerConfig};
use capnn_tensor::{Tensor, XorShiftRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const CLASSES: usize = 8;
const INPUT_DIM: usize = 10;

/// A trained 8-class cloud big enough to give distinct class sets
/// distinct plans, small enough to compile fast under churn.
fn stress_cloud() -> CloudServer {
    let gen = VectorClusters::new(VectorClustersConfig::easy(CLASSES, INPUT_DIM)).unwrap();
    let mut net = NetworkBuilder::mlp(&[INPUT_DIM, 24, 16, CLASSES], 5)
        .build()
        .unwrap();
    let cfg = TrainerConfig {
        epochs: 6,
        ..TrainerConfig::default()
    };
    Trainer::new(cfg, 1)
        .fit(&mut net, gen.generate(20, 1).samples())
        .unwrap();
    CloudServer::new(
        net,
        &gen.generate(12, 2),
        &gen.generate(8, 3),
        PruningConfig::fast(),
    )
    .unwrap()
}

/// Profiles spanning many distinct class sets (distinct canonical masks),
/// so a tight budget must evict.
fn churn_profiles() -> Vec<UserProfile> {
    let mut profiles = Vec::new();
    for a in 0..CLASSES {
        profiles.push(UserProfile::uniform(vec![a]).unwrap());
        for b in (a + 1)..CLASSES {
            profiles.push(UserProfile::uniform(vec![a, b]).unwrap());
        }
    }
    profiles
}

#[test]
fn concurrent_plan_for_loses_no_counter_updates() {
    let shared = Arc::new(SharedFleetCache::new(
        stress_cloud(),
        FleetPlanCache::with_budget(16, None).unwrap(),
    ));
    let profiles = Arc::new(churn_profiles());
    let threads = 8;
    let per_thread = 200;
    let calls = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let shared = Arc::clone(&shared);
            let profiles = Arc::clone(&profiles);
            let calls = Arc::clone(&calls);
            std::thread::spawn(move || {
                let mut rng = XorShiftRng::new(0xA11CE + t as u64);
                for _ in 0..per_thread {
                    let p = &profiles[rng.next_below(profiles.len())];
                    shared
                        .plan_for(p, Variant::Basic, Precision::F32)
                        .expect("plan");
                    calls.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("no panics");
    }
    let stats = shared.stats();
    // every call was exactly one hit or one miss — a lost update under
    // the shared mutex would break this ledger
    assert_eq!(calls.load(Ordering::Relaxed), (threads * per_thread) as u64);
    assert_eq!(
        stats.hits + stats.misses,
        (threads * per_thread) as u64,
        "hits {} + misses {} must equal total calls",
        stats.hits,
        stats.misses
    );
    // unbounded cache: misses = one compile per canonical mask, no evictions
    assert_eq!(stats.misses, shared.unique_masks() as u64);
    assert_eq!(stats.evictions, 0);
}

#[test]
fn concurrent_churn_respects_budget() {
    // budget sized to a fraction of the full mask population: concurrent
    // compile + evict churn from every thread
    let probe = Arc::new(SharedFleetCache::new(
        stress_cloud(),
        FleetPlanCache::with_budget(16, None).unwrap(),
    ));
    let profiles = churn_profiles();
    for p in &profiles {
        probe.plan_for(p, Variant::Basic, Precision::F32).unwrap();
    }
    let full_resident = probe.resident_bytes();
    let budget = full_resident / 3;

    let shared = Arc::new(SharedFleetCache::new(
        stress_cloud(),
        FleetPlanCache::with_budget(16, Some(budget)).unwrap(),
    ));
    let profiles = Arc::new(profiles);
    let threads = 8;
    let per_thread = 150;
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let shared = Arc::clone(&shared);
            let profiles = Arc::clone(&profiles);
            std::thread::spawn(move || {
                let mut rng = XorShiftRng::new(0xB0B + t as u64);
                let mut max_seen = 0u64;
                for _ in 0..per_thread {
                    let p = &profiles[rng.next_below(profiles.len())];
                    shared
                        .plan_for(p, Variant::Basic, Precision::F32)
                        .expect("plan");
                    max_seen = max_seen.max(shared.resident_bytes());
                }
                max_seen
            })
        })
        .collect();
    let mut max_resident = 0u64;
    for w in workers {
        max_resident = max_resident.max(w.join().expect("no panics"));
    }
    let stats = shared.stats();
    assert!(
        stats.evictions > 0,
        "budget {budget} of {full_resident} must force evictions"
    );
    assert!(
        max_resident <= budget,
        "resident bytes peaked at {max_resident} over budget {budget}"
    );
    // the ledger holds under churn too: resident_bytes probes don't count
    assert_eq!(stats.hits + stats.misses, (threads * per_thread) as u64);
}

#[test]
fn server_under_concurrent_submitters_answers_every_request() {
    let server = Arc::new(
        InferenceServer::start(
            stress_cloud(),
            ServerConfig {
                workers: 2,
                queue_capacity: 256,
                max_dwell: Duration::from_millis(1),
                ..ServerConfig::default()
            },
        )
        .unwrap(),
    );
    let profiles = Arc::new(churn_profiles());
    let threads = 6;
    let per_thread = 100;
    let answered = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));
    let submitters: Vec<_> = (0..threads)
        .map(|t| {
            let server = Arc::clone(&server);
            let profiles = Arc::clone(&profiles);
            let answered = Arc::clone(&answered);
            let rejected = Arc::clone(&rejected);
            std::thread::spawn(move || {
                let mut rng = XorShiftRng::new(0x5EED + t as u64);
                for i in 0..per_thread {
                    let p = profiles[rng.next_below(profiles.len())].clone();
                    let x = Tensor::uniform(&[INPUT_DIM], -1.0, 1.0, &mut rng);
                    match server.submit(ServeRequest::new(p, x)) {
                        Ok(handle) => {
                            let resp = handle.wait().expect("worker answers");
                            assert!(resp.batch_size >= 1);
                            answered.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(CapnnError::Overloaded(_)) => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                            // backpressure: retry later is the contract;
                            // here we just note it and move on
                        }
                        Err(other) => panic!("submitter {t} request {i}: {other:?}"),
                    }
                }
            })
        })
        .collect();
    for s in submitters {
        s.join().expect("no submitter panics");
    }
    let server = Arc::into_inner(server).expect("all submitters joined");
    let stats = server.shutdown();
    let answered = answered.load(Ordering::Relaxed);
    let rejected_n = rejected.load(Ordering::Relaxed);
    assert_eq!(answered + rejected_n, (threads * per_thread) as u64);
    assert_eq!(stats.completed, answered);
    assert_eq!(stats.rejected, rejected_n);
    assert_eq!(stats.failed, 0);
    // cross-user batching must actually have happened at least once under
    // 6 concurrent submitters sharing 36 canonical plans
    assert!(stats.batches <= stats.completed);
}
