//! Drift-triggered hot-swap, end to end: the plan a server serves after a
//! background swap must be *bitwise* the plan a cold recompile for the
//! drifted profile produces — at every precision the user was served at —
//! and the swap must hold under concurrent submitters on a budgeted cache.
//!
//! Two layers:
//!
//! * a property test driving labeled drift through a live server for
//!   randomized (deployed class, drifted class, probe input) cases and
//!   comparing the post-swap output against `compile_with_precision` on
//!   the same cloud, for both [`Precision::F32`] and [`Precision::Int8`];
//! * a threaded stress test where every submitter phase-shifts its labels
//!   mid-stream, the cache budget stays respected throughout the
//!   swap churn, and each drifted user ends on the cold-recompile plan.

use capnn_core::{
    CloudServer, DriftConfig, DriftPolicy, FleetPlanCache, InferenceServer, PruningConfig,
    ServeRequest, ServerConfig, SharedFleetCache, UserProfile, Variant,
};
use capnn_data::{VectorClusters, VectorClustersConfig};
use capnn_nn::{NetworkBuilder, Precision, Trainer, TrainerConfig};
use capnn_tensor::{Tensor, XorShiftRng};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLASSES: usize = 4;
const INPUT_DIM: usize = 6;

/// A trained 4-class cloud, small enough that a swap (prune + compile at
/// two precisions) completes in milliseconds.
fn tiny_cloud() -> CloudServer {
    let gen = VectorClusters::new(VectorClustersConfig::easy(CLASSES, INPUT_DIM)).unwrap();
    let mut net = NetworkBuilder::mlp(&[INPUT_DIM, 16, 12, CLASSES], 11)
        .build()
        .unwrap();
    let cfg = TrainerConfig {
        epochs: 5,
        ..TrainerConfig::default()
    };
    Trainer::new(cfg, 1)
        .fit(&mut net, gen.generate(20, 1).samples())
        .unwrap();
    CloudServer::new(
        net,
        &gen.generate(12, 2),
        &gen.generate(8, 3),
        PruningConfig::fast(),
    )
    .unwrap()
}

fn input(seed: u64) -> Tensor {
    let mut rng = XorShiftRng::new(seed);
    Tensor::uniform(&[INPUT_DIM], -1.0, 1.0, &mut rng)
}

/// Decide after 16 observations, check every 8, swap at most once.
fn fast_drift(profile_k: usize) -> DriftConfig {
    DriftConfig {
        policy: DriftPolicy::builder()
            .divergence_threshold(0.2)
            .min_observations(16)
            .profile_k(profile_k)
            .build()
            .unwrap(),
        half_life: 32.0,
        check_interval: 8,
        cooldown: 1 << 30,
    }
}

/// Drives labeled requests at both precisions until the server has
/// hot-swapped, then returns. Panics past `deadline`.
fn drive_until_swapped(
    server: &InferenceServer,
    user: &UserProfile,
    label: usize,
    swaps_target: u64,
    seed_base: u64,
) {
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut i = 0u64;
    while server.stats().swaps < swaps_target {
        assert!(
            Instant::now() < deadline,
            "no hot-swap observed; stats {:?}",
            server.stats()
        );
        let precision = if i.is_multiple_of(2) {
            Precision::F32
        } else {
            Precision::Int8
        };
        server
            .infer(
                ServeRequest::new(user.clone(), input(seed_base + i))
                    .precision(precision)
                    .observed_class(label),
            )
            .unwrap();
        i += 1;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// For any deployed class, drifted class and probe input: once labeled
    /// traffic triggers a hot-swap, the served output equals a cold
    /// recompile of the drifted profile's mask — bitwise, at both
    /// precisions the user was served at (hence argmax-compatible too).
    #[test]
    fn hot_swapped_plan_matches_cold_recompile_at_both_precisions(
        deployed in 0usize..CLASSES,
        offset in 0usize..(CLASSES - 1),
        probe_seed in 0u64..1_000,
    ) {
        let drifted_class = (deployed + 1 + offset) % CLASSES;
        let server = InferenceServer::start(
            tiny_cloud(),
            ServerConfig {
                workers: 1,
                drift: Some(fast_drift(1)),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let user = UserProfile::uniform(vec![deployed]).unwrap();
        drive_until_swapped(&server, &user, drifted_class, 1, 10_000);

        let x = input(probe_seed);
        let drifted = UserProfile::uniform(vec![drifted_class]).unwrap();
        for precision in [Precision::F32, Precision::Int8] {
            let resp = server
                .infer(ServeRequest::new(user.clone(), x.clone()).precision(precision))
                .unwrap();
            let cold = server.cache().with_cloud(|cloud| {
                let mask = cloud.prune_mask(&drifted, Variant::Basic).unwrap();
                cloud
                    .network()
                    .compile_with_precision(&mask, precision)
                    .unwrap()
                    .forward(&x)
                    .unwrap()
            });
            prop_assert_eq!(
                resp.output.as_slice(),
                cold.as_slice(),
                "post-swap output must match cold recompile at {:?}",
                precision
            );
        }
        let stats = server.shutdown();
        prop_assert_eq!(stats.swaps, 1);
        prop_assert_eq!(stats.failed, 0);
        prop_assert_eq!(stats.swap_failed, 0);
    }
}

#[test]
fn concurrent_phase_shift_swaps_every_user_within_budget() {
    // Budget sized to exactly the live mask population (the four
    // single-class plans at F32): the swap pipeline must release each
    // user's stale plan or the third swap would blow the budget.
    let probe = SharedFleetCache::new(tiny_cloud(), FleetPlanCache::with_budget(16, None).unwrap());
    for c in 0..CLASSES {
        let p = UserProfile::uniform(vec![c]).unwrap();
        probe.plan_for(&p, Variant::Basic, Precision::F32).unwrap();
    }
    let budget = probe.resident_bytes();

    let threads = 3usize;
    let server = Arc::new(
        InferenceServer::start_with_cache(
            Arc::new(SharedFleetCache::new(
                tiny_cloud(),
                FleetPlanCache::with_budget(16, Some(budget)).unwrap(),
            )),
            ServerConfig {
                workers: 2,
                // moderate cooldown: the first post-shift check often fires
                // while the decayed top-1 is still the old class (a no-op
                // swap); the monitor must re-arm and converge on the real one
                drift: Some(DriftConfig {
                    cooldown: 48,
                    ..fast_drift(1)
                }),
                ..ServerConfig::default()
            },
        )
        .unwrap(),
    );
    let max_resident = Arc::new(AtomicU64::new(0));
    let submitters: Vec<_> = (0..threads)
        .map(|t| {
            let server = Arc::clone(&server);
            let max_resident = Arc::clone(&max_resident);
            std::thread::spawn(move || {
                let user = UserProfile::uniform(vec![t]).unwrap();
                // every user drifts toward the last class: no two users
                // swap into each other's old mask, so each stale
                // single-class plan must actually be released
                let target = CLASSES - 1;
                // phase A: labels agree with the deployed profile — the
                // monitor must keep the model
                for i in 0..48u64 {
                    server
                        .infer(
                            ServeRequest::new(user.clone(), input(t as u64 * 1_000 + i))
                                .observed_class(t),
                        )
                        .unwrap();
                    max_resident.fetch_max(server.cache().resident_bytes(), Ordering::Relaxed);
                }
                // phase B: labels shift to `target`; keep submitting until
                // every thread's monitor has swapped
                let deadline = Instant::now() + Duration::from_secs(120);
                let mut i = 0u64;
                while server.stats().swaps < threads as u64 {
                    assert!(
                        Instant::now() < deadline,
                        "thread {t}: swaps stuck at {:?}",
                        server.stats()
                    );
                    server
                        .infer(
                            ServeRequest::new(user.clone(), input(t as u64 * 1_000 + 500 + i))
                                .observed_class(target),
                        )
                        .unwrap();
                    max_resident.fetch_max(server.cache().resident_bytes(), Ordering::Relaxed);
                    i += 1;
                }
            })
        })
        .collect();
    for s in submitters {
        s.join().expect("no submitter panics");
    }

    // post-swap probe: every user now runs the cold-recompile plan of its
    // shifted profile, bitwise
    let x = input(42);
    for t in 0..threads {
        let user = UserProfile::uniform(vec![t]).unwrap();
        let shifted = UserProfile::uniform(vec![CLASSES - 1]).unwrap();
        let resp = server.infer(ServeRequest::new(user, x.clone())).unwrap();
        let cold = server.cache().with_cloud(|cloud| {
            let mask = cloud.prune_mask(&shifted, Variant::Basic).unwrap();
            cloud.network().compile(&mask).unwrap().forward(&x).unwrap()
        });
        assert_eq!(
            resp.output.as_slice(),
            cold.as_slice(),
            "user {t} not on the recompiled plan"
        );
    }

    let server = Arc::into_inner(server).expect("all submitters joined");
    let cache = Arc::clone(server.cache());
    let stats = server.shutdown();
    assert!(
        stats.swaps >= 2,
        "expected every monitor to swap: {stats:?}"
    );
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.swap_failed, 0);
    let max_seen = max_resident.load(Ordering::Relaxed);
    assert!(
        max_seen <= budget,
        "resident bytes peaked at {max_seen} over budget {budget}"
    );
    assert!(cache.stats().released >= 2, "stale plans must be released");
}
