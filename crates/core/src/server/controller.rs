//! Adaptive batch-size controller: converge on the throughput knee.
//!
//! `results/BENCH_serving.json` shows why a fixed batch size is wrong: on
//! the 1-core reference host the weight-bound serving MLP keeps gaining
//! through batch 32 (2.8×) while the conv-bound vgg_tiny peaks at batch 8
//! (1.51×) and *regresses* at 16/32. The controller learns the knee per
//! (model, precision) online: every dispatched batch reports its measured
//! per-sample execution latency, the controller folds it into an EWMA for
//! the nearest power-of-two bucket, and the dispatch target is the bucket
//! with the lowest per-sample cost — i.e. the highest throughput.
//!
//! Exploration is explicit and bounded: until every bucket has
//! `min_trials` measurements the controller sweeps the buckets in
//! ascending order; afterwards it exploits the argmin but re-probes a
//! neighbouring bucket every `explore_every`-th dispatch, so a knee that
//! moves (thermal throttling, a co-tenant stealing cores) is re-found
//! instead of frozen at the first answer.
//!
//! Measurements are also published into the `capnn-telemetry` histograms
//! (`server.batch_ns` et al.) for observability, but decisions read the
//! exact per-bucket EWMAs kept here: the telemetry histograms bucket by
//! powers of two, which cannot separate a 7.7 µs knee from an 8.6 µs
//! regression.

/// Tuning knobs for the [`BatchController`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerConfig {
    /// Largest batch the controller may target (buckets are the powers of
    /// two up to this, inclusive when it is itself a power of two).
    pub max_batch: usize,
    /// Measurements a bucket needs before the controller trusts it; until
    /// every bucket has this many, dispatches sweep the buckets in order.
    pub min_trials: u64,
    /// After exploration, every n-th dispatch probes a neighbour of the
    /// current best bucket instead of the best itself.
    pub explore_every: u64,
    /// EWMA smoothing factor in `(0, 1]` — the weight of the newest
    /// measurement.
    pub ewma_alpha: f64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            min_trials: 6,
            explore_every: 16,
            ewma_alpha: 0.25,
        }
    }
}

/// One bucket's learned state, for reports and benches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketStat {
    /// The batch size this bucket stands for.
    pub batch: usize,
    /// EWMA per-sample execution latency in nanoseconds (0 when untried).
    pub ewma_ns_per_sample: f64,
    /// Measurements folded into the EWMA.
    pub trials: u64,
}

/// A point-in-time view of a controller.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerSnapshot {
    /// Per-bucket learned state, ascending by batch size.
    pub buckets: Vec<BucketStat>,
    /// The batch size the controller currently believes is the knee.
    pub converged_batch: usize,
    /// Total dispatches the controller has steered.
    pub dispatches: u64,
    /// Whether every bucket has reached `min_trials` (exploration done).
    pub explored: bool,
}

/// Per-(model, precision) adaptive batch-size controller.
///
/// Not thread-safe by itself — the server keeps it inside the queue-state
/// mutex and calls it under that lock.
#[derive(Debug)]
pub(crate) struct BatchController {
    cfg: ControllerConfig,
    /// Pinned batch size (benchmark fixed-sweep mode); disables adaptation.
    fixed: Option<usize>,
    /// Candidate batch sizes: powers of two up to `max_batch`, plus
    /// `max_batch` itself when it is not a power of two.
    buckets: Vec<usize>,
    ewma_ns: Vec<f64>,
    trials: Vec<u64>,
    dispatches: u64,
    /// Alternates probe direction (up/down) around the best bucket.
    probe_up: bool,
}

impl BatchController {
    pub(crate) fn new(cfg: ControllerConfig, fixed: Option<usize>) -> Self {
        let mut buckets = Vec::new();
        let mut b = 1usize;
        while b <= cfg.max_batch {
            buckets.push(b);
            b = b.saturating_mul(2);
        }
        if *buckets.last().expect("max_batch >= 1") != cfg.max_batch {
            buckets.push(cfg.max_batch);
        }
        let n = buckets.len();
        Self {
            cfg,
            fixed,
            buckets,
            ewma_ns: vec![0.0; n],
            trials: vec![0; n],
            dispatches: 0,
            probe_up: true,
        }
    }

    /// The batch size the *next* dispatch should aim for. Pure — calling
    /// it repeatedly between dispatches returns the same answer; the
    /// server advances the dispatch counter via
    /// [`BatchController::on_dispatch`] when a batch actually leaves.
    pub(crate) fn planned_target(&self) -> usize {
        if let Some(fixed) = self.fixed {
            return fixed.min(self.cfg.max_batch).max(1);
        }
        // exploration sweep: smallest bucket still short on trials
        if let Some(i) = self.trials.iter().position(|&t| t < self.cfg.min_trials) {
            return self.buckets[i];
        }
        let best = self.best_index();
        if self.cfg.explore_every > 0
            && (self.dispatches + 1).is_multiple_of(self.cfg.explore_every)
        {
            let probe = if self.probe_up {
                (best + 1).min(self.buckets.len() - 1)
            } else {
                best.saturating_sub(1)
            };
            return self.buckets[probe];
        }
        self.buckets[best]
    }

    /// Advances the dispatch counter (and the probe direction when the
    /// dispatch was a probe). Call once per batch actually dispatched.
    pub(crate) fn on_dispatch(&mut self) {
        self.dispatches += 1;
        if self.cfg.explore_every > 0 && self.dispatches.is_multiple_of(self.cfg.explore_every) {
            self.probe_up = !self.probe_up;
        }
    }

    /// Folds one measured batch execution into the learner: `batch`
    /// samples ran in `per_sample_ns` each. Batches land in the nearest
    /// bucket (log-space), so dwell-flushed partial batches still teach
    /// the controller about the size that actually ran.
    pub(crate) fn record(&mut self, batch: usize, per_sample_ns: f64) {
        if batch == 0 || !per_sample_ns.is_finite() || per_sample_ns <= 0.0 {
            return;
        }
        let i = self.nearest_bucket(batch);
        if self.trials[i] == 0 {
            self.ewma_ns[i] = per_sample_ns;
        } else {
            let a = self.cfg.ewma_alpha;
            self.ewma_ns[i] = a * per_sample_ns + (1.0 - a) * self.ewma_ns[i];
        }
        self.trials[i] = self.trials[i].saturating_add(1);
    }

    /// The batch size the controller currently believes is the knee.
    pub(crate) fn converged_batch(&self) -> usize {
        self.fixed
            .unwrap_or_else(|| self.buckets[self.best_index()])
    }

    pub(crate) fn snapshot(&self) -> ControllerSnapshot {
        ControllerSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(self.ewma_ns.iter().zip(&self.trials))
                .map(|(&batch, (&ewma, &trials))| BucketStat {
                    batch,
                    ewma_ns_per_sample: ewma,
                    trials,
                })
                .collect(),
            converged_batch: self.converged_batch(),
            dispatches: self.dispatches,
            explored: self.trials.iter().all(|&t| t >= self.cfg.min_trials),
        }
    }

    /// Index of the bucket with the lowest per-sample EWMA among tried
    /// buckets. Near-ties (within 1 %) go to the *smaller* batch — equal
    /// throughput at lower batching means lower queueing latency.
    fn best_index(&self) -> usize {
        let mut best = 0usize;
        let mut best_ns = f64::INFINITY;
        for i in 0..self.buckets.len() {
            if self.trials[i] == 0 {
                continue;
            }
            if self.ewma_ns[i] < best_ns * 0.99 {
                best = i;
                best_ns = self.ewma_ns[i];
            }
        }
        if best_ns.is_infinite() {
            0
        } else {
            best
        }
    }

    /// Nearest bucket in log space for an observed batch size.
    fn nearest_bucket(&self, batch: usize) -> usize {
        let lb = (batch as f64).ln();
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, &b) in self.buckets.iter().enumerate() {
            let d = (lb - (b as f64).ln()).abs();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ControllerConfig {
        ControllerConfig {
            max_batch: 32,
            min_trials: 3,
            explore_every: 8,
            ewma_alpha: 0.3,
        }
    }

    /// Feeds the controller a synthetic latency surface: per-sample ns as
    /// a function of batch size. Dispatch loop mimics a saturated server
    /// (the planned target is always available in queue).
    fn converge(curve: impl Fn(usize) -> f64) -> BatchController {
        let mut c = BatchController::new(cfg(), None);
        for _ in 0..200 {
            let b = c.planned_target();
            c.on_dispatch();
            c.record(b, curve(b));
        }
        c
    }

    #[test]
    fn buckets_are_powers_of_two_up_to_max() {
        let c = BatchController::new(cfg(), None);
        assert_eq!(c.buckets, vec![1, 2, 4, 8, 16, 32]);
        let odd = BatchController::new(
            ControllerConfig {
                max_batch: 24,
                ..cfg()
            },
            None,
        );
        assert_eq!(odd.buckets, vec![1, 2, 4, 8, 16, 24]);
    }

    #[test]
    fn fixed_pin_overrides_learning() {
        let mut c = BatchController::new(cfg(), Some(8));
        assert_eq!(c.planned_target(), 8);
        for _ in 0..50 {
            c.on_dispatch();
            c.record(32, 1.0); // "evidence" that 32 is great
        }
        assert_eq!(c.planned_target(), 8);
        assert_eq!(c.converged_batch(), 8);
    }

    #[test]
    fn converges_to_small_batch_knee_like_vgg() {
        // vgg_tiny shape from BENCH_serving.json (1-core host): knee at 8,
        // regression at 16/32.
        let curve = |b: usize| match b {
            1 => 11600.0,
            2 => 8900.0,
            4 => 7900.0,
            8 => 7700.0,
            16 => 8200.0,
            _ => 8600.0,
        };
        let c = converge(curve);
        assert_eq!(c.converged_batch(), 8, "snapshot: {:?}", c.snapshot());
    }

    #[test]
    fn converges_to_large_batch_knee_like_mlp() {
        // serving_mlp shape: throughput keeps climbing to 32.
        let curve = |b: usize| match b {
            1 => 170900.0,
            2 => 164200.0,
            4 => 67400.0,
            8 => 61500.0,
            16 => 62400.0,
            _ => 59600.0,
        };
        let c = converge(curve);
        assert_eq!(c.converged_batch(), 32, "snapshot: {:?}", c.snapshot());
    }

    #[test]
    fn near_tie_prefers_smaller_batch() {
        // 0.5% apart: the smaller batch must win (lower queueing latency).
        let curve = |b: usize| if b >= 16 { 10000.0 } else { 10040.0 };
        let c = converge(curve);
        assert_eq!(c.converged_batch(), 1);
    }

    #[test]
    fn exploration_sweeps_every_bucket() {
        let mut c = BatchController::new(cfg(), None);
        let mut seen = Vec::new();
        for _ in 0..(6 * 3) {
            let b = c.planned_target();
            seen.push(b);
            c.on_dispatch();
            c.record(b, 1000.0);
        }
        for b in [1, 2, 4, 8, 16, 32] {
            assert!(seen.contains(&b), "bucket {b} never explored: {seen:?}");
        }
        assert!(c.snapshot().explored);
    }

    #[test]
    fn partial_batches_land_in_nearest_bucket() {
        let mut c = BatchController::new(cfg(), None);
        c.record(3, 500.0); // ln(3/2)=0.41 vs ln(4/3)=0.29 → bucket 4
        c.record(24, 500.0); // ln(24/16)=0.41 vs ln(32/24)=0.29 → bucket 32
        let snap = c.snapshot();
        let by_batch = |b: usize| snap.buckets.iter().find(|s| s.batch == b).unwrap().trials;
        assert_eq!(by_batch(4), 1);
        assert_eq!(by_batch(32), 1);
        assert_eq!(by_batch(16), 0);
    }

    #[test]
    fn degenerate_measurements_are_ignored() {
        let mut c = BatchController::new(cfg(), None);
        c.record(0, 100.0);
        c.record(4, f64::NAN);
        c.record(4, -5.0);
        assert!(c.snapshot().buckets.iter().all(|b| b.trials == 0));
    }

    #[test]
    fn probing_revisits_neighbours_after_convergence() {
        let curve = |b: usize| match b {
            8 => 100.0,
            _ => 200.0,
        };
        let mut c = converge(curve);
        // exploit phase: over explore_every dispatches we must see at
        // least one non-best target (the neighbour probe)
        let mut targets = Vec::new();
        for _ in 0..9 {
            let b = c.planned_target();
            targets.push(b);
            c.on_dispatch();
            c.record(b, curve(b));
        }
        assert!(targets.contains(&8));
        assert!(targets.iter().any(|&b| b != 8), "{targets:?}");
    }
}
