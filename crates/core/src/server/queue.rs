//! Per-plan request queues: the data the worker pool drains.
//!
//! Requests are admitted into one queue per *canonical plan* — the
//! [`FleetPlanCache`](crate::FleetPlanCache) collapses ProfileKey → deduped
//! mask → shared compiled plan, so two users whose profiles canonicalize to
//! the same plan land in the same queue and ride the same batch. The whole
//! structure lives inside one mutex; workers hold it only to pick and
//! drain, never across a batch execution.

use super::controller::BatchController;
use crate::cache::ProfileKey;
use crate::error::CapnnError;
use crate::server::ServeResponse;
use capnn_nn::{CompiledPlan, Precision};
use capnn_tensor::Tensor;
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

/// Queue key: the canonical plan's allocation address. Stable while the
/// queue holds its `Arc<CompiledPlan>`; a plan evicted from the fleet
/// cache and recompiled gets a fresh address and therefore a fresh queue,
/// which is exactly right — the two plans are distinct allocations.
pub(crate) type PlanKey = usize;

pub(crate) fn plan_key(plan: &Arc<CompiledPlan>) -> PlanKey {
    Arc::as_ptr(plan) as PlanKey
}

/// One admitted request waiting for dispatch.
pub(crate) struct Pending {
    pub input: Tensor,
    pub respond: mpsc::Sender<Result<ServeResponse, CapnnError>>,
    pub submitted: Instant,
    /// When drift detection is on and the request carried no explicit
    /// label, the profile key whose monitor the served argmax feeds.
    pub drift_key: Option<ProfileKey>,
}

/// All requests waiting on one canonical plan.
pub(crate) struct PlanQueue {
    pub plan: Arc<CompiledPlan>,
    pub precision: Precision,
    pub pending: Vec<Pending>,
}

impl PlanQueue {
    pub(crate) fn new(plan: Arc<CompiledPlan>) -> Self {
        let precision = plan.precision();
        Self {
            plan,
            precision,
            pending: Vec::new(),
        }
    }

    /// Submission time of the oldest pending request.
    pub(crate) fn oldest(&self) -> Option<Instant> {
        self.pending.first().map(|p| p.submitted)
    }
}

/// The mutex-guarded heart of the server: queues, controllers, shutdown.
pub(crate) struct QueueState {
    pub queues: HashMap<PlanKey, PlanQueue>,
    /// Total pending requests across all queues — the admission bound.
    pub total_queued: usize,
    /// One adaptive controller per precision. The server fronts a single
    /// model, so (model, precision) degenerates to precision here; a
    /// multi-model deployment runs one server per model.
    pub controllers: HashMap<Precision, BatchController>,
    pub shutdown: bool,
}

impl QueueState {
    pub(crate) fn new() -> Self {
        Self {
            queues: HashMap::new(),
            total_queued: 0,
            controllers: HashMap::new(),
            shutdown: false,
        }
    }
}
