//! Transfer-cost accounting for the cloud ⇄ device protocol.
//!
//! The paper's motivation is that storing (or shipping) full models for all
//! possible classes is overprovisioned for each user. This module puts
//! numbers on the protocol: how many bytes one personalization round-trip
//! actually moves, and how that compares to shipping the original model —
//! so the `CloudServer`'s value shows up in transport terms too, not just
//! on-device storage.

use crate::cloud::PersonalizedModel;
use capnn_nn::Network;
use serde::{Deserialize, Serialize};

/// Byte costs of one personalization round trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferCost {
    /// Upstream: the user profile (class ids + weights).
    pub request_bytes: u64,
    /// Downstream: the compacted model's parameters.
    pub model_bytes: u64,
    /// Downstream bytes had the cloud shipped the *original* model instead.
    pub full_model_bytes: u64,
}

impl TransferCost {
    /// Downstream saving relative to shipping the full model, in `[0, 1]`.
    pub fn downstream_saving(&self) -> f64 {
        if self.full_model_bytes == 0 {
            return 0.0;
        }
        1.0 - self.model_bytes as f64 / self.full_model_bytes as f64
    }

    /// Total bytes moved in the round trip.
    pub fn total_bytes(&self) -> u64 {
        self.request_bytes + self.model_bytes
    }
}

/// Computes the transfer cost of shipping `model` (produced against
/// `original`) at `bits_per_weight` parameter precision (the paper assumes
/// 16-bit weights).
///
/// The request is costed at 4 bytes per class id plus 1 byte per quantized
/// usage weight — negligible next to the model, which is the point.
///
/// # Panics
///
/// Panics if `bits_per_weight` is 0.
///
/// # Examples
///
/// ```
/// use capnn_core::transfer_cost;
/// # use capnn_core::{CloudServer, PruningConfig, UserProfile, Variant};
/// # use capnn_data::{VectorClusters, VectorClustersConfig};
/// # use capnn_nn::{NetworkBuilder, Trainer, TrainerConfig};
/// # let gen = VectorClusters::new(VectorClustersConfig::easy(4, 6)).unwrap();
/// # let mut net = NetworkBuilder::mlp(&[6, 16, 12, 4], 2).build().unwrap();
/// # let cfg = TrainerConfig { epochs: 6, ..TrainerConfig::default() };
/// # Trainer::new(cfg, 1).fit(&mut net, gen.generate(15, 1).samples()).unwrap();
/// # let original = net.clone();
/// # let mut cloud = CloudServer::new(
/// #     net, &gen.generate(10, 2), &gen.generate(8, 3), PruningConfig::fast()).unwrap();
/// # let profile = UserProfile::new(vec![0, 1], vec![0.9, 0.1]).unwrap();
/// # let model = cloud.personalize(&profile, Variant::Weighted).unwrap();
/// let cost = transfer_cost(&model, &original, 16);
/// assert!(cost.downstream_saving() >= 0.0);
/// ```
pub fn transfer_cost(
    model: &PersonalizedModel,
    original: &Network,
    bits_per_weight: u32,
) -> TransferCost {
    assert!(bits_per_weight > 0, "bits_per_weight must be positive");
    let to_bytes = |params: u64| (params * bits_per_weight as u64).div_ceil(8);
    TransferCost {
        request_bytes: 4 * model.profile.k() as u64 + model.profile.k() as u64,
        model_bytes: to_bytes(model.size.total() as u64),
        full_model_bytes: to_bytes(original.param_count() as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::{CloudServer, Variant};
    use crate::config::PruningConfig;
    use crate::user::UserProfile;
    use capnn_data::{VectorClusters, VectorClustersConfig};
    use capnn_nn::{NetworkBuilder, Trainer, TrainerConfig};

    fn rig() -> (Network, CloudServer) {
        let gen = VectorClusters::new(VectorClustersConfig::easy(4, 6)).unwrap();
        let mut net = NetworkBuilder::mlp(&[6, 16, 12, 4], 2).build().unwrap();
        let cfg = TrainerConfig {
            epochs: 10,
            ..TrainerConfig::default()
        };
        Trainer::new(cfg, 1)
            .fit(&mut net, gen.generate(25, 1).samples())
            .unwrap();
        let original = net.clone();
        let cloud = CloudServer::new(
            net,
            &gen.generate(15, 2),
            &gen.generate(10, 3),
            PruningConfig::fast(),
        )
        .unwrap();
        (original, cloud)
    }

    #[test]
    fn pruned_model_ships_fewer_bytes() {
        let (original, mut cloud) = rig();
        let profile = UserProfile::new(vec![0, 1], vec![0.9, 0.1]).unwrap();
        let model = cloud.personalize(&profile, Variant::Weighted).unwrap();
        let cost = transfer_cost(&model, &original, 16);
        assert!(cost.model_bytes <= cost.full_model_bytes);
        assert!(cost.downstream_saving() >= 0.0);
        assert_eq!(
            cost.full_model_bytes,
            (original.param_count() as u64 * 16).div_ceil(8)
        );
        assert!(cost.request_bytes < 100, "profile is tiny on the wire");
        assert_eq!(cost.total_bytes(), cost.request_bytes + cost.model_bytes);
    }

    #[test]
    fn saving_tracks_relative_size() {
        let (original, mut cloud) = rig();
        let profile = UserProfile::new(vec![2], vec![1.0]).unwrap();
        let model = cloud.personalize(&profile, Variant::Weighted).unwrap();
        let cost = transfer_cost(&model, &original, 16);
        let expected = 1.0 - model.relative_size;
        assert!(
            (cost.downstream_saving() - expected).abs() < 0.02,
            "saving {} vs 1 - relative size {}",
            cost.downstream_saving(),
            expected
        );
    }

    #[test]
    fn bits_scale_linearly() {
        let (original, mut cloud) = rig();
        let profile = UserProfile::new(vec![0, 3], vec![0.5, 0.5]).unwrap();
        let model = cloud.personalize(&profile, Variant::Basic).unwrap();
        let c16 = transfer_cost(&model, &original, 16);
        let c8 = transfer_cost(&model, &original, 8);
        assert_eq!(c16.model_bytes, 2 * c8.model_bytes);
    }

    #[test]
    #[should_panic(expected = "bits_per_weight must be positive")]
    fn zero_bits_panics() {
        let (original, mut cloud) = rig();
        let profile = UserProfile::new(vec![0], vec![1.0]).unwrap();
        let model = cloud.personalize(&profile, Variant::Basic).unwrap();
        let _ = transfer_cost(&model, &original, 0);
    }
}
