//! User profiles: the class subset and usage weights that drive
//! personalization.

use crate::error::CapnnError;
use capnn_data::UsageDistribution;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// The preferences of one user: the output classes they expect to encounter
/// and how often (weights sum to 1).
///
/// CAP'NN-B uses only the class set; CAP'NN-W/M also use the weights.
///
/// # Examples
///
/// ```
/// use capnn_core::UserProfile;
///
/// let p = UserProfile::new(vec![3, 7], vec![0.1, 0.9])?;
/// assert_eq!(p.k(), 2);
/// assert_eq!(p.weight_of(7), Some(0.9));
/// # Ok::<(), capnn_core::CapnnError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    classes: Vec<usize>,
    weights: Vec<f32>,
}

impl UserProfile {
    /// Creates a profile from classes and matching usage weights.
    ///
    /// # Errors
    ///
    /// Returns [`CapnnError::Profile`] if the lists are empty, differ in
    /// length, contain duplicate classes, or the weights are not a
    /// probability distribution.
    pub fn new(classes: Vec<usize>, weights: Vec<f32>) -> Result<Self, CapnnError> {
        if classes.is_empty() {
            return Err(CapnnError::Profile(
                "profile must name at least one class".into(),
            ));
        }
        if classes.len() != weights.len() {
            return Err(CapnnError::Profile(format!(
                "{} classes but {} weights",
                classes.len(),
                weights.len()
            )));
        }
        let unique: HashSet<_> = classes.iter().collect();
        if unique.len() != classes.len() {
            return Err(CapnnError::Profile("duplicate classes in profile".into()));
        }
        if weights.iter().any(|&w| w < 0.0 || !w.is_finite()) {
            return Err(CapnnError::Profile(
                "weights must be finite and non-negative".into(),
            ));
        }
        let sum: f32 = weights.iter().sum();
        if (sum - 1.0).abs() > 1e-3 {
            return Err(CapnnError::Profile(format!(
                "weights must sum to 1, got {sum}"
            )));
        }
        Ok(Self { classes, weights })
    }

    /// Creates a profile with uniform usage over `classes`.
    ///
    /// # Errors
    ///
    /// Returns [`CapnnError::Profile`] if `classes` is empty or contains
    /// duplicates.
    pub fn uniform(classes: Vec<usize>) -> Result<Self, CapnnError> {
        let k = classes.len();
        Self::new(classes, vec![1.0 / k.max(1) as f32; k])
    }

    /// Creates a profile pairing `classes` with a [`UsageDistribution`] of
    /// the same length.
    ///
    /// # Errors
    ///
    /// Returns [`CapnnError::Profile`] on length mismatch or duplicate
    /// classes.
    pub fn with_distribution(
        classes: Vec<usize>,
        distribution: &UsageDistribution,
    ) -> Result<Self, CapnnError> {
        Self::new(classes, distribution.weights().to_vec())
    }

    /// Number of user classes (`K` in the paper).
    pub fn k(&self) -> usize {
        self.classes.len()
    }

    /// The user's classes.
    pub fn classes(&self) -> &[usize] {
        &self.classes
    }

    /// The usage weights, aligned with [`UserProfile::classes`].
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// The usage weight of `class`, or `None` if the user never encounters
    /// it.
    pub fn weight_of(&self, class: usize) -> Option<f32> {
        self.classes
            .iter()
            .position(|&c| c == class)
            .map(|i| self.weights[i])
    }

    /// Whether every class id is below `num_classes`.
    pub fn fits_model(&self, num_classes: usize) -> bool {
        self.classes.iter().all(|&c| c < num_classes)
    }
}

impl fmt::Display for UserProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UserProfile{{")?;
        for (i, (c, w)) in self.classes.iter().zip(&self.weights).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}:{:.0}%", w * 100.0)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(UserProfile::new(vec![], vec![]).is_err());
        assert!(UserProfile::new(vec![1], vec![0.5, 0.5]).is_err());
        assert!(UserProfile::new(vec![1, 1], vec![0.5, 0.5]).is_err());
        assert!(UserProfile::new(vec![1, 2], vec![0.5, 0.6]).is_err());
        assert!(UserProfile::new(vec![1, 2], vec![-0.5, 1.5]).is_err());
        assert!(UserProfile::new(vec![1, 2], vec![0.5, 0.5]).is_ok());
    }

    #[test]
    fn uniform_weights() {
        let p = UserProfile::uniform(vec![4, 9, 2]).unwrap();
        for &w in p.weights() {
            assert!((w - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn weight_lookup() {
        let p = UserProfile::new(vec![3, 7], vec![0.2, 0.8]).unwrap();
        assert_eq!(p.weight_of(3), Some(0.2));
        assert_eq!(p.weight_of(5), None);
    }

    #[test]
    fn from_distribution() {
        let d = UsageDistribution::from_percentages(&[10, 90]).unwrap();
        let p = UserProfile::with_distribution(vec![0, 1], &d).unwrap();
        assert_eq!(p.weights(), &[0.1, 0.9]);
        assert!(UserProfile::with_distribution(vec![0], &d).is_err());
    }

    #[test]
    fn fits_model_checks_range() {
        let p = UserProfile::uniform(vec![0, 9]).unwrap();
        assert!(p.fits_model(10));
        assert!(!p.fits_model(9));
    }

    #[test]
    fn display_shows_percentages() {
        let p = UserProfile::new(vec![3, 7], vec![0.1, 0.9]).unwrap();
        assert_eq!(p.to_string(), "UserProfile{3:10%, 7:90%}");
    }
}
