//! The cloud/device split of CAP'NN (§II, Fig. 1a).
//!
//! The cloud holds the original trained model, the precomputed firing rates,
//! confusion matrix and CAP'NN-B pruning matrices. On a user request it runs
//! the selected variant, compacts the masked network, and ships the smaller
//! model to the device. The device runs local inference, optionally
//! monitoring which classes it actually sees so it can request re-pruning
//! when the user's behaviour drifts.

use crate::capnn_b::{CapnnB, PruningMatrices};
use crate::capnn_m::CapnnM;
use crate::capnn_w::CapnnW;
use crate::config::PruningConfig;
use crate::error::CapnnError;
use crate::eval::TailEvaluator;
use crate::user::UserProfile;
use capnn_data::Dataset;
use capnn_nn::{
    model_size, CompiledPlan, Network, PanelPool, ParamCount, PlanScratch, Precision, PruneMask,
    Sparsity,
};
use capnn_profile::{ConfusionMatrix, FiringRateProfiler, FiringRates};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which CAP'NN variant to run for a personalization request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// CAP'NN-B: offline per-class matrices + online intersection.
    Basic,
    /// CAP'NN-W: weighted effective-firing-rate threshold search.
    Weighted,
    /// CAP'NN-M: miseffectual pruning on top of CAP'NN-W.
    Miseffectual,
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Variant::Basic => "CAP'NN-B",
            Variant::Weighted => "CAP'NN-W",
            Variant::Miseffectual => "CAP'NN-M",
        };
        f.write_str(name)
    }
}

/// A validated personalization request: who to personalize for, which
/// variant to run, and the request-level options.
///
/// Built through [`PersonalizationRequest::builder`], which validates the
/// variant is set and any config override passes
/// [`PruningConfig::validate`]. [`CloudServer::handle`] is the single entry
/// point that serves these requests.
///
/// # Examples
///
/// ```no_run
/// use capnn_core::{PersonalizationRequest, UserProfile, Variant};
///
/// let profile = UserProfile::new(vec![0, 1], vec![0.8, 0.2])?;
/// let req = PersonalizationRequest::builder(profile)
///     .variant(Variant::Weighted)
///     .certified(true)
///     .telemetry(true)
///     .build()?;
/// assert_eq!(req.variant(), Variant::Weighted);
/// # Ok::<(), capnn_core::CapnnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PersonalizationRequest {
    profile: UserProfile,
    variant: Variant,
    config_override: Option<PruningConfig>,
    certified: bool,
    telemetry: bool,
}

impl PersonalizationRequest {
    /// Starts building a request for `profile`.
    pub fn builder(profile: UserProfile) -> PersonalizationRequestBuilder {
        PersonalizationRequestBuilder {
            profile,
            variant: None,
            config_override: None,
            certified: false,
            telemetry: false,
        }
    }

    /// The profile to personalize for.
    pub fn profile(&self) -> &UserProfile {
        &self.profile
    }

    /// The CAP'NN variant to run.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// The per-request config override, if any.
    pub fn config_override(&self) -> Option<&PruningConfig> {
        self.config_override.as_ref()
    }

    /// Whether an ε certificate was requested.
    pub fn certified(&self) -> bool {
        self.certified
    }

    /// Whether this request opted into telemetry recording.
    pub fn telemetry(&self) -> bool {
        self.telemetry
    }
}

/// Builder for [`PersonalizationRequest`]; see its docs for an example.
#[derive(Debug, Clone)]
pub struct PersonalizationRequestBuilder {
    profile: UserProfile,
    variant: Option<Variant>,
    config_override: Option<PruningConfig>,
    certified: bool,
    telemetry: bool,
}

impl PersonalizationRequestBuilder {
    /// Selects the CAP'NN variant (required).
    pub fn variant(mut self, variant: Variant) -> Self {
        self.variant = Some(variant);
        self
    }

    /// Overrides the server's pruning configuration for this request only.
    /// The override may not change `tail_layers` (the server's profiler and
    /// evaluator are built for a fixed tail); [`CloudServer::handle`]
    /// rejects such requests.
    pub fn config(mut self, config: PruningConfig) -> Self {
        self.config_override = Some(config);
        self
    }

    /// Requests an auditable ε certificate alongside the model.
    pub fn certified(mut self, on: bool) -> Self {
        self.certified = on;
        self
    }

    /// Opts this request into telemetry recording (effective only when the
    /// process-wide `CAPNN_TELEMETRY` toggle is also on).
    pub fn telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Validates and finalizes the request.
    ///
    /// # Errors
    ///
    /// Returns [`CapnnError::Config`] if no variant was selected or the
    /// config override is invalid.
    pub fn build(self) -> Result<PersonalizationRequest, CapnnError> {
        let variant = self.variant.ok_or_else(|| {
            CapnnError::Config("personalization request needs a variant; call .variant(..)".into())
        })?;
        if let Some(config) = &self.config_override {
            config.validate()?;
        }
        Ok(PersonalizationRequest {
            profile: self.profile,
            variant,
            config_override: self.config_override,
            certified: self.certified,
            telemetry: self.telemetry,
        })
    }
}

/// What [`CloudServer::handle`] returns: the shipped model, the optional
/// certificate, and the server-side latency of the request.
#[derive(Debug, Clone)]
pub struct PersonalizationResponse {
    /// The personalized model package.
    pub model: PersonalizedModel,
    /// The ε certificate, present iff the request asked for one.
    pub certificate: Option<crate::PruningCertificate>,
    /// Wall-clock time the server spent on this request.
    pub latency: Duration,
}

/// The model package the cloud ships to a device.
#[derive(Debug, Clone)]
pub struct PersonalizedModel {
    /// The compacted (physically smaller) network.
    pub network: Network,
    /// The mask that produced it (against the cloud's full model).
    pub mask: PruneMask,
    /// Remaining parameters.
    pub size: ParamCount,
    /// Remaining parameters relative to the original model.
    pub relative_size: f64,
    /// The variant that produced the model.
    pub variant: Variant,
    /// The profile the model was personalized for.
    pub profile: UserProfile,
    /// The mask compiled once against the cloud's *full* model: packed
    /// weights, frozen geometry, original class coordinates. Shared by
    /// reference — the profile cache hands the same plan to every user with
    /// an equivalent profile.
    pub plan: Arc<CompiledPlan>,
}

/// The cloud side: owns the trained model and all offline pre-computation.
#[derive(Debug)]
pub struct CloudServer {
    net: Network,
    rates: FiringRates,
    confusion: ConfusionMatrix,
    eval: TailEvaluator,
    config: PruningConfig,
    matrices: Option<PruningMatrices>,
    original_size: ParamCount,
    /// Interns packed weight panels across every plan this server compiles:
    /// two personalized plans whose masks agree on a layer's kept sets share
    /// one `Arc`'d kernel instead of packing the panels twice.
    pool: PanelPool,
}

impl CloudServer {
    /// Stands up a cloud server: profiles firing rates and the confusion
    /// matrix on `profiling_data`, and prepares the ε-checking evaluator on
    /// `eval_data`.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid or the datasets do
    /// not match the network.
    pub fn new(
        net: Network,
        profiling_data: &Dataset,
        eval_data: &Dataset,
        config: PruningConfig,
    ) -> Result<Self, CapnnError> {
        config.validate()?;
        let rates = FiringRateProfiler::new(config.tail_layers).profile(&net, profiling_data)?;
        let confusion = ConfusionMatrix::measure(&net, profiling_data)?;
        let eval = TailEvaluator::new(&net, eval_data, config.tail_layers)?;
        let original_size = model_size(&net, &PruneMask::all_kept(&net))?;
        Ok(Self {
            net,
            rates,
            confusion,
            eval,
            config,
            matrices: None,
            original_size,
            pool: PanelPool::new(),
        })
    }

    /// The server's shared panel pool (packed-weight interning across
    /// compiled plans).
    pub fn panel_pool(&self) -> &PanelPool {
        &self.pool
    }

    /// Compiles `mask` against the cloud's full model through the shared
    /// panel pool: layers whose kept sets match an earlier compile reuse the
    /// already-packed (and, for [`Precision::Int8`], already-quantized)
    /// panels by reference.
    ///
    /// # Errors
    ///
    /// Propagates plan-compilation errors.
    pub fn compile_pooled(
        &self,
        mask: &PruneMask,
        precision: Precision,
    ) -> Result<Arc<CompiledPlan>, CapnnError> {
        self.compile_pooled_sparse(mask, precision, Sparsity::Dense)
    }

    /// [`CloudServer::compile_pooled`] at an explicit weight-sparsity
    /// tier: [`Sparsity::NM`] compresses every conv/dense kernel inside
    /// the mask's kept rows/columns. Sparse kernels intern in the same
    /// pool under sparsity-tagged keys, so dense and hybrid plans for
    /// overlapping kept sets coexist without aliasing each other's
    /// panels.
    ///
    /// # Errors
    ///
    /// Propagates plan-compilation errors (including degenerate `N:M`
    /// patterns).
    pub fn compile_pooled_sparse(
        &self,
        mask: &PruneMask,
        precision: Precision,
        sparsity: Sparsity,
    ) -> Result<Arc<CompiledPlan>, CapnnError> {
        Ok(Arc::new(CompiledPlan::compile_sparse(
            &self.net,
            mask,
            precision,
            sparsity,
            Some(&self.pool),
        )?))
    }

    /// The full (unpruned) model held in the cloud.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The measured firing rates.
    pub fn rates(&self) -> &FiringRates {
        &self.rates
    }

    /// The measured confusion matrix.
    pub fn confusion(&self) -> &ConfusionMatrix {
        &self.confusion
    }

    /// The ε-checking evaluator.
    pub fn evaluator(&self) -> &TailEvaluator {
        &self.eval
    }

    /// The pruning configuration.
    pub fn config(&self) -> &PruningConfig {
        &self.config
    }

    /// Runs CAP'NN-B's Algorithm 1 and caches the per-class matrices so
    /// subsequent [`Variant::Basic`] requests are a pure intersection.
    ///
    /// # Errors
    ///
    /// Propagates Algorithm 1 errors.
    pub fn precompute_basic_matrices(&mut self) -> Result<&PruningMatrices, CapnnError> {
        if self.matrices.is_none() {
            let b = CapnnB::new(self.config)?;
            self.matrices = Some(b.offline(&self.net, &self.rates, &self.eval)?);
        }
        self.matrices
            .as_ref()
            .ok_or_else(|| CapnnError::Internal("basic matrices vanished after compute".into()))
    }

    /// Computes the prune mask for a request without compacting (useful for
    /// analysis).
    ///
    /// # Errors
    ///
    /// Returns an error if the profile is invalid for this model or pruning
    /// fails.
    pub fn prune_mask(
        &mut self,
        profile: &UserProfile,
        variant: Variant,
    ) -> Result<PruneMask, CapnnError> {
        if !profile.fits_model(self.net.num_classes()) {
            return Err(CapnnError::Profile(format!(
                "profile {profile} does not fit a {}-class model",
                self.net.num_classes()
            )));
        }
        match variant {
            Variant::Basic => {
                self.precompute_basic_matrices()?;
                let matrices = self.matrices.as_ref().ok_or_else(|| {
                    CapnnError::Internal("basic matrices vanished after precompute".into())
                })?;
                CapnnB::online(&self.net, matrices, profile.classes())
            }
            Variant::Weighted => {
                CapnnW::new(self.config)?.prune(&self.net, &self.rates, &self.eval, profile)
            }
            Variant::Miseffectual => CapnnM::new(self.config)?.prune(
                &self.net,
                &self.rates,
                &self.confusion,
                &self.eval,
                profile,
            ),
        }
    }

    /// Serves one validated [`PersonalizationRequest`]: prune, compact,
    /// compile, optionally certify — the single entry point every
    /// personalization path funnels through.
    ///
    /// When the request opted into telemetry (and the process-wide toggle is
    /// on), the per-variant latency, shipped model size and relative size
    /// land in the global [`capnn_telemetry`] registry.
    ///
    /// # Errors
    ///
    /// Returns an error if the profile does not fit the model, the config
    /// override changes `tail_layers`, pruning fails, or compaction would
    /// empty a layer.
    pub fn handle(
        &mut self,
        req: &PersonalizationRequest,
    ) -> Result<PersonalizationResponse, CapnnError> {
        let start = Instant::now();
        let telemetry = req.telemetry && capnn_telemetry::enabled();
        let (model, certificate) = self.with_config(req.config_override, |server| {
            let model = server.personalize_impl(&req.profile, req.variant)?;
            let certificate = if req.certified {
                Some(server.eval.certify(
                    &model.mask,
                    req.profile.classes(),
                    server.config.epsilon,
                    server.config.metric,
                )?)
            } else {
                None
            };
            Ok((model, certificate))
        })?;
        let latency = start.elapsed();
        if telemetry {
            let reg = capnn_telemetry::global();
            reg.counter("personalize.requests").add(1);
            let probe = match req.variant {
                Variant::Basic => "personalize.basic_ns",
                Variant::Weighted => "personalize.weighted_ns",
                Variant::Miseffectual => "personalize.miseffectual_ns",
            };
            reg.histogram(probe)
                .record(u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX));
            reg.histogram("personalize.shipped_params")
                .record(model.size.total() as u64);
            reg.gauge("personalize.last_relative_size")
                .set(model.relative_size);
        }
        Ok(PersonalizationResponse {
            model,
            certificate,
            latency,
        })
    }

    /// Full personalization: prune, compact, and package the model for the
    /// device. Convenience wrapper over [`CloudServer::handle`] with
    /// telemetry opted in.
    ///
    /// # Errors
    ///
    /// Returns an error if pruning fails or compaction would empty a layer.
    pub fn personalize(
        &mut self,
        profile: &UserProfile,
        variant: Variant,
    ) -> Result<PersonalizedModel, CapnnError> {
        let req = PersonalizationRequest::builder(profile.clone())
            .variant(variant)
            .telemetry(true)
            .build()?;
        Ok(self.handle(&req)?.model)
    }

    /// Like [`CloudServer::personalize`], additionally producing the
    /// auditable ε certificate of the shipped mask over the user's classes.
    ///
    /// # Errors
    ///
    /// Returns an error if pruning, compaction or certification fails.
    pub fn personalize_certified(
        &mut self,
        profile: &UserProfile,
        variant: Variant,
    ) -> Result<(PersonalizedModel, crate::PruningCertificate), CapnnError> {
        let req = PersonalizationRequest::builder(profile.clone())
            .variant(variant)
            .certified(true)
            .telemetry(true)
            .build()?;
        let resp = self.handle(&req)?;
        let certificate = resp.certificate.ok_or_else(|| {
            CapnnError::Internal("certified request produced no certificate".into())
        })?;
        Ok((resp.model, certificate))
    }

    /// The personalization body shared by [`CloudServer::handle`] and the
    /// convenience wrappers.
    fn personalize_impl(
        &mut self,
        profile: &UserProfile,
        variant: Variant,
    ) -> Result<PersonalizedModel, CapnnError> {
        let mask = self.prune_mask(profile, variant)?;
        let size = model_size(&self.net, &mask)?;
        let network = self.net.compact(&mask)?;
        let plan = self.compile_pooled(&mask, Precision::F32)?;
        Ok(PersonalizedModel {
            network,
            relative_size: size.relative_to(&self.original_size),
            size,
            mask,
            variant,
            profile: profile.clone(),
            plan,
        })
    }

    /// Runs `f` under a per-request config override, restoring the server's
    /// own config (and its config-tied CAP'NN-B matrices) afterwards — even
    /// when `f` fails.
    fn with_config<T>(
        &mut self,
        config_override: Option<PruningConfig>,
        f: impl FnOnce(&mut Self) -> Result<T, CapnnError>,
    ) -> Result<T, CapnnError> {
        let Some(config) = config_override else {
            return f(self);
        };
        if config == self.config {
            return f(self);
        }
        if config.tail_layers != self.config.tail_layers {
            return Err(CapnnError::Config(format!(
                "config override changes tail_layers ({} -> {}); the server's profiler \
                 and evaluator are built for a fixed tail — stand up a new server instead",
                self.config.tail_layers, config.tail_layers
            )));
        }
        // The cached CAP'NN-B matrices are products of the active config;
        // stash them so the override cannot serve stale intersections.
        let prev_config = std::mem::replace(&mut self.config, config);
        let prev_matrices = self.matrices.take();
        let result = f(self);
        self.config = prev_config;
        self.matrices = prev_matrices;
        result
    }
}

/// The device side: runs local inference and monitors class usage.
///
/// Inference is served through a [`CompiledPlan`] — packed weights, frozen
/// geometry, reusable scratch — rather than re-masking the network on each
/// call; [`LocalDevice::infer_batch`] additionally amortizes im2col and
/// weight traffic across a request batch.
#[derive(Debug, Clone)]
pub struct LocalDevice {
    model: Network,
    plan: Arc<CompiledPlan>,
    scratch: PlanScratch,
    /// How many times each class has been predicted since the last reset.
    usage_counts: Vec<u64>,
}

impl LocalDevice {
    /// Deploys a plain (unpruned or already-compacted) model on the device,
    /// compiling an all-kept execution plan for it.
    ///
    /// # Errors
    ///
    /// Returns an error if plan compilation fails (impossible for a network
    /// that validated at construction, but surfaced instead of panicking).
    pub fn deploy(model: Network) -> Result<Self, CapnnError> {
        let classes = model.num_classes();
        let plan = model.compile(&PruneMask::all_kept(&model))?;
        Ok(Self {
            model,
            plan: Arc::new(plan),
            scratch: PlanScratch::new(),
            usage_counts: vec![0; classes],
        })
    }

    /// Deploys a cloud personalization package, *sharing* its compiled plan
    /// (no per-device compilation; the plan keeps original class ids even
    /// when output units are pruned).
    pub fn deploy_personalized(model: &PersonalizedModel) -> Self {
        let classes = model.plan.num_classes();
        Self {
            model: model.network.clone(),
            plan: Arc::clone(&model.plan),
            scratch: PlanScratch::new(),
            usage_counts: vec![0; classes],
        }
    }

    /// The currently deployed model.
    pub fn model(&self) -> &Network {
        &self.model
    }

    /// The execution plan serving this device's inference.
    pub fn plan(&self) -> &Arc<CompiledPlan> {
        &self.plan
    }

    /// Runs inference through the compiled plan, recording the predicted
    /// class in the usage monitor.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape does not match the model.
    pub fn infer(&mut self, input: &capnn_tensor::Tensor) -> Result<usize, CapnnError> {
        capnn_telemetry::count("device.inferences", 1);
        let out = self.plan.forward_with_scratch(input, &mut self.scratch)?;
        let pred = out.argmax().unwrap_or(0);
        if pred < self.usage_counts.len() {
            self.usage_counts[pred] += 1;
        }
        Ok(pred)
    }

    /// Runs a whole request batch through the plan's batched path (one wide
    /// im2col + GEMM per conv layer), recording every prediction in the
    /// usage monitor. Predictions are identical to per-sample
    /// [`LocalDevice::infer`] calls.
    ///
    /// # Errors
    ///
    /// Returns an error if any input shape does not match the model.
    pub fn infer_batch(
        &mut self,
        inputs: &[capnn_tensor::Tensor],
    ) -> Result<Vec<usize>, CapnnError> {
        capnn_telemetry::count("device.inferences", inputs.len() as u64);
        let outs = self
            .plan
            .forward_batch_with_scratch(inputs, &mut self.scratch)?;
        let preds: Vec<usize> = outs.iter().map(|o| o.argmax().unwrap_or(0)).collect();
        for &pred in &preds {
            if pred < self.usage_counts.len() {
                self.usage_counts[pred] += 1;
            }
        }
        Ok(preds)
    }

    /// Total inferences since the last reset.
    pub fn observed_total(&self) -> u64 {
        self.usage_counts.iter().sum()
    }

    /// Builds a [`UserProfile`] from the monitoring period: the `k` most
    /// frequently predicted classes, weighted by observed frequency
    /// (normalized over those `k`). This is the paper's "dedicated
    /// monitoring period" path for obtaining user preferences.
    ///
    /// # Errors
    ///
    /// Returns an error if no inferences have been observed or `k == 0`.
    pub fn observed_profile(&self, k: usize) -> Result<UserProfile, CapnnError> {
        if k == 0 {
            return Err(CapnnError::Profile("k must be positive".into()));
        }
        let total: u64 = self.usage_counts.iter().sum();
        if total == 0 {
            return Err(CapnnError::Profile(
                "no inferences observed during monitoring".into(),
            ));
        }
        let mut by_count: Vec<(usize, u64)> = self
            .usage_counts
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, n)| n > 0)
            .collect();
        by_count.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        by_count.truncate(k);
        let subtotal: u64 = by_count.iter().map(|&(_, n)| n).sum();
        let classes: Vec<usize> = by_count.iter().map(|&(c, _)| c).collect();
        let weights: Vec<f32> = by_count
            .iter()
            .map(|&(_, n)| n as f32 / subtotal as f32)
            .collect();
        UserProfile::new(classes, weights)
    }

    /// Clears the usage monitor (e.g. after re-personalizing).
    pub fn reset_monitor(&mut self) {
        self.usage_counts.iter_mut().for_each(|c| *c = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capnn_data::{VectorClusters, VectorClustersConfig};
    use capnn_nn::{NetworkBuilder, Trainer, TrainerConfig};

    fn cloud_rig() -> (CloudServer, VectorClusters) {
        let gen = VectorClusters::new(VectorClustersConfig::easy(4, 6)).unwrap();
        let mut net = NetworkBuilder::mlp(&[6, 16, 12, 4], 2).build().unwrap();
        let cfg = TrainerConfig {
            epochs: 12,
            ..TrainerConfig::default()
        };
        Trainer::new(cfg, 1)
            .fit(&mut net, gen.generate(30, 1).samples())
            .unwrap();
        let cloud = CloudServer::new(
            net,
            &gen.generate(20, 2),
            &gen.generate(15, 3),
            PruningConfig::fast(),
        )
        .unwrap();
        (cloud, gen)
    }

    #[test]
    fn personalize_all_variants_shrink_model() {
        let (mut cloud, _) = cloud_rig();
        let profile = UserProfile::new(vec![0, 1], vec![0.9, 0.1]).unwrap();
        for variant in [Variant::Basic, Variant::Weighted, Variant::Miseffectual] {
            let m = cloud.personalize(&profile, variant).unwrap();
            assert!(
                m.relative_size <= 1.0,
                "{variant}: relative size {}",
                m.relative_size
            );
            assert_eq!(m.network.num_classes(), 4);
            assert_eq!(m.variant, variant);
        }
    }

    #[test]
    fn weighted_not_larger_than_basic() {
        let (mut cloud, _) = cloud_rig();
        let profile = UserProfile::new(vec![0, 1], vec![0.9, 0.1]).unwrap();
        let b = cloud.personalize(&profile, Variant::Basic).unwrap();
        let w = cloud.personalize(&profile, Variant::Weighted).unwrap();
        assert!(w.relative_size <= b.relative_size + 1e-9);
    }

    #[test]
    fn basic_matrices_cached() {
        let (mut cloud, _) = cloud_rig();
        cloud.precompute_basic_matrices().unwrap();
        let p1 = cloud.matrices.clone().unwrap();
        cloud.precompute_basic_matrices().unwrap();
        assert_eq!(p1, cloud.matrices.clone().unwrap());
    }

    #[test]
    fn rejects_out_of_range_profile() {
        let (mut cloud, _) = cloud_rig();
        let profile = UserProfile::uniform(vec![0, 42]).unwrap();
        assert!(cloud.personalize(&profile, Variant::Weighted).is_err());
    }

    #[test]
    fn device_monitoring_recovers_usage() {
        let (mut cloud, gen) = cloud_rig();
        let profile = UserProfile::uniform(vec![0, 1, 2, 3]).unwrap();
        let m = cloud.personalize(&profile, Variant::Weighted).unwrap();
        let mut device = LocalDevice::deploy(m.network).unwrap();
        let mut rng = capnn_tensor::XorShiftRng::new(9);
        // user only ever sees classes 0 and 1, 3:1 ratio
        for i in 0..80 {
            let class = if i % 4 == 0 { 1 } else { 0 };
            let x = gen.sample(class, &mut rng);
            device.infer(&x).unwrap();
        }
        assert_eq!(device.observed_total(), 80);
        let observed = device.observed_profile(2).unwrap();
        assert_eq!(observed.k(), 2);
        // dominant observed class should be 0 with roughly 75% weight
        assert_eq!(observed.classes()[0], 0);
        assert!(observed.weights()[0] > 0.6);
        device.reset_monitor();
        assert_eq!(device.observed_total(), 0);
        assert!(device.observed_profile(2).is_err());
    }

    #[test]
    fn observed_profile_requires_k_positive() {
        let net = NetworkBuilder::mlp(&[2, 4, 2], 1).build().unwrap();
        let device = LocalDevice::deploy(net).unwrap();
        assert!(device.observed_profile(0).is_err());
    }

    #[test]
    fn plan_served_device_matches_masked_reference() {
        let (mut cloud, gen) = cloud_rig();
        let profile = UserProfile::new(vec![0, 1], vec![0.7, 0.3]).unwrap();
        let m = cloud.personalize(&profile, Variant::Weighted).unwrap();
        let mut device = LocalDevice::deploy_personalized(&m);
        assert!(Arc::ptr_eq(device.plan(), &m.plan));
        let mut rng = capnn_tensor::XorShiftRng::new(21);
        for class in [0usize, 1, 0, 1, 2] {
            let x = gen.sample(class, &mut rng);
            let expected = cloud
                .network()
                .forward_masked_reference_from(0, &x, &m.mask)
                .unwrap()
                .argmax()
                .unwrap();
            assert_eq!(device.infer(&x).unwrap(), expected);
        }
        assert_eq!(device.observed_total(), 5);
    }

    #[test]
    fn infer_batch_matches_per_sample_and_counts_usage() {
        let (mut cloud, gen) = cloud_rig();
        let profile = UserProfile::uniform(vec![0, 1, 2]).unwrap();
        let m = cloud.personalize(&profile, Variant::Weighted).unwrap();
        let mut rng = capnn_tensor::XorShiftRng::new(33);
        let inputs: Vec<capnn_tensor::Tensor> =
            (0..7).map(|i| gen.sample(i % 3, &mut rng)).collect();
        let mut batch_device = LocalDevice::deploy_personalized(&m);
        let batch_preds = batch_device.infer_batch(&inputs).unwrap();
        let mut single_device = LocalDevice::deploy_personalized(&m);
        let single_preds: Vec<usize> = inputs
            .iter()
            .map(|x| single_device.infer(x).unwrap())
            .collect();
        assert_eq!(batch_preds, single_preds);
        assert_eq!(batch_device.observed_total(), 7);
        assert_eq!(
            batch_device.observed_profile(2).unwrap(),
            single_device.observed_profile(2).unwrap()
        );
    }

    #[test]
    fn variant_display_names() {
        assert_eq!(Variant::Basic.to_string(), "CAP'NN-B");
        assert_eq!(Variant::Weighted.to_string(), "CAP'NN-W");
        assert_eq!(Variant::Miseffectual.to_string(), "CAP'NN-M");
    }

    #[test]
    fn request_builder_requires_variant_and_validates_config() {
        let profile = UserProfile::new(vec![0, 1], vec![0.5, 0.5]).unwrap();
        assert!(matches!(
            PersonalizationRequest::builder(profile.clone()).build(),
            Err(CapnnError::Config(_))
        ));
        let mut bad = PruningConfig::fast();
        bad.epsilon = -1.0;
        assert!(PersonalizationRequest::builder(profile.clone())
            .variant(Variant::Weighted)
            .config(bad)
            .build()
            .is_err());
        let req = PersonalizationRequest::builder(profile)
            .variant(Variant::Weighted)
            .certified(true)
            .build()
            .unwrap();
        assert_eq!(req.variant(), Variant::Weighted);
        assert!(req.certified());
        assert!(!req.telemetry());
    }

    #[test]
    fn handle_matches_personalize_and_reports_latency() {
        let (mut cloud, _) = cloud_rig();
        let profile = UserProfile::new(vec![0, 1], vec![0.9, 0.1]).unwrap();
        let direct = cloud.personalize(&profile, Variant::Weighted).unwrap();
        let req = PersonalizationRequest::builder(profile)
            .variant(Variant::Weighted)
            .certified(true)
            .build()
            .unwrap();
        let resp = cloud.handle(&req).unwrap();
        assert_eq!(resp.model.mask, direct.mask);
        assert_eq!(resp.model.size.total(), direct.size.total());
        assert!(resp.certificate.is_some());
        assert!(resp.latency > Duration::ZERO);
    }

    #[test]
    fn handle_config_override_restores_server_state() {
        let (mut cloud, _) = cloud_rig();
        let profile = UserProfile::new(vec![0, 1], vec![0.9, 0.1]).unwrap();
        let own = *cloud.config();
        cloud.precompute_basic_matrices().unwrap();
        let cached = cloud.matrices.clone();
        let mut looser = own;
        looser.epsilon = own.epsilon * 2.0;
        let req = PersonalizationRequest::builder(profile.clone())
            .variant(Variant::Basic)
            .config(looser)
            .build()
            .unwrap();
        cloud.handle(&req).unwrap();
        // override done: the server's own config and matrices are back
        assert_eq!(*cloud.config(), own);
        assert_eq!(cloud.matrices, cached);
        // the baseline request still behaves as before
        cloud.personalize(&profile, Variant::Basic).unwrap();
    }

    #[test]
    fn handle_rejects_tail_layer_override() {
        let (mut cloud, _) = cloud_rig();
        let profile = UserProfile::new(vec![0, 1], vec![0.9, 0.1]).unwrap();
        let mut other_tail = *cloud.config();
        other_tail.tail_layers += 1;
        let req = PersonalizationRequest::builder(profile)
            .variant(Variant::Weighted)
            .config(other_tail)
            .build()
            .unwrap();
        assert!(matches!(cloud.handle(&req), Err(CapnnError::Config(_))));
    }
}
