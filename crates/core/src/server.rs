//! Async multi-tenant serving front-end with adaptive cross-user batching.
//!
//! This is the piece that turns the kernel stack into a server: concurrent
//! [`ServeRequest`]s from many users are admitted into per-plan queues
//! keyed by the [`FleetPlanCache`] canonical plan (ProfileKey → deduped
//! mask → shared compiled plan), and a std-only worker pool drains those
//! queues into dynamic batches executed through
//! [`CompiledPlan::forward_batch_with_scratch`]. Requests from *different*
//! users batch together whenever their profiles canonicalize to the same
//! plan — the cross-user amortization the fleet cache was built to expose.
//!
//! Three serving behaviours are first-class:
//!
//! * **Adaptive batching** — a per-(model, precision)
//!   [`BatchController`](controller) learns the per-sample-latency-vs-batch
//!   curve from its own measurements and targets the throughput knee
//!   (`serving_mlp` → batch 32, `vgg_tiny` → batch 8 on the 1-core
//!   reference host, per `results/BENCH_serving.json`). A benchmark can pin
//!   [`ServerConfig::fixed_batch`] to sweep fixed sizes instead.
//! * **Deadline-aware flush** — no admitted request waits longer than
//!   [`ServerConfig::max_dwell`] for its batch to fill; overdue queues
//!   flush with whatever they hold.
//! * **Admission control & backpressure** — the total queued requests are
//!   bounded by [`ServerConfig::queue_capacity`]; beyond it
//!   [`InferenceServer::submit`] returns [`CapnnError::Overloaded`]
//!   immediately (typed rejection, never a panic or an unbounded buffer).
//!
//! The server never panics on the serving path: worker errors travel back
//! to the caller through the response channel as typed [`CapnnError`]s,
//! and mutex poisoning (impossible unless a kernel panics) is absorbed by
//! recovering the inner state.
//!
//! # Examples
//!
//! See the `server_*` tests in this module, the `server_stress`
//! integration test, and the `perf_server` bench bin.

mod controller;
mod queue;

pub use controller::{BucketStat, ControllerConfig, ControllerSnapshot};

use crate::cache::{CacheStats, FleetPlanCache};
use crate::cloud::{CloudServer, Variant};
use crate::error::CapnnError;
use crate::user::UserProfile;
use capnn_nn::{CompiledPlan, PlanScratch, Precision};
use capnn_tensor::Tensor;
use controller::BatchController;
use queue::{plan_key, Pending, PlanKey, PlanQueue, QueueState};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Locks a mutex, absorbing poisoning: a worker that panicked mid-hold
/// (only possible through a kernel bug) must not wedge the whole server.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Configuration of an [`InferenceServer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Worker threads draining the queues. Each worker executes one batch
    /// at a time; the batch itself may fan out further over the
    /// `capnn-tensor` pool.
    pub workers: usize,
    /// Admission bound: total requests allowed in queues across all plans.
    /// Submissions beyond it are rejected with [`CapnnError::Overloaded`].
    pub queue_capacity: usize,
    /// Largest batch a worker may drain at once (also the controller's
    /// largest bucket).
    pub max_batch: usize,
    /// Pin every dispatch to this batch size instead of adapting — the
    /// fixed-sweep mode benchmarks use to cross-check the controller.
    pub fixed_batch: Option<usize>,
    /// Deadline-aware flush: the longest an admitted request may wait in
    /// its queue before the queue is flushed at whatever size it reached.
    pub max_dwell: Duration,
    /// Usage-weight quantization steps for the fleet cache's
    /// [`crate::ProfileKey`] (only used by [`InferenceServer::start`],
    /// which builds the cache itself).
    pub weight_steps: u16,
    /// Plan-cache byte budget for [`InferenceServer::start`]: `None`
    /// defers to the `CAPNN_CACHE_BYTES` environment variable, `Some(0)`
    /// forces unbounded, any other value is the budget in bytes.
    pub cache_budget: Option<u64>,
    /// Adaptive-controller tuning (its `max_batch` is overridden by
    /// [`ServerConfig::max_batch`]).
    pub controller: ControllerConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(4);
        Self {
            workers,
            queue_capacity: 1024,
            max_batch: 32,
            fixed_batch: None,
            max_dwell: Duration::from_millis(2),
            weight_steps: 16,
            cache_budget: None,
            controller: ControllerConfig::default(),
        }
    }
}

impl ServerConfig {
    fn validate(&self) -> Result<(), CapnnError> {
        if self.workers == 0 {
            return Err(CapnnError::Config("server needs at least 1 worker".into()));
        }
        if self.queue_capacity == 0 {
            return Err(CapnnError::Config("queue_capacity must be positive".into()));
        }
        if self.max_batch == 0 {
            return Err(CapnnError::Config("max_batch must be positive".into()));
        }
        if let Some(f) = self.fixed_batch {
            if f == 0 || f > self.max_batch {
                return Err(CapnnError::Config(format!(
                    "fixed_batch {f} outside 1..={}",
                    self.max_batch
                )));
            }
        }
        if !(self.controller.ewma_alpha > 0.0 && self.controller.ewma_alpha <= 1.0) {
            return Err(CapnnError::Config(
                "controller ewma_alpha must be in (0, 1]".into(),
            ));
        }
        Ok(())
    }

    fn controller_config(&self) -> ControllerConfig {
        ControllerConfig {
            max_batch: self.max_batch,
            ..self.controller
        }
    }
}

/// One user's inference request: who (profile), what (input), how
/// (variant + precision).
#[derive(Debug, Clone)]
pub struct ServeRequest {
    profile: UserProfile,
    input: Tensor,
    variant: Variant,
    precision: Precision,
}

impl ServeRequest {
    /// A request with the default CAP'NN-B variant (mask depends only on
    /// the class set — the most cache-friendly choice) at f32.
    pub fn new(profile: UserProfile, input: Tensor) -> Self {
        Self {
            profile,
            input,
            variant: Variant::Basic,
            precision: Precision::F32,
        }
    }

    /// Selects the pruning variant.
    pub fn variant(mut self, variant: Variant) -> Self {
        self.variant = variant;
        self
    }

    /// Selects the numeric precision of the serving plan.
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }
}

/// The answer to one [`ServeRequest`], with its batching provenance.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// Logits in original class coordinates (pruned classes exact zero).
    pub output: Tensor,
    /// Top-1 class of `output`.
    pub argmax: usize,
    /// Size of the dynamic batch this request rode in.
    pub batch_size: usize,
    /// Time the request waited in its queue before dispatch.
    pub dwell: Duration,
    /// Execution time of the whole batch.
    pub exec: Duration,
}

/// Waits for one submitted request's response.
#[derive(Debug)]
pub struct ResponseHandle {
    rx: mpsc::Receiver<Result<ServeResponse, CapnnError>>,
}

impl ResponseHandle {
    /// Blocks until the response arrives.
    ///
    /// # Errors
    ///
    /// Propagates the worker's typed error, or [`CapnnError::Unavailable`]
    /// if the server dropped the request without answering (shutdown).
    pub fn wait(self) -> Result<ServeResponse, CapnnError> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(CapnnError::Unavailable("server dropped the request".into())))
    }

    /// Like [`ResponseHandle::wait`] with a timeout; `Ok(None)` means the
    /// response has not arrived yet.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ResponseHandle::wait`].
    pub fn wait_timeout(&self, timeout: Duration) -> Result<Option<ServeResponse>, CapnnError> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => result.map(Some),
            Err(mpsc::RecvTimeoutError::Timeout) => Ok(None),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Err(CapnnError::Unavailable("server dropped the request".into()))
            }
        }
    }
}

/// Counters of a running server (monotonic over its lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Requests admitted into queues.
    pub submitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Requests answered with a typed error.
    pub failed: u64,
    /// Dynamic batches dispatched.
    pub batches: u64,
}

impl ServerStats {
    /// Mean dispatched batch size so far (0 when no batch ran).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            (self.completed + self.failed) as f64 / self.batches as f64
        }
    }
}

#[derive(Default)]
struct AtomicStats {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
        }
    }
}

/// Thread-safe front door to one cloud's [`FleetPlanCache`]: the cache and
/// the cloud it compiles through, behind one mutex, shareable across the
/// worker pool and any number of submitting threads.
///
/// One mutex (rather than finer grains) is deliberate: `plan_for` reads
/// *and* writes the cache's LRU order, byte accounting and stats on every
/// call, so a single lock is both correct by construction — the
/// `server_stress` test pounds it from many threads and checks no counter
/// update is lost and residency never exceeds budget — and cheap, because
/// a cache hit holds it for well under a microsecond.
pub struct SharedFleetCache {
    inner: Mutex<SharedCacheInner>,
}

struct SharedCacheInner {
    cache: FleetPlanCache,
    cloud: CloudServer,
}

impl SharedFleetCache {
    /// Wraps a cloud and a fleet cache for concurrent use.
    pub fn new(cloud: CloudServer, cache: FleetPlanCache) -> Self {
        Self {
            inner: Mutex::new(SharedCacheInner { cache, cloud }),
        }
    }

    /// Resolves a profile to its canonical compiled plan (see
    /// [`FleetPlanCache::plan_for`]).
    ///
    /// # Errors
    ///
    /// Propagates pruning and compilation errors.
    pub fn plan_for(
        &self,
        profile: &UserProfile,
        variant: Variant,
        precision: Precision,
    ) -> Result<Arc<CompiledPlan>, CapnnError> {
        let mut inner = lock_recover(&self.inner);
        let SharedCacheInner { cache, cloud } = &mut *inner;
        cache.plan_for(cloud, profile, variant, precision)
    }

    /// Hit/miss/eviction/residency statistics of the wrapped cache.
    pub fn stats(&self) -> CacheStats {
        lock_recover(&self.inner).cache.stats()
    }

    /// Exact resident bytes of the wrapped cache.
    pub fn resident_bytes(&self) -> u64 {
        lock_recover(&self.inner).cache.resident_bytes()
    }

    /// Distinct canonical masks interned so far.
    pub fn unique_masks(&self) -> usize {
        lock_recover(&self.inner).cache.unique_masks()
    }

    /// The wrapped cache's byte budget.
    pub fn budget_bytes(&self) -> Option<u64> {
        lock_recover(&self.inner).cache.budget_bytes()
    }

    /// Swaps in a fresh cache (new budget, zeroed stats), keeping the
    /// cloud — benches reuse one profiled cloud across scenario rows.
    pub fn reset_cache(&self, cache: FleetPlanCache) {
        lock_recover(&self.inner).cache = cache;
    }

    /// Runs `f` with exclusive access to the wrapped cloud (e.g. to
    /// compile verification plans against the same network).
    pub fn with_cloud<R>(&self, f: impl FnOnce(&mut CloudServer) -> R) -> R {
        f(&mut lock_recover(&self.inner).cloud)
    }
}

impl std::fmt::Debug for SharedFleetCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedFleetCache").finish_non_exhaustive()
    }
}

struct Shared {
    cfg: ServerConfig,
    cache: Arc<SharedFleetCache>,
    state: Mutex<QueueState>,
    work: Condvar,
    stats: AtomicStats,
}

/// A cloneable, `'static` submit-only handle — client threads keep one of
/// these while the [`InferenceServer`] owns the workers.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// See [`InferenceServer::submit`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`InferenceServer::submit`].
    pub fn submit(&self, req: ServeRequest) -> Result<ResponseHandle, CapnnError> {
        submit_impl(&self.shared, req)
    }

    /// Submit-and-wait convenience.
    ///
    /// # Errors
    ///
    /// Same conditions as [`InferenceServer::submit`] plus any worker
    /// error.
    pub fn infer(&self, req: ServeRequest) -> Result<ServeResponse, CapnnError> {
        self.submit(req)?.wait()
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle").finish_non_exhaustive()
    }
}

/// The serving front-end: admission, per-plan queues, worker pool.
///
/// Dropping the server shuts it down gracefully: queues drain, workers
/// join, every in-flight request is answered.
pub struct InferenceServer {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl InferenceServer {
    /// Starts a server over `cloud`, building its own fleet cache from
    /// the config's `weight_steps` / `cache_budget`.
    ///
    /// # Errors
    ///
    /// Returns [`CapnnError::Config`] for an invalid configuration.
    pub fn start(cloud: CloudServer, cfg: ServerConfig) -> Result<Self, CapnnError> {
        let cache = match cfg.cache_budget {
            None => FleetPlanCache::new(cfg.weight_steps)?,
            Some(0) => FleetPlanCache::with_budget(cfg.weight_steps, None)?,
            Some(b) => FleetPlanCache::with_budget(cfg.weight_steps, Some(b))?,
        };
        Self::start_with_cache(Arc::new(SharedFleetCache::new(cloud, cache)), cfg)
    }

    /// Starts a server over an existing shared cache (benches reuse one
    /// profiled cloud across servers).
    ///
    /// # Errors
    ///
    /// Returns [`CapnnError::Config`] for an invalid configuration.
    pub fn start_with_cache(
        cache: Arc<SharedFleetCache>,
        cfg: ServerConfig,
    ) -> Result<Self, CapnnError> {
        cfg.validate()?;
        // Declare the counter/gauge probes up front so a telemetry
        // snapshot lists them even before the first rejection or drain
        // (histograms are left to populate from real traffic — a dummy
        // sample would pollute their quantiles).
        capnn_telemetry::count("server.rejected", 0);
        capnn_telemetry::set_gauge("server.queue_depth", 0.0);
        let shared = Arc::new(Shared {
            cfg,
            cache,
            state: Mutex::new(QueueState::new()),
            work: Condvar::new(),
            stats: AtomicStats::default(),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("capnn-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(|e| CapnnError::Internal(format!("spawning worker: {e}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { shared, workers })
    }

    /// Admits one request: resolves its canonical plan through the fleet
    /// cache and enqueues it for dynamic batching. Returns immediately
    /// with a [`ResponseHandle`].
    ///
    /// # Errors
    ///
    /// * [`CapnnError::Overloaded`] — queues at capacity (backpressure).
    /// * [`CapnnError::Unavailable`] — server is shutting down.
    /// * Pruning/compilation errors from plan resolution.
    pub fn submit(&self, req: ServeRequest) -> Result<ResponseHandle, CapnnError> {
        submit_impl(&self.shared, req)
    }

    /// Submit-and-wait convenience.
    ///
    /// # Errors
    ///
    /// Same conditions as [`InferenceServer::submit`] plus any worker
    /// error.
    pub fn infer(&self, req: ServeRequest) -> Result<ServeResponse, CapnnError> {
        self.submit(req)?.wait()
    }

    /// A cloneable `'static` submit-only handle for client threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The shared fleet cache this server resolves plans through.
    pub fn cache(&self) -> &Arc<SharedFleetCache> {
        &self.shared.cache
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats.snapshot()
    }

    /// Requests currently waiting in queues.
    pub fn queue_depth(&self) -> usize {
        lock_recover(&self.shared.state).total_queued
    }

    /// The adaptive controller's learned state for one precision (`None`
    /// until a request of that precision was dispatched).
    pub fn controller_snapshot(&self, precision: Precision) -> Option<ControllerSnapshot> {
        lock_recover(&self.shared.state)
            .controllers
            .get(&precision)
            .map(BatchController::snapshot)
    }

    /// Graceful shutdown: stops admission, drains every queue (workers
    /// answer all in-flight requests), joins the workers and returns the
    /// final counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.shutdown_in_place();
        self.shared.stats.snapshot()
    }

    fn shutdown_in_place(&mut self) {
        {
            let mut st = lock_recover(&self.shared.state);
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            // a worker that panicked already poisoned nothing we rely on;
            // surface it in tests via the failed counter instead
            let _ = w.join();
        }
    }
}

impl Drop for InferenceServer {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

impl std::fmt::Debug for InferenceServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferenceServer")
            .field("cfg", &self.shared.cfg)
            .field("stats", &self.shared.stats.snapshot())
            .finish_non_exhaustive()
    }
}

fn submit_impl(shared: &Shared, req: ServeRequest) -> Result<ResponseHandle, CapnnError> {
    // Cheap pre-checks under the queue lock before paying for plan
    // resolution: a shedding server must reject in O(1).
    {
        let st = lock_recover(&shared.state);
        if st.shutdown {
            return Err(CapnnError::Unavailable("server is shutting down".into()));
        }
        if st.total_queued >= shared.cfg.queue_capacity {
            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            capnn_telemetry::count("server.rejected", 1);
            return Err(CapnnError::Overloaded(format!(
                "queue at capacity ({})",
                shared.cfg.queue_capacity
            )));
        }
    }
    let plan = shared
        .cache
        .plan_for(&req.profile, req.variant, req.precision)?;
    let (tx, rx) = mpsc::channel();
    {
        let mut st = lock_recover(&shared.state);
        // Re-check under the same lock that enqueues: the bound is strict.
        if st.shutdown {
            return Err(CapnnError::Unavailable("server is shutting down".into()));
        }
        if st.total_queued >= shared.cfg.queue_capacity {
            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            capnn_telemetry::count("server.rejected", 1);
            return Err(CapnnError::Overloaded(format!(
                "queue at capacity ({})",
                shared.cfg.queue_capacity
            )));
        }
        let key = plan_key(&plan);
        let queue = st.queues.entry(key).or_insert_with(|| PlanQueue::new(plan));
        queue.pending.push(Pending {
            input: req.input,
            respond: tx,
            submitted: Instant::now(),
        });
        st.total_queued += 1;
        capnn_telemetry::set_gauge("server.queue_depth", st.total_queued as f64);
    }
    shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
    shared.work.notify_one();
    Ok(ResponseHandle { rx })
}

/// One dispatched batch, ready to execute outside the lock.
struct Job {
    plan: Arc<CompiledPlan>,
    precision: Precision,
    pending: Vec<Pending>,
}

fn worker_loop(shared: &Shared) {
    let mut scratch = PlanScratch::new();
    loop {
        let job = {
            let mut st = lock_recover(&shared.state);
            loop {
                if let Some(job) = take_job(&mut st, &shared.cfg) {
                    break Some(job);
                }
                if st.shutdown && st.total_queued == 0 {
                    break None;
                }
                match next_wakeup(&st, &shared.cfg) {
                    Some(wait) => {
                        let (guard, _) = shared
                            .work
                            .wait_timeout(st, wait)
                            .unwrap_or_else(|p| p.into_inner());
                        st = guard;
                    }
                    None => {
                        st = shared.work.wait(st).unwrap_or_else(|p| p.into_inner());
                    }
                }
            }
        };
        let Some(job) = job else { return };
        execute_job(shared, job, &mut scratch);
        // a drain may have unblocked a full-batch dispatch for a sibling
        shared.work.notify_one();
    }
}

/// Picks and drains the most dispatchable queue, if any. Priority:
/// full-batch-ready queues (deepest first — maximum amortization), then
/// deadline-overdue queues (most overdue first). Under shutdown every
/// nonempty queue is dispatchable.
fn take_job(st: &mut QueueState, cfg: &ServerConfig) -> Option<Job> {
    let now = Instant::now();
    let shutdown = st.shutdown;
    let mut full: Option<(PlanKey, usize, usize)> = None; // key, len, target
    let mut overdue: Option<(PlanKey, Duration, usize)> = None; // key, dwell, target
    for (&key, q) in st.queues.iter() {
        if q.pending.is_empty() {
            continue;
        }
        let target = st
            .controllers
            .get(&q.precision)
            .map(BatchController::planned_target)
            .unwrap_or_else(|| {
                BatchController::new(cfg.controller_config(), cfg.fixed_batch).planned_target()
            })
            .clamp(1, cfg.max_batch);
        let len = q.pending.len();
        if len >= target {
            if full.map(|(_, best, _)| len > best).unwrap_or(true) {
                full = Some((key, len, target));
            }
            continue;
        }
        let dwell = now.saturating_duration_since(q.oldest().expect("nonempty"));
        if (dwell >= cfg.max_dwell || shutdown)
            && overdue.map(|(_, best, _)| dwell > best).unwrap_or(true)
        {
            overdue = Some((key, dwell, target));
        }
    }
    let (key, take) = match (full, overdue) {
        (Some((key, _, target)), _) => (key, target),
        // an overdue queue flushes whatever it holds (it is below target)
        (None, Some((key, _, _))) => (key, cfg.max_batch),
        (None, None) => return None,
    };
    let queue = st.queues.get_mut(&key).expect("picked key exists");
    let n = take.min(queue.pending.len());
    let pending: Vec<Pending> = queue.pending.drain(..n).collect();
    let job = Job {
        plan: Arc::clone(&queue.plan),
        precision: queue.precision,
        pending,
    };
    if queue.pending.is_empty() {
        // drop the entry so the server does not pin evicted plans alive
        st.queues.remove(&key);
    }
    st.total_queued -= n;
    capnn_telemetry::set_gauge("server.queue_depth", st.total_queued as f64);
    let ctl = st
        .controllers
        .entry(job.precision)
        .or_insert_with(|| BatchController::new(cfg.controller_config(), cfg.fixed_batch));
    ctl.on_dispatch();
    Some(job)
}

/// Earliest deadline across queues: how long a worker may sleep before
/// some queue must be dwell-flushed. `None` → all queues empty.
fn next_wakeup(st: &QueueState, cfg: &ServerConfig) -> Option<Duration> {
    let now = Instant::now();
    st.queues
        .values()
        .filter_map(PlanQueue::oldest)
        .map(|oldest| {
            cfg.max_dwell
                .saturating_sub(now.saturating_duration_since(oldest))
        })
        .min()
        // never sleep zero in a tight loop; 10 µs re-checks promptly
        .map(|d| d.max(Duration::from_micros(10)))
}

fn execute_job(shared: &Shared, job: Job, scratch: &mut PlanScratch) {
    let n = job.pending.len();
    let dispatched = Instant::now();
    let mut inputs = Vec::with_capacity(n);
    let mut meta = Vec::with_capacity(n);
    for p in job.pending {
        inputs.push(p.input);
        meta.push((p.respond, p.submitted));
    }
    let result = job.plan.forward_batch_with_scratch(&inputs, scratch);
    let exec = dispatched.elapsed();
    capnn_telemetry::observe("server.batch_size", n as u64);
    capnn_telemetry::observe_duration("server.batch_ns", exec);
    shared.stats.batches.fetch_add(1, Ordering::Relaxed);
    match result {
        Ok(outputs) => {
            for (out, (respond, submitted)) in outputs.into_iter().zip(meta) {
                let dwell = dispatched.saturating_duration_since(submitted);
                capnn_telemetry::observe_duration("server.dwell_ns", dwell);
                let argmax = out.argmax().unwrap_or(0);
                // a gone client (dropped handle) is not an error
                let _ = respond.send(Ok(ServeResponse {
                    output: out,
                    argmax,
                    batch_size: n,
                    dwell,
                    exec,
                }));
            }
            shared
                .stats
                .completed
                .fetch_add(n as u64, Ordering::Relaxed);
        }
        Err(e) => {
            for (respond, _) in meta {
                let _ = respond.send(Err(CapnnError::Network(e.clone())));
            }
            shared.stats.failed.fetch_add(n as u64, Ordering::Relaxed);
        }
    }
    let per_sample_ns = exec.as_nanos() as f64 / n as f64;
    let mut st = lock_recover(&shared.state);
    let ctl = st.controllers.entry(job.precision).or_insert_with(|| {
        BatchController::new(shared.cfg.controller_config(), shared.cfg.fixed_batch)
    });
    ctl.record(n, per_sample_ns);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::Variant;
    use crate::config::PruningConfig;
    use capnn_data::{VectorClusters, VectorClustersConfig};
    use capnn_nn::{NetworkBuilder, Trainer, TrainerConfig};

    /// A trained 4-class cloud small enough for unit tests.
    fn tiny_cloud() -> CloudServer {
        let gen = VectorClusters::new(VectorClustersConfig::easy(4, 6)).unwrap();
        let mut net = NetworkBuilder::mlp(&[6, 16, 12, 4], 2).build().unwrap();
        let cfg = TrainerConfig {
            epochs: 12,
            ..TrainerConfig::default()
        };
        Trainer::new(cfg, 1)
            .fit(&mut net, gen.generate(30, 1).samples())
            .unwrap();
        CloudServer::new(
            net,
            &gen.generate(20, 2),
            &gen.generate(15, 3),
            PruningConfig::fast(),
        )
        .unwrap()
    }

    fn profile(classes: Vec<usize>) -> UserProfile {
        UserProfile::uniform(classes).unwrap()
    }

    fn input(seed: u64) -> Tensor {
        let mut rng = capnn_tensor::XorShiftRng::new(seed);
        Tensor::uniform(&[6], -1.0, 1.0, &mut rng)
    }

    #[test]
    fn config_validation() {
        let ok = ServerConfig::default();
        assert!(ok.validate().is_ok());
        assert!(ServerConfig { workers: 0, ..ok }.validate().is_err());
        assert!(ServerConfig {
            queue_capacity: 0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(ServerConfig { max_batch: 0, ..ok }.validate().is_err());
        assert!(ServerConfig {
            fixed_batch: Some(64),
            ..ok
        }
        .validate()
        .is_err());
        let mut bad_alpha = ok;
        bad_alpha.controller.ewma_alpha = 0.0;
        assert!(bad_alpha.validate().is_err());
    }

    #[test]
    fn serves_responses_matching_direct_plan_execution() {
        let cloud = tiny_cloud();
        let server = InferenceServer::start(
            cloud,
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        )
        .unwrap();

        let users = [
            profile(vec![0, 1]),
            profile(vec![1, 2]),
            profile(vec![2, 3]),
        ];
        let mut handles = Vec::new();
        for i in 0..24u64 {
            let user = users[(i % 3) as usize].clone();
            let req = ServeRequest::new(user, input(100 + i));
            handles.push((i, server.submit(req).unwrap()));
        }
        let mut responses = Vec::new();
        for (i, h) in handles {
            let resp = h.wait().unwrap();
            assert!(resp.batch_size >= 1);
            responses.push((i, resp));
        }
        // verify against direct per-profile compile + forward
        for (i, resp) in &responses {
            let user = &users[(*i % 3) as usize];
            let expect = server.cache().with_cloud(|cloud| {
                let mask = cloud.prune_mask(user, Variant::Basic).unwrap();
                cloud
                    .network()
                    .compile(&mask)
                    .unwrap()
                    .forward(&input(100 + i))
                    .unwrap()
            });
            assert_eq!(resp.output.as_slice(), expect.as_slice());
            assert_eq!(resp.argmax, expect.argmax().unwrap_or(0));
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 24);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.rejected, 0);
        assert!(stats.batches <= 24);
    }

    #[test]
    fn cross_user_requests_share_batches() {
        // same canonical plan (equal class set) → one dynamic batch
        let cloud = tiny_cloud();
        let server = InferenceServer::start(
            cloud,
            ServerConfig {
                workers: 1,
                fixed_batch: Some(8),
                max_dwell: Duration::from_millis(200),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        // two *distinct users* whose profiles share a ProfileKey
        let a = UserProfile::new(vec![0, 1], vec![0.5, 0.5]).unwrap();
        let b = UserProfile::new(vec![1, 0], vec![0.5, 0.5]).unwrap();
        let handles: Vec<_> = (0..8u64)
            .map(|i| {
                let user = if i % 2 == 0 { a.clone() } else { b.clone() };
                server
                    .submit(ServeRequest::new(user, input(7 + i)))
                    .unwrap()
            })
            .collect();
        for h in handles {
            let resp = h.wait().unwrap();
            assert_eq!(
                resp.batch_size, 8,
                "cross-user requests on one canonical plan must ride one batch"
            );
        }
        server.shutdown();
    }

    #[test]
    fn admission_control_rejects_overload_with_typed_error() {
        let cloud = tiny_cloud();
        // capacity 1, fixed batch 8, long dwell: the worker cannot
        // dispatch (queue never reaches 8), so the second submit must be
        // rejected deterministically.
        let server = InferenceServer::start(
            cloud,
            ServerConfig {
                workers: 1,
                queue_capacity: 1,
                fixed_batch: Some(8),
                max_dwell: Duration::from_secs(5),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let user = profile(vec![0, 1]);
        let first = server
            .submit(ServeRequest::new(user.clone(), input(1)))
            .unwrap();
        let mut rejections = 0;
        for i in 0..4u64 {
            match server.submit(ServeRequest::new(user.clone(), input(2 + i))) {
                Err(CapnnError::Overloaded(_)) => rejections += 1,
                other => panic!("expected Overloaded, got {other:?}"),
            }
        }
        assert_eq!(rejections, 4);
        assert_eq!(server.stats().rejected, 4);
        // shutdown drains the one admitted request
        let resp = {
            let stats = server.shutdown();
            assert_eq!(stats.completed, 1);
            first.wait().unwrap()
        };
        assert_eq!(resp.batch_size, 1);
    }

    #[test]
    fn dwell_deadline_flushes_partial_batches() {
        let cloud = tiny_cloud();
        let server = InferenceServer::start(
            cloud,
            ServerConfig {
                workers: 1,
                fixed_batch: Some(32),
                max_dwell: Duration::from_millis(5),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let user = profile(vec![0, 1]);
        let t0 = Instant::now();
        let resp = server.infer(ServeRequest::new(user, input(3))).unwrap();
        // a single request cannot fill batch 32 — the deadline flush must
        // serve it anyway, promptly
        assert_eq!(resp.batch_size, 1);
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "dwell flush took {:?}",
            t0.elapsed()
        );
        server.shutdown();
    }

    #[test]
    fn submit_after_shutdown_is_unavailable() {
        let cloud = tiny_cloud();
        let server = InferenceServer::start(cloud, ServerConfig::default()).unwrap();
        let handle = server.handle();
        server.shutdown();
        match handle.submit(ServeRequest::new(profile(vec![0]), input(4))) {
            Err(CapnnError::Unavailable(_)) => {}
            other => panic!("expected Unavailable, got {other:?}"),
        }
    }

    #[test]
    fn int8_requests_serve_from_int8_plans() {
        let cloud = tiny_cloud();
        let server = InferenceServer::start(cloud, ServerConfig::default()).unwrap();
        let user = profile(vec![0, 1]);
        let x = input(9);
        let resp = server
            .infer(ServeRequest::new(user.clone(), x.clone()).precision(Precision::Int8))
            .unwrap();
        let expect = server.cache().with_cloud(|cloud| {
            let mask = cloud.prune_mask(&user, Variant::Basic).unwrap();
            cloud
                .network()
                .compile_with_precision(&mask, Precision::Int8)
                .unwrap()
                .forward(&x)
                .unwrap()
        });
        assert_eq!(resp.output.as_slice(), expect.as_slice());
        server.shutdown();
    }

    #[test]
    fn mean_batch_math() {
        let s = ServerStats {
            completed: 30,
            failed: 2,
            batches: 8,
            ..Default::default()
        };
        assert!((s.mean_batch() - 4.0).abs() < 1e-12);
        assert_eq!(ServerStats::default().mean_batch(), 0.0);
    }
}
