//! Async multi-tenant serving front-end with adaptive cross-user batching.
//!
//! This is the piece that turns the kernel stack into a server: concurrent
//! [`ServeRequest`]s from many users are admitted into per-plan queues
//! keyed by the [`FleetPlanCache`] canonical plan (ProfileKey → deduped
//! mask → shared compiled plan), and a std-only worker pool drains those
//! queues into dynamic batches executed through
//! [`CompiledPlan::forward_batch_with_scratch`]. Requests from *different*
//! users batch together whenever their profiles canonicalize to the same
//! plan — the cross-user amortization the fleet cache was built to expose.
//!
//! Three serving behaviours are first-class:
//!
//! * **Adaptive batching** — a per-(model, precision)
//!   [`BatchController`](controller) learns the per-sample-latency-vs-batch
//!   curve from its own measurements and targets the throughput knee
//!   (`serving_mlp` → batch 32, `vgg_tiny` → batch 8 on the 1-core
//!   reference host, per `results/BENCH_serving.json`). A benchmark can pin
//!   [`ServerConfig::fixed_batch`] to sweep fixed sizes instead.
//! * **Deadline-aware flush** — no admitted request waits longer than
//!   [`ServerConfig::max_dwell`] for its batch to fill; overdue queues
//!   flush with whatever they hold.
//! * **Admission control & backpressure** — the total queued requests are
//!   bounded by [`ServerConfig::queue_capacity`]; beyond it
//!   [`InferenceServer::submit`] returns [`CapnnError::Overloaded`]
//!   immediately (typed rejection, never a panic or an unbounded buffer).
//! * **Online drift detection & zero-downtime hot-swap** — with
//!   [`ServerConfig::drift`] set, every served request feeds a per-profile
//!   [`StreamingDriftMonitor`] (its explicit
//!   [`observed_class`](ServeRequest::observed_class) label, or the served
//!   argmax when unlabeled). When a monitor raises
//!   [`Repersonalize`](crate::DriftDecision::Repersonalize), a background
//!   worker re-prunes, recompiles through the fleet cache's panel pool and
//!   atomically [`rebind`](FleetPlanCache::rebind)s the profile — all off
//!   the request path. Every request admitted after the rebind executes
//!   the new plan, in-flight batches drain on the old one, and the stale
//!   plan's residency is released so the cache stays within budget.
//!
//! The server never panics on the serving path: worker errors travel back
//! to the caller through the response channel as typed [`CapnnError`]s,
//! and mutex poisoning (impossible unless a kernel panics) is absorbed by
//! recovering the inner state.
//!
//! # Examples
//!
//! See the `server_*` tests in this module, the `server_stress`
//! integration test, and the `perf_server` bench bin.

mod controller;
mod queue;

pub use controller::{BucketStat, ControllerConfig, ControllerSnapshot};

use crate::cache::{CacheStats, FleetPlanCache, PlanLookup, ProfileKey};
use crate::cloud::{CloudServer, Variant};
use crate::error::CapnnError;
use crate::session::{DriftDecision, DriftPolicy, StreamingDriftMonitor};
use crate::user::UserProfile;
use capnn_nn::{CompiledPlan, PlanScratch, Precision, Sparsity};
use capnn_tensor::Tensor;
use controller::BatchController;
use queue::{plan_key, Pending, PlanKey, PlanQueue, QueueState};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Locks a mutex, absorbing poisoning: a worker that panicked mid-hold
/// (only possible through a kernel bug) must not wedge the whole server.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Configuration of the server's online drift-to-swap pipeline.
///
/// When attached via [`ServerConfig::drift`], the server keeps one
/// [`StreamingDriftMonitor`] per served [`ProfileKey`] and hands
/// [`Repersonalize`](crate::DriftDecision::Repersonalize) decisions to a
/// background recompile worker — see the module docs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Divergence threshold / minimum observations / replacement profile
    /// size (see [`DriftPolicy`]).
    pub policy: DriftPolicy,
    /// Observations over which past usage loses half its weight in the
    /// monitors' decayed profiles.
    pub half_life: f64,
    /// Observations between divergence checks per monitor.
    pub check_interval: u64,
    /// Observations a monitor stays silent after a swap (or after a failed
    /// one), so the fresh plan is judged on its own traffic.
    pub cooldown: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            policy: DriftPolicy::conservative(),
            half_life: 256.0,
            check_interval: 32,
            cooldown: 256,
        }
    }
}

impl DriftConfig {
    /// Builds the config from the environment, starting from the defaults:
    /// `CAPNN_DRIFT_THRESHOLD`, `CAPNN_DRIFT_MIN_OBS`,
    /// `CAPNN_DRIFT_PROFILE_K` (the policy), `CAPNN_DRIFT_HALF_LIFE`,
    /// `CAPNN_DRIFT_CHECK_INTERVAL`, `CAPNN_DRIFT_COOLDOWN`. Unset or
    /// blank variables keep their defaults.
    ///
    /// # Errors
    ///
    /// Returns [`CapnnError::Config`] for an unparsable variable (loudly,
    /// rather than silently serving with a default the operator did not
    /// ask for) or an invalid resulting configuration.
    pub fn from_env() -> Result<Self, CapnnError> {
        let mut cfg = Self::default();
        let mut policy = DriftPolicy::builder();
        if let Some(v) = env_parse::<f64>("CAPNN_DRIFT_THRESHOLD")? {
            policy = policy.divergence_threshold(v);
        }
        if let Some(v) = env_parse::<u64>("CAPNN_DRIFT_MIN_OBS")? {
            policy = policy.min_observations(v);
        }
        if let Some(v) = env_parse::<usize>("CAPNN_DRIFT_PROFILE_K")? {
            policy = policy.profile_k(v);
        }
        cfg.policy = policy.build()?;
        if let Some(v) = env_parse::<f64>("CAPNN_DRIFT_HALF_LIFE")? {
            cfg.half_life = v;
        }
        if let Some(v) = env_parse::<u64>("CAPNN_DRIFT_CHECK_INTERVAL")? {
            cfg.check_interval = v;
        }
        if let Some(v) = env_parse::<u64>("CAPNN_DRIFT_COOLDOWN")? {
            cfg.cooldown = v;
        }
        cfg.validate()?;
        Ok(cfg)
    }

    /// Mirrors [`StreamingDriftMonitor::new`]'s checks so an invalid config
    /// is rejected at server start, not on the first monitored request.
    fn validate(&self) -> Result<(), CapnnError> {
        self.policy.validate()?;
        if !self.half_life.is_finite() || self.half_life < 1.0 {
            return Err(CapnnError::Config(format!(
                "drift half-life must be finite and >= 1 observation, got {}",
                self.half_life
            )));
        }
        if self.check_interval == 0 {
            return Err(CapnnError::Config(
                "drift check interval must be positive".into(),
            ));
        }
        Ok(())
    }

    fn monitor(&self, deployed: UserProfile) -> Result<StreamingDriftMonitor, CapnnError> {
        StreamingDriftMonitor::new(deployed, self.policy, self.half_life, self.check_interval)
    }
}

/// Parses an environment variable, treating unset/blank as absent and an
/// unparsable value as a loud [`CapnnError::Config`].
fn env_parse<T: std::str::FromStr>(name: &str) -> Result<Option<T>, CapnnError> {
    let Ok(raw) = std::env::var(name) else {
        return Ok(None);
    };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    trimmed
        .parse::<T>()
        .map(Some)
        .map_err(|_| CapnnError::Config(format!("{name}={trimmed:?} could not be parsed")))
}

/// Configuration of an [`InferenceServer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Worker threads draining the queues. Each worker executes one batch
    /// at a time; the batch itself may fan out further over the
    /// `capnn-tensor` pool.
    pub workers: usize,
    /// Admission bound: total requests allowed in queues across all plans.
    /// Submissions beyond it are rejected with [`CapnnError::Overloaded`].
    pub queue_capacity: usize,
    /// Largest batch a worker may drain at once (also the controller's
    /// largest bucket).
    pub max_batch: usize,
    /// Pin every dispatch to this batch size instead of adapting — the
    /// fixed-sweep mode benchmarks use to cross-check the controller.
    pub fixed_batch: Option<usize>,
    /// Deadline-aware flush: the longest an admitted request may wait in
    /// its queue before the queue is flushed at whatever size it reached.
    pub max_dwell: Duration,
    /// Usage-weight quantization steps for the fleet cache's
    /// [`crate::ProfileKey`] (only used by [`InferenceServer::start`],
    /// which builds the cache itself).
    pub weight_steps: u16,
    /// Plan-cache byte budget for [`InferenceServer::start`]: `None`
    /// defers to the `CAPNN_CACHE_BYTES` environment variable, `Some(0)`
    /// forces unbounded, any other value is the budget in bytes.
    pub cache_budget: Option<u64>,
    /// Adaptive-controller tuning (its `max_batch` is overridden by
    /// [`ServerConfig::max_batch`]).
    pub controller: ControllerConfig,
    /// Online drift detection + plan hot-swap; `None` disables the whole
    /// pipeline (no monitors, no background worker).
    pub drift: Option<DriftConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(4);
        Self {
            workers,
            queue_capacity: 1024,
            max_batch: 32,
            fixed_batch: None,
            max_dwell: Duration::from_millis(2),
            weight_steps: 16,
            cache_budget: None,
            controller: ControllerConfig::default(),
            drift: None,
        }
    }
}

impl ServerConfig {
    fn validate(&self) -> Result<(), CapnnError> {
        if self.workers == 0 {
            return Err(CapnnError::Config("server needs at least 1 worker".into()));
        }
        if self.queue_capacity == 0 {
            return Err(CapnnError::Config("queue_capacity must be positive".into()));
        }
        if self.max_batch == 0 {
            return Err(CapnnError::Config("max_batch must be positive".into()));
        }
        if let Some(f) = self.fixed_batch {
            if f == 0 || f > self.max_batch {
                return Err(CapnnError::Config(format!(
                    "fixed_batch {f} outside 1..={}",
                    self.max_batch
                )));
            }
        }
        if !(self.controller.ewma_alpha > 0.0 && self.controller.ewma_alpha <= 1.0) {
            return Err(CapnnError::Config(
                "controller ewma_alpha must be in (0, 1]".into(),
            ));
        }
        if let Some(drift) = &self.drift {
            drift.validate()?;
        }
        Ok(())
    }

    fn controller_config(&self) -> ControllerConfig {
        ControllerConfig {
            max_batch: self.max_batch,
            ..self.controller
        }
    }
}

/// One user's inference request: who (profile), what (input), how
/// (variant + precision).
#[derive(Debug, Clone)]
pub struct ServeRequest {
    profile: UserProfile,
    input: Tensor,
    variant: Variant,
    precision: Precision,
    sparsity: Sparsity,
    observed_class: Option<usize>,
}

impl ServeRequest {
    /// A request with the default CAP'NN-B variant (mask depends only on
    /// the class set — the most cache-friendly choice) at f32.
    pub fn new(profile: UserProfile, input: Tensor) -> Self {
        Self {
            profile,
            input,
            variant: Variant::Basic,
            precision: Precision::F32,
            sparsity: Sparsity::Dense,
            observed_class: None,
        }
    }

    /// Selects the pruning variant.
    pub fn variant(mut self, variant: Variant) -> Self {
        self.variant = variant;
        self
    }

    /// Selects the numeric precision of the serving plan.
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Selects the weight-sparsity tier of the serving plan (hybrid N:M
    /// plans are cached and batched separately from dense ones, under
    /// the same canonical mask).
    pub fn sparsity(mut self, sparsity: Sparsity) -> Self {
        self.sparsity = sparsity;
        self
    }

    /// Attaches the ground-truth class of this request (e.g. confirmed by
    /// the client after the fact in a real deployment). With
    /// [`ServerConfig::drift`] set it feeds the profile's drift monitor;
    /// without a label the served argmax is fed instead.
    pub fn observed_class(mut self, class: usize) -> Self {
        self.observed_class = Some(class);
        self
    }
}

/// The answer to one [`ServeRequest`], with its batching provenance.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// Logits in original class coordinates (pruned classes exact zero).
    pub output: Tensor,
    /// Top-1 class of `output`.
    pub argmax: usize,
    /// Size of the dynamic batch this request rode in.
    pub batch_size: usize,
    /// Time the request waited in its queue before dispatch.
    pub dwell: Duration,
    /// Execution time of the whole batch.
    pub exec: Duration,
}

/// Waits for one submitted request's response.
#[derive(Debug)]
pub struct ResponseHandle {
    rx: mpsc::Receiver<Result<ServeResponse, CapnnError>>,
}

impl ResponseHandle {
    /// Blocks until the response arrives.
    ///
    /// # Errors
    ///
    /// Propagates the worker's typed error, or [`CapnnError::Unavailable`]
    /// if the server dropped the request without answering (shutdown).
    pub fn wait(self) -> Result<ServeResponse, CapnnError> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(CapnnError::Unavailable("server dropped the request".into())))
    }

    /// Like [`ResponseHandle::wait`] with a timeout; `Ok(None)` means the
    /// response has not arrived yet.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ResponseHandle::wait`].
    pub fn wait_timeout(&self, timeout: Duration) -> Result<Option<ServeResponse>, CapnnError> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => result.map(Some),
            Err(mpsc::RecvTimeoutError::Timeout) => Ok(None),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Err(CapnnError::Unavailable("server dropped the request".into()))
            }
        }
    }
}

/// Counters of a running server (monotonic over its lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Requests admitted into queues.
    pub submitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Requests answered with a typed error.
    pub failed: u64,
    /// Dynamic batches dispatched.
    pub batches: u64,
    /// Plan hot-swaps committed by the drift pipeline.
    pub swaps: u64,
    /// Drift decisions whose re-pruned mask matched the bound one (nothing
    /// recompiled or rebound).
    pub swap_noops: u64,
    /// Drift swaps abandoned because re-pruning or recompilation failed.
    pub swap_failed: u64,
}

impl ServerStats {
    /// Mean dispatched batch size so far (0 when no batch ran).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            (self.completed + self.failed) as f64 / self.batches as f64
        }
    }
}

#[derive(Default)]
struct AtomicStats {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    swaps: AtomicU64,
    swap_noops: AtomicU64,
    swap_failed: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            swap_noops: self.swap_noops.load(Ordering::Relaxed),
            swap_failed: self.swap_failed.load(Ordering::Relaxed),
        }
    }
}

/// Thread-safe front door to one cloud's [`FleetPlanCache`]: the cache and
/// the cloud it compiles through, shareable across the worker pool and any
/// number of submitting threads.
///
/// The cache and the cloud sit behind *separate* mutexes, and no code path
/// holds both at once. This is what lets the drift pipeline's re-pruning
/// and recompilation (seconds of cloud work) proceed while submitters keep
/// hitting the cache (sub-microsecond lock holds): `plan_for` resolves
/// hits under the cache lock alone, takes the cloud lock only for the
/// prune/compile legs of a miss, and re-enters the cache lock to admit the
/// result. The `server_stress` test pounds this from many threads and
/// checks no counter update is lost and residency never exceeds budget.
pub struct SharedFleetCache {
    cache: Mutex<FleetPlanCache>,
    cloud: Mutex<CloudServer>,
}

impl SharedFleetCache {
    /// Wraps a cloud and a fleet cache for concurrent use.
    pub fn new(cloud: CloudServer, cache: FleetPlanCache) -> Self {
        Self {
            cache: Mutex::new(cache),
            cloud: Mutex::new(cloud),
        }
    }

    /// Resolves a profile to its canonical compiled plan (see
    /// [`FleetPlanCache::plan_for`]).
    ///
    /// # Errors
    ///
    /// Propagates pruning and compilation errors.
    pub fn plan_for(
        &self,
        profile: &UserProfile,
        variant: Variant,
        precision: Precision,
    ) -> Result<Arc<CompiledPlan>, CapnnError> {
        self.plan_for_keyed(profile, variant, precision, Sparsity::Dense)
            .map(|(plan, _)| plan)
    }

    /// Like [`SharedFleetCache::plan_for`], also returning the
    /// [`ProfileKey`] the plan is bound under — the identity the drift
    /// pipeline monitors and rebinds.
    ///
    /// # Errors
    ///
    /// Propagates pruning and compilation errors.
    pub fn plan_for_keyed(
        &self,
        profile: &UserProfile,
        variant: Variant,
        precision: Precision,
        sparsity: Sparsity,
    ) -> Result<(Arc<CompiledPlan>, ProfileKey), CapnnError> {
        let (key, looked_up) = {
            let mut cache = lock_recover(&self.cache);
            let key = ProfileKey::new(profile, variant, cache.weight_steps());
            let looked_up = cache.lookup(&key, precision, sparsity);
            (key, looked_up)
        };
        let mask = match looked_up {
            PlanLookup::Hit(plan) => return Ok((plan, key)),
            PlanLookup::CompileMask(mask) => mask,
            PlanLookup::ProfileUnknown => {
                let fresh = lock_recover(&self.cloud).prune_mask(profile, variant)?;
                let mut cache = lock_recover(&self.cache);
                let mask = cache.admit_mask(key.clone(), fresh);
                // canonicalization may land on a mask another profile
                // already compiled for
                if let Some(plan) = cache.resident(&mask, precision, sparsity) {
                    return Ok((plan, key));
                }
                mask
            }
        };
        let plan = lock_recover(&self.cloud).compile_pooled_sparse(&mask, precision, sparsity)?;
        let plan = lock_recover(&self.cache).admit_plan(mask, precision, plan);
        Ok((plan, key))
    }

    /// Hit/miss/eviction/residency statistics of the wrapped cache.
    pub fn stats(&self) -> CacheStats {
        lock_recover(&self.cache).stats()
    }

    /// Exact resident bytes of the wrapped cache.
    pub fn resident_bytes(&self) -> u64 {
        lock_recover(&self.cache).resident_bytes()
    }

    /// Distinct canonical masks interned so far.
    pub fn unique_masks(&self) -> usize {
        lock_recover(&self.cache).unique_masks()
    }

    /// The wrapped cache's byte budget.
    pub fn budget_bytes(&self) -> Option<u64> {
        lock_recover(&self.cache).budget_bytes()
    }

    /// Swaps in a fresh cache (new budget, zeroed stats), keeping the
    /// cloud — benches reuse one profiled cloud across scenario rows.
    pub fn reset_cache(&self, cache: FleetPlanCache) {
        *lock_recover(&self.cache) = cache;
    }

    /// Runs `f` with exclusive access to the wrapped cloud (e.g. to
    /// compile verification plans against the same network). Must not be
    /// nested inside [`SharedFleetCache::with_cache`] or vice versa.
    pub fn with_cloud<R>(&self, f: impl FnOnce(&mut CloudServer) -> R) -> R {
        f(&mut lock_recover(&self.cloud))
    }

    /// Runs `f` with exclusive access to the wrapped cache. Must not be
    /// nested inside [`SharedFleetCache::with_cloud`] or vice versa.
    pub fn with_cache<R>(&self, f: impl FnOnce(&mut FleetPlanCache) -> R) -> R {
        f(&mut lock_recover(&self.cache))
    }
}

impl std::fmt::Debug for SharedFleetCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedFleetCache").finish_non_exhaustive()
    }
}

/// One profile's drift-tracking state.
struct MonitorSlot {
    monitor: StreamingDriftMonitor,
    /// Pruning variant this profile is served under (part of its key).
    variant: Variant,
    /// Every precision × sparsity tier this profile has been served at —
    /// the swap worker recompiles all of them so no tier is left on the
    /// stale mask.
    tiers: Vec<(Precision, Sparsity)>,
    /// A swap for this profile is queued or running; further decisions are
    /// discarded until it settles.
    in_flight: bool,
}

/// A drift decision handed to the background recompile worker.
struct SwapTask {
    key: ProfileKey,
    profile: UserProfile,
    variant: Variant,
    tiers: Vec<(Precision, Sparsity)>,
}

/// Server-side drift state: per-profile monitors plus the channel to the
/// background recompile worker.
struct DriftShared {
    cfg: DriftConfig,
    /// One monitor per served profile key. A monitor is a decayed count
    /// map bounded by the profile's recent working set, so this grows with
    /// the *distinct profile* population, like the mask memo does.
    monitors: Mutex<HashMap<ProfileKey, MonitorSlot>>,
    /// Swap-task sender; `None` once shutdown has begun (the worker exits
    /// when every sender is gone).
    tx: Mutex<Option<mpsc::Sender<SwapTask>>>,
}

struct Shared {
    cfg: ServerConfig,
    cache: Arc<SharedFleetCache>,
    state: Mutex<QueueState>,
    work: Condvar,
    stats: AtomicStats,
    drift: Option<DriftShared>,
}

/// A cloneable, `'static` submit-only handle — client threads keep one of
/// these while the [`InferenceServer`] owns the workers.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// See [`InferenceServer::submit`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`InferenceServer::submit`].
    pub fn submit(&self, req: ServeRequest) -> Result<ResponseHandle, CapnnError> {
        submit_impl(&self.shared, req)
    }

    /// Submit-and-wait convenience.
    ///
    /// # Errors
    ///
    /// Same conditions as [`InferenceServer::submit`] plus any worker
    /// error.
    pub fn infer(&self, req: ServeRequest) -> Result<ServeResponse, CapnnError> {
        self.submit(req)?.wait()
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle").finish_non_exhaustive()
    }
}

/// The serving front-end: admission, per-plan queues, worker pool.
///
/// Dropping the server shuts it down gracefully: queues drain, workers
/// join, every in-flight request is answered.
pub struct InferenceServer {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// The drift pipeline's background recompile worker, when enabled.
    swap_worker: Option<JoinHandle<()>>,
}

impl InferenceServer {
    /// Starts a server over `cloud`, building its own fleet cache from
    /// the config's `weight_steps` / `cache_budget`.
    ///
    /// # Errors
    ///
    /// Returns [`CapnnError::Config`] for an invalid configuration.
    pub fn start(cloud: CloudServer, cfg: ServerConfig) -> Result<Self, CapnnError> {
        let cache = match cfg.cache_budget {
            None => FleetPlanCache::new(cfg.weight_steps)?,
            Some(0) => FleetPlanCache::with_budget(cfg.weight_steps, None)?,
            Some(b) => FleetPlanCache::with_budget(cfg.weight_steps, Some(b))?,
        };
        Self::start_with_cache(Arc::new(SharedFleetCache::new(cloud, cache)), cfg)
    }

    /// Starts a server over an existing shared cache (benches reuse one
    /// profiled cloud across servers).
    ///
    /// # Errors
    ///
    /// Returns [`CapnnError::Config`] for an invalid configuration.
    pub fn start_with_cache(
        cache: Arc<SharedFleetCache>,
        cfg: ServerConfig,
    ) -> Result<Self, CapnnError> {
        cfg.validate()?;
        // Declare the counter/gauge probes up front so a telemetry
        // snapshot lists them even before the first rejection or drain
        // (histograms are left to populate from real traffic — a dummy
        // sample would pollute their quantiles).
        capnn_telemetry::count("server.rejected", 0);
        capnn_telemetry::set_gauge("server.queue_depth", 0.0);
        let mut swap_rx = None;
        let drift = cfg.drift.map(|drift_cfg| {
            capnn_telemetry::count("server.swap_count", 0);
            capnn_telemetry::count("server.swap_noop", 0);
            capnn_telemetry::count("server.swap_failed", 0);
            let (tx, rx) = mpsc::channel();
            swap_rx = Some(rx);
            DriftShared {
                cfg: drift_cfg,
                monitors: Mutex::new(HashMap::new()),
                tx: Mutex::new(Some(tx)),
            }
        });
        let shared = Arc::new(Shared {
            cfg,
            cache,
            state: Mutex::new(QueueState::new()),
            work: Condvar::new(),
            stats: AtomicStats::default(),
            drift,
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("capnn-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(|e| CapnnError::Internal(format!("spawning worker: {e}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let swap_worker = swap_rx
            .map(|rx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name("capnn-swap".into())
                    .spawn(move || swap_loop(&shared, &rx))
                    .map_err(|e| CapnnError::Internal(format!("spawning swap worker: {e}")))
            })
            .transpose()?;
        Ok(Self {
            shared,
            workers,
            swap_worker,
        })
    }

    /// Admits one request: resolves its canonical plan through the fleet
    /// cache and enqueues it for dynamic batching. Returns immediately
    /// with a [`ResponseHandle`].
    ///
    /// # Errors
    ///
    /// * [`CapnnError::Overloaded`] — queues at capacity (backpressure).
    /// * [`CapnnError::Unavailable`] — server is shutting down.
    /// * Pruning/compilation errors from plan resolution.
    pub fn submit(&self, req: ServeRequest) -> Result<ResponseHandle, CapnnError> {
        submit_impl(&self.shared, req)
    }

    /// Submit-and-wait convenience.
    ///
    /// # Errors
    ///
    /// Same conditions as [`InferenceServer::submit`] plus any worker
    /// error.
    pub fn infer(&self, req: ServeRequest) -> Result<ServeResponse, CapnnError> {
        self.submit(req)?.wait()
    }

    /// A cloneable `'static` submit-only handle for client threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The shared fleet cache this server resolves plans through.
    pub fn cache(&self) -> &Arc<SharedFleetCache> {
        &self.shared.cache
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats.snapshot()
    }

    /// Requests currently waiting in queues.
    pub fn queue_depth(&self) -> usize {
        lock_recover(&self.shared.state).total_queued
    }

    /// The adaptive controller's learned state for one precision (`None`
    /// until a request of that precision was dispatched).
    pub fn controller_snapshot(&self, precision: Precision) -> Option<ControllerSnapshot> {
        lock_recover(&self.shared.state)
            .controllers
            .get(&precision)
            .map(BatchController::snapshot)
    }

    /// Graceful shutdown: stops admission, drains every queue (workers
    /// answer all in-flight requests), joins the workers and returns the
    /// final counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.shutdown_in_place();
        self.shared.stats.snapshot()
    }

    fn shutdown_in_place(&mut self) {
        {
            let mut st = lock_recover(&self.shared.state);
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            // a worker that panicked already poisoned nothing we rely on;
            // surface it in tests via the failed counter instead
            let _ = w.join();
        }
        // Workers are done, so no more swap tasks can originate; dropping
        // the sender lets the swap worker finish queued tasks and exit.
        if let Some(drift) = &self.shared.drift {
            lock_recover(&drift.tx).take();
        }
        if let Some(w) = self.swap_worker.take() {
            let _ = w.join();
        }
    }
}

impl Drop for InferenceServer {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

impl std::fmt::Debug for InferenceServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferenceServer")
            .field("cfg", &self.shared.cfg)
            .field("stats", &self.shared.stats.snapshot())
            .finish_non_exhaustive()
    }
}

fn submit_impl(shared: &Shared, req: ServeRequest) -> Result<ResponseHandle, CapnnError> {
    // Cheap pre-checks under the queue lock before paying for plan
    // resolution: a shedding server must reject in O(1).
    {
        let st = lock_recover(&shared.state);
        if st.shutdown {
            return Err(CapnnError::Unavailable("server is shutting down".into()));
        }
        if st.total_queued >= shared.cfg.queue_capacity {
            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            capnn_telemetry::count("server.rejected", 1);
            return Err(CapnnError::Overloaded(format!(
                "queue at capacity ({})",
                shared.cfg.queue_capacity
            )));
        }
    }
    let (plan, drift_key) = resolve_plan(shared, &req)?;
    let (tx, rx) = mpsc::channel();
    {
        let mut st = lock_recover(&shared.state);
        // Re-check under the same lock that enqueues: the bound is strict.
        if st.shutdown {
            return Err(CapnnError::Unavailable("server is shutting down".into()));
        }
        if st.total_queued >= shared.cfg.queue_capacity {
            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            capnn_telemetry::count("server.rejected", 1);
            return Err(CapnnError::Overloaded(format!(
                "queue at capacity ({})",
                shared.cfg.queue_capacity
            )));
        }
        let key = plan_key(&plan);
        let queue = st.queues.entry(key).or_insert_with(|| PlanQueue::new(plan));
        queue.pending.push(Pending {
            input: req.input,
            respond: tx,
            submitted: Instant::now(),
            drift_key,
        });
        st.total_queued += 1;
        capnn_telemetry::set_gauge("server.queue_depth", st.total_queued as f64);
    }
    shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
    shared.work.notify_one();
    Ok(ResponseHandle { rx })
}

/// Resolves the request's plan and, with drift detection on, folds the
/// request into its profile's monitor. A labeled request is observed here
/// at admission; an unlabeled one carries its key into the queue so the
/// served argmax is observed at completion instead (never both).
fn resolve_plan(
    shared: &Shared,
    req: &ServeRequest,
) -> Result<(Arc<CompiledPlan>, Option<ProfileKey>), CapnnError> {
    let Some(drift) = &shared.drift else {
        let plan = shared
            .cache
            .plan_for_keyed(&req.profile, req.variant, req.precision, req.sparsity)
            .map(|(plan, _)| plan)?;
        return Ok((plan, None));
    };
    let (plan, key) =
        shared
            .cache
            .plan_for_keyed(&req.profile, req.variant, req.precision, req.sparsity)?;
    let mut task = None;
    {
        let mut monitors = lock_recover(&drift.monitors);
        let slot = match monitors.entry(key.clone()) {
            Entry::Occupied(e) => e.into_mut(),
            // The config was validated at server start, so building a
            // monitor cannot fail here.
            Entry::Vacant(v) => v.insert(MonitorSlot {
                monitor: drift.cfg.monitor(req.profile.clone())?,
                variant: req.variant,
                tiers: Vec::new(),
                in_flight: false,
            }),
        };
        if !slot.tiers.contains(&(req.precision, req.sparsity)) {
            slot.tiers.push((req.precision, req.sparsity));
        }
        if let Some(class) = req.observed_class {
            task = observe_slot(slot, &key, class);
        }
    }
    if let Some(task) = task {
        send_swap_tasks(drift, vec![task]);
    }
    let drift_key = req.observed_class.is_none().then_some(key);
    Ok((plan, drift_key))
}

/// Folds one observation into a monitor; returns the swap task to queue if
/// it decided to re-personalize and no swap is already in flight.
fn observe_slot(slot: &mut MonitorSlot, key: &ProfileKey, class: usize) -> Option<SwapTask> {
    match slot.monitor.observe(class) {
        Some(DriftDecision::Repersonalize { profile, .. }) if !slot.in_flight => {
            slot.in_flight = true;
            Some(SwapTask {
                key: key.clone(),
                profile,
                variant: slot.variant,
                tiers: slot.tiers.clone(),
            })
        }
        _ => None,
    }
}

/// Hands swap tasks to the background worker. A send after shutdown (or to
/// a dead worker) is silently dropped — the monitor stays `in_flight`, and
/// the server is going away anyway.
fn send_swap_tasks(drift: &DriftShared, tasks: Vec<SwapTask>) {
    if tasks.is_empty() {
        return;
    }
    let tx = lock_recover(&drift.tx);
    if let Some(tx) = tx.as_ref() {
        for task in tasks {
            let _ = tx.send(task);
        }
    }
}

/// The background recompile worker: drains drift decisions until every
/// sender is gone (shutdown).
fn swap_loop(shared: &Shared, rx: &mpsc::Receiver<SwapTask>) {
    while let Ok(task) = rx.recv() {
        run_swap(shared, task);
    }
}

/// Executes one drift-to-swap pipeline run off the request path:
/// re-prune → canonicalize (no-op detection) → recompile every served
/// precision → atomic rebind (the swap point) → release the monitor.
fn run_swap(shared: &Shared, task: SwapTask) {
    let Some(drift) = &shared.drift else { return };
    let t0 = Instant::now();
    let fresh = match shared
        .cache
        .with_cloud(|cloud| cloud.prune_mask(&task.profile, task.variant))
    {
        Ok(mask) => mask,
        Err(_) => return swap_failed(shared, drift, &task),
    };
    let (canonical, noop) = shared.cache.with_cache(|cache| {
        let canonical = cache.canonicalize(fresh);
        let noop = cache
            .bound_mask(&task.key)
            .is_some_and(|bound| Arc::ptr_eq(&bound, &canonical));
        (canonical, noop)
    });
    if noop {
        // Usage shifted but the re-pruned mask is the one already bound
        // (common under CAP'NN-B, where only the class *set* matters):
        // adopt the new baseline without compiling anything.
        shared.stats.swap_noops.fetch_add(1, Ordering::Relaxed);
        capnn_telemetry::count("server.swap_noop", 1);
        settle_monitor(drift, &task, true);
        return;
    }
    let mut plans = Vec::with_capacity(task.tiers.len());
    for &(precision, sparsity) in &task.tiers {
        match shared
            .cache
            .with_cloud(|cloud| cloud.compile_pooled_sparse(&canonical, precision, sparsity))
        {
            Ok(plan) => plans.push((precision, plan)),
            Err(_) => return swap_failed(shared, drift, &task),
        }
    }
    // The swap point: every request admitted after this call resolves to
    // the new plans; in-flight batches keep their Arc to the old plan and
    // drain on it (bounded by queue depth × dwell), whose cache residency
    // was just released.
    shared
        .cache
        .with_cache(|cache| cache.rebind(&task.key, canonical, plans));
    shared.stats.swaps.fetch_add(1, Ordering::Relaxed);
    capnn_telemetry::count("server.swap_count", 1);
    capnn_telemetry::observe_duration("server.swap_ns", t0.elapsed());
    settle_monitor(drift, &task, true);
}

/// Records a failed swap attempt and backs the monitor off.
fn swap_failed(shared: &Shared, drift: &DriftShared, task: &SwapTask) {
    shared.stats.swap_failed.fetch_add(1, Ordering::Relaxed);
    capnn_telemetry::count("server.swap_failed", 1);
    settle_monitor(drift, task, false);
}

/// Releases a profile's in-flight flag after its swap settled: on success
/// the monitor adopts the new profile (cooldown applies), on failure it
/// defers the next decision by the cooldown without losing its history.
fn settle_monitor(drift: &DriftShared, task: &SwapTask, adopted: bool) {
    let mut monitors = lock_recover(&drift.monitors);
    if let Some(slot) = monitors.get_mut(&task.key) {
        if adopted {
            slot.monitor.adopt(task.profile.clone(), drift.cfg.cooldown);
        } else {
            slot.monitor.defer(drift.cfg.cooldown);
        }
        slot.in_flight = false;
    }
}

/// One dispatched batch, ready to execute outside the lock.
struct Job {
    plan: Arc<CompiledPlan>,
    precision: Precision,
    pending: Vec<Pending>,
}

fn worker_loop(shared: &Shared) {
    let mut scratch = PlanScratch::new();
    loop {
        let job = {
            let mut st = lock_recover(&shared.state);
            loop {
                if let Some(job) = take_job(&mut st, &shared.cfg) {
                    break Some(job);
                }
                if st.shutdown && st.total_queued == 0 {
                    break None;
                }
                match next_wakeup(&st, &shared.cfg) {
                    Some(wait) => {
                        let (guard, _) = shared
                            .work
                            .wait_timeout(st, wait)
                            .unwrap_or_else(|p| p.into_inner());
                        st = guard;
                    }
                    None => {
                        st = shared.work.wait(st).unwrap_or_else(|p| p.into_inner());
                    }
                }
            }
        };
        let Some(job) = job else { return };
        execute_job(shared, job, &mut scratch);
        // a drain may have unblocked a full-batch dispatch for a sibling
        shared.work.notify_one();
    }
}

/// Picks and drains the most dispatchable queue, if any. Priority:
/// full-batch-ready queues (deepest first — maximum amortization), then
/// deadline-overdue queues (most overdue first). Under shutdown every
/// nonempty queue is dispatchable.
fn take_job(st: &mut QueueState, cfg: &ServerConfig) -> Option<Job> {
    let now = Instant::now();
    let shutdown = st.shutdown;
    let mut full: Option<(PlanKey, usize, usize)> = None; // key, len, target
    let mut overdue: Option<(PlanKey, Duration, usize)> = None; // key, dwell, target
    for (&key, q) in st.queues.iter() {
        if q.pending.is_empty() {
            continue;
        }
        let target = st
            .controllers
            .get(&q.precision)
            .map(BatchController::planned_target)
            .unwrap_or_else(|| {
                BatchController::new(cfg.controller_config(), cfg.fixed_batch).planned_target()
            })
            .clamp(1, cfg.max_batch);
        let len = q.pending.len();
        if len >= target {
            if full.map(|(_, best, _)| len > best).unwrap_or(true) {
                full = Some((key, len, target));
            }
            continue;
        }
        let dwell = now.saturating_duration_since(q.oldest().expect("nonempty"));
        if (dwell >= cfg.max_dwell || shutdown)
            && overdue.map(|(_, best, _)| dwell > best).unwrap_or(true)
        {
            overdue = Some((key, dwell, target));
        }
    }
    let (key, take) = match (full, overdue) {
        (Some((key, _, target)), _) => (key, target),
        // an overdue queue flushes whatever it holds (it is below target)
        (None, Some((key, _, _))) => (key, cfg.max_batch),
        (None, None) => return None,
    };
    let queue = st.queues.get_mut(&key).expect("picked key exists");
    let n = take.min(queue.pending.len());
    let pending: Vec<Pending> = queue.pending.drain(..n).collect();
    let job = Job {
        plan: Arc::clone(&queue.plan),
        precision: queue.precision,
        pending,
    };
    if queue.pending.is_empty() {
        // drop the entry so the server does not pin evicted plans alive
        st.queues.remove(&key);
    }
    st.total_queued -= n;
    capnn_telemetry::set_gauge("server.queue_depth", st.total_queued as f64);
    let ctl = st
        .controllers
        .entry(job.precision)
        .or_insert_with(|| BatchController::new(cfg.controller_config(), cfg.fixed_batch));
    ctl.on_dispatch();
    Some(job)
}

/// Earliest deadline across queues: how long a worker may sleep before
/// some queue must be dwell-flushed. `None` → all queues empty.
fn next_wakeup(st: &QueueState, cfg: &ServerConfig) -> Option<Duration> {
    let now = Instant::now();
    st.queues
        .values()
        .filter_map(PlanQueue::oldest)
        .map(|oldest| {
            cfg.max_dwell
                .saturating_sub(now.saturating_duration_since(oldest))
        })
        .min()
        // never sleep zero in a tight loop; 10 µs re-checks promptly
        .map(|d| d.max(Duration::from_micros(10)))
}

fn execute_job(shared: &Shared, job: Job, scratch: &mut PlanScratch) {
    let n = job.pending.len();
    let dispatched = Instant::now();
    let mut inputs = Vec::with_capacity(n);
    let mut meta = Vec::with_capacity(n);
    for p in job.pending {
        inputs.push(p.input);
        meta.push((p.respond, p.submitted, p.drift_key));
    }
    let result = job.plan.forward_batch_with_scratch(&inputs, scratch);
    let exec = dispatched.elapsed();
    capnn_telemetry::observe("server.batch_size", n as u64);
    capnn_telemetry::observe_duration("server.batch_ns", exec);
    shared.stats.batches.fetch_add(1, Ordering::Relaxed);
    // (profile key, served argmax) pairs to feed the drift monitors after
    // the responses are on their way.
    let mut observations: Vec<(ProfileKey, usize)> = Vec::new();
    match result {
        Ok(outputs) => {
            for (out, (respond, submitted, drift_key)) in outputs.into_iter().zip(meta) {
                let dwell = dispatched.saturating_duration_since(submitted);
                capnn_telemetry::observe_duration("server.dwell_ns", dwell);
                let argmax = out.argmax().unwrap_or(0);
                if let Some(key) = drift_key {
                    observations.push((key, argmax));
                }
                // a gone client (dropped handle) is not an error
                let _ = respond.send(Ok(ServeResponse {
                    output: out,
                    argmax,
                    batch_size: n,
                    dwell,
                    exec,
                }));
            }
            shared
                .stats
                .completed
                .fetch_add(n as u64, Ordering::Relaxed);
        }
        Err(e) => {
            for (respond, _, _) in meta {
                let _ = respond.send(Err(CapnnError::Network(e.clone())));
            }
            shared.stats.failed.fetch_add(n as u64, Ordering::Relaxed);
        }
    }
    if let Some(drift) = &shared.drift {
        if !observations.is_empty() {
            let mut tasks = Vec::new();
            {
                let mut monitors = lock_recover(&drift.monitors);
                for (key, class) in observations {
                    let Some(slot) = monitors.get_mut(&key) else {
                        continue;
                    };
                    if let Some(task) = observe_slot(slot, &key, class) {
                        tasks.push(task);
                    }
                }
            }
            send_swap_tasks(drift, tasks);
        }
    }
    let per_sample_ns = exec.as_nanos() as f64 / n as f64;
    let mut st = lock_recover(&shared.state);
    let ctl = st.controllers.entry(job.precision).or_insert_with(|| {
        BatchController::new(shared.cfg.controller_config(), shared.cfg.fixed_batch)
    });
    ctl.record(n, per_sample_ns);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::Variant;
    use crate::config::PruningConfig;
    use capnn_data::{VectorClusters, VectorClustersConfig};
    use capnn_nn::{NetworkBuilder, Trainer, TrainerConfig};

    /// A trained 4-class cloud small enough for unit tests.
    fn tiny_cloud() -> CloudServer {
        let gen = VectorClusters::new(VectorClustersConfig::easy(4, 6)).unwrap();
        let mut net = NetworkBuilder::mlp(&[6, 16, 12, 4], 2).build().unwrap();
        let cfg = TrainerConfig {
            epochs: 12,
            ..TrainerConfig::default()
        };
        Trainer::new(cfg, 1)
            .fit(&mut net, gen.generate(30, 1).samples())
            .unwrap();
        CloudServer::new(
            net,
            &gen.generate(20, 2),
            &gen.generate(15, 3),
            PruningConfig::fast(),
        )
        .unwrap()
    }

    fn profile(classes: Vec<usize>) -> UserProfile {
        UserProfile::uniform(classes).unwrap()
    }

    fn input(seed: u64) -> Tensor {
        let mut rng = capnn_tensor::XorShiftRng::new(seed);
        Tensor::uniform(&[6], -1.0, 1.0, &mut rng)
    }

    #[test]
    fn config_validation() {
        let ok = ServerConfig::default();
        assert!(ok.validate().is_ok());
        assert!(ServerConfig { workers: 0, ..ok }.validate().is_err());
        assert!(ServerConfig {
            queue_capacity: 0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(ServerConfig { max_batch: 0, ..ok }.validate().is_err());
        assert!(ServerConfig {
            fixed_batch: Some(64),
            ..ok
        }
        .validate()
        .is_err());
        let mut bad_alpha = ok;
        bad_alpha.controller.ewma_alpha = 0.0;
        assert!(bad_alpha.validate().is_err());
    }

    #[test]
    fn serves_responses_matching_direct_plan_execution() {
        let cloud = tiny_cloud();
        let server = InferenceServer::start(
            cloud,
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        )
        .unwrap();

        let users = [
            profile(vec![0, 1]),
            profile(vec![1, 2]),
            profile(vec![2, 3]),
        ];
        let mut handles = Vec::new();
        for i in 0..24u64 {
            let user = users[(i % 3) as usize].clone();
            let req = ServeRequest::new(user, input(100 + i));
            handles.push((i, server.submit(req).unwrap()));
        }
        let mut responses = Vec::new();
        for (i, h) in handles {
            let resp = h.wait().unwrap();
            assert!(resp.batch_size >= 1);
            responses.push((i, resp));
        }
        // verify against direct per-profile compile + forward
        for (i, resp) in &responses {
            let user = &users[(*i % 3) as usize];
            let expect = server.cache().with_cloud(|cloud| {
                let mask = cloud.prune_mask(user, Variant::Basic).unwrap();
                cloud
                    .network()
                    .compile(&mask)
                    .unwrap()
                    .forward(&input(100 + i))
                    .unwrap()
            });
            assert_eq!(resp.output.as_slice(), expect.as_slice());
            assert_eq!(resp.argmax, expect.argmax().unwrap_or(0));
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 24);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.rejected, 0);
        assert!(stats.batches <= 24);
    }

    #[test]
    fn serves_hybrid_nm_requests_matching_direct_sparse_plan_execution() {
        let cloud = tiny_cloud();
        let server = InferenceServer::start(
            cloud,
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        )
        .unwrap();

        let user = profile(vec![0, 1]);
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let req = ServeRequest::new(user.clone(), input(300 + i)).sparsity(Sparsity::NM(2, 4));
            handles.push((i, server.submit(req).unwrap()));
        }
        // interleave a dense request: same profile, its own cached tier
        let dense = server
            .submit(ServeRequest::new(user.clone(), input(299)))
            .unwrap()
            .wait()
            .unwrap();
        for (i, h) in handles {
            let resp = h.wait().unwrap();
            let expect = server.cache().with_cloud(|cloud| {
                let mask = cloud.prune_mask(&user, Variant::Basic).unwrap();
                cloud
                    .compile_pooled_sparse(&mask, Precision::F32, Sparsity::NM(2, 4))
                    .unwrap()
                    .forward(&input(300 + i))
                    .unwrap()
            });
            assert_eq!(resp.output.as_slice(), expect.as_slice());
        }
        // both tiers are resident under one canonical mask
        assert_eq!(server.cache().with_cache(|c| c.len()), 2);
        assert_eq!(server.cache().with_cache(|c| c.unique_masks()), 1);
        assert_eq!(dense.output.len(), 4);
        let stats = server.shutdown();
        assert_eq!(stats.completed, 9);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn cross_user_requests_share_batches() {
        // same canonical plan (equal class set) → one dynamic batch
        let cloud = tiny_cloud();
        let server = InferenceServer::start(
            cloud,
            ServerConfig {
                workers: 1,
                fixed_batch: Some(8),
                max_dwell: Duration::from_millis(200),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        // two *distinct users* whose profiles share a ProfileKey
        let a = UserProfile::new(vec![0, 1], vec![0.5, 0.5]).unwrap();
        let b = UserProfile::new(vec![1, 0], vec![0.5, 0.5]).unwrap();
        let handles: Vec<_> = (0..8u64)
            .map(|i| {
                let user = if i % 2 == 0 { a.clone() } else { b.clone() };
                server
                    .submit(ServeRequest::new(user, input(7 + i)))
                    .unwrap()
            })
            .collect();
        for h in handles {
            let resp = h.wait().unwrap();
            assert_eq!(
                resp.batch_size, 8,
                "cross-user requests on one canonical plan must ride one batch"
            );
        }
        server.shutdown();
    }

    #[test]
    fn admission_control_rejects_overload_with_typed_error() {
        let cloud = tiny_cloud();
        // capacity 1, fixed batch 8, long dwell: the worker cannot
        // dispatch (queue never reaches 8), so the second submit must be
        // rejected deterministically.
        let server = InferenceServer::start(
            cloud,
            ServerConfig {
                workers: 1,
                queue_capacity: 1,
                fixed_batch: Some(8),
                max_dwell: Duration::from_secs(5),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let user = profile(vec![0, 1]);
        let first = server
            .submit(ServeRequest::new(user.clone(), input(1)))
            .unwrap();
        let mut rejections = 0;
        for i in 0..4u64 {
            match server.submit(ServeRequest::new(user.clone(), input(2 + i))) {
                Err(CapnnError::Overloaded(_)) => rejections += 1,
                other => panic!("expected Overloaded, got {other:?}"),
            }
        }
        assert_eq!(rejections, 4);
        assert_eq!(server.stats().rejected, 4);
        // shutdown drains the one admitted request
        let resp = {
            let stats = server.shutdown();
            assert_eq!(stats.completed, 1);
            first.wait().unwrap()
        };
        assert_eq!(resp.batch_size, 1);
    }

    #[test]
    fn dwell_deadline_flushes_partial_batches() {
        let cloud = tiny_cloud();
        let server = InferenceServer::start(
            cloud,
            ServerConfig {
                workers: 1,
                fixed_batch: Some(32),
                max_dwell: Duration::from_millis(5),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let user = profile(vec![0, 1]);
        let t0 = Instant::now();
        let resp = server.infer(ServeRequest::new(user, input(3))).unwrap();
        // a single request cannot fill batch 32 — the deadline flush must
        // serve it anyway, promptly
        assert_eq!(resp.batch_size, 1);
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "dwell flush took {:?}",
            t0.elapsed()
        );
        server.shutdown();
    }

    #[test]
    fn submit_after_shutdown_is_unavailable() {
        let cloud = tiny_cloud();
        let server = InferenceServer::start(cloud, ServerConfig::default()).unwrap();
        let handle = server.handle();
        server.shutdown();
        match handle.submit(ServeRequest::new(profile(vec![0]), input(4))) {
            Err(CapnnError::Unavailable(_)) => {}
            other => panic!("expected Unavailable, got {other:?}"),
        }
    }

    #[test]
    fn int8_requests_serve_from_int8_plans() {
        let cloud = tiny_cloud();
        let server = InferenceServer::start(cloud, ServerConfig::default()).unwrap();
        let user = profile(vec![0, 1]);
        let x = input(9);
        let resp = server
            .infer(ServeRequest::new(user.clone(), x.clone()).precision(Precision::Int8))
            .unwrap();
        let expect = server.cache().with_cloud(|cloud| {
            let mask = cloud.prune_mask(&user, Variant::Basic).unwrap();
            cloud
                .network()
                .compile_with_precision(&mask, Precision::Int8)
                .unwrap()
                .forward(&x)
                .unwrap()
        });
        assert_eq!(resp.output.as_slice(), expect.as_slice());
        server.shutdown();
    }

    #[test]
    fn mean_batch_math() {
        let s = ServerStats {
            completed: 30,
            failed: 2,
            batches: 8,
            ..Default::default()
        };
        assert!((s.mean_batch() - 4.0).abs() < 1e-12);
        assert_eq!(ServerStats::default().mean_batch(), 0.0);
    }

    /// A fast-reacting drift config for tests: decide after 16
    /// observations, check every 8, and never re-trigger (huge cooldown).
    fn drift_cfg(threshold: f64, profile_k: usize) -> DriftConfig {
        DriftConfig {
            policy: DriftPolicy::builder()
                .divergence_threshold(threshold)
                .min_observations(16)
                .profile_k(profile_k)
                .build()
                .unwrap(),
            half_life: 32.0,
            check_interval: 8,
            cooldown: 1 << 30,
        }
    }

    #[test]
    fn drift_config_validation() {
        let ok = ServerConfig::default();
        let mut with_drift = ok;
        with_drift.drift = Some(DriftConfig::default());
        assert!(with_drift.validate().is_ok());
        let mut bad = ok;
        bad.drift = Some(DriftConfig {
            half_life: 0.5,
            ..DriftConfig::default()
        });
        assert!(bad.validate().is_err());
        let mut bad = ok;
        bad.drift = Some(DriftConfig {
            check_interval: 0,
            ..DriftConfig::default()
        });
        assert!(bad.validate().is_err());
    }

    #[test]
    fn drift_config_from_env_defaults() {
        // none of the CAPNN_DRIFT_* variables are set under `cargo test`
        assert_eq!(DriftConfig::from_env().unwrap(), DriftConfig::default());
    }

    #[test]
    fn labeled_drift_triggers_hot_swap_matching_cold_recompile() {
        let server = InferenceServer::start(
            tiny_cloud(),
            ServerConfig {
                workers: 1,
                drift: Some(drift_cfg(0.2, 1)),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        // deployed for {0, 1}, but every request is labeled class 3
        let user = profile(vec![0, 1]);
        let deadline = Instant::now() + Duration::from_secs(60);
        let mut i = 0u64;
        while server.stats().swaps == 0 {
            assert!(
                Instant::now() < deadline,
                "no hot-swap observed; stats {:?}",
                server.stats()
            );
            server
                .infer(ServeRequest::new(user.clone(), input(100 + i)).observed_class(3))
                .unwrap();
            i += 1;
        }
        // every request admitted after the swap point executes the plan a
        // cold recompile for the drifted profile {3} would produce, bitwise
        let x = input(999);
        let resp = server
            .infer(ServeRequest::new(user.clone(), x.clone()))
            .unwrap();
        let expect = server.cache().with_cloud(|cloud| {
            let drifted = UserProfile::uniform(vec![3]).unwrap();
            let mask = cloud.prune_mask(&drifted, Variant::Basic).unwrap();
            cloud.network().compile(&mask).unwrap().forward(&x).unwrap()
        });
        assert_eq!(resp.output.as_slice(), expect.as_slice());
        let cache = Arc::clone(server.cache());
        let stats = server.shutdown();
        assert_eq!(stats.swaps, 1, "huge cooldown allows exactly one swap");
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.swap_failed, 0);
        assert!(cache.stats().released >= 1);
    }

    #[test]
    fn weight_only_drift_on_basic_variant_is_a_swap_noop() {
        // Deployed weights 0.9/0.1 vs observed 50/50 diverges (JS ≈ 0.15
        // bit), but CAP'NN-B masks depend only on the class *set* — the
        // re-pruned mask is the bound one, so no recompile happens.
        let server = InferenceServer::start(
            tiny_cloud(),
            ServerConfig {
                workers: 1,
                drift: Some(drift_cfg(0.1, 2)),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let user = UserProfile::new(vec![0, 1], vec![0.9, 0.1]).unwrap();
        let deadline = Instant::now() + Duration::from_secs(60);
        let mut i = 0u64;
        while server.stats().swap_noops == 0 {
            assert!(
                Instant::now() < deadline,
                "no swap no-op observed; stats {:?}",
                server.stats()
            );
            server
                .infer(
                    ServeRequest::new(user.clone(), input(200 + i))
                        .observed_class((i % 2) as usize),
                )
                .unwrap();
            i += 1;
        }
        let cache = Arc::clone(server.cache());
        let stats = server.shutdown();
        assert_eq!(stats.swaps, 0, "a no-op must not rebind anything");
        assert_eq!(stats.swap_failed, 0);
        assert_eq!(cache.stats().released, 0);
    }

    #[test]
    fn observed_class_is_inert_without_drift_config() {
        let server = InferenceServer::start(
            tiny_cloud(),
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let user = profile(vec![0, 1]);
        for i in 0..24u64 {
            server
                .infer(ServeRequest::new(user.clone(), input(300 + i)).observed_class(3))
                .unwrap();
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 24);
        assert_eq!(stats.swaps, 0);
        assert_eq!(stats.swap_noops, 0);
    }

    #[test]
    fn unlabeled_traffic_feeds_served_argmax_to_the_monitor() {
        // A profile pruned to {2} zeroes every other class logit. An input
        // whose class-2 logit is negative therefore argmaxes to class 0
        // (the first exact-zero entry) — a deterministic out-of-profile
        // prediction stream that must trigger a swap with no labels at all.
        // Short cooldown: an early check may fire while class 2 still
        // dominates the decayed mix (a no-op swap); monitoring must resume
        // and converge on the real {2}→{0} swap.
        let server = InferenceServer::start(
            tiny_cloud(),
            ServerConfig {
                workers: 1,
                drift: Some(DriftConfig {
                    cooldown: 32,
                    ..drift_cfg(0.2, 1)
                }),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let user = profile(vec![2]);
        let mut trigger = None;
        for seed in 0..200u64 {
            let x = input(400 + seed);
            let resp = server
                .infer(ServeRequest::new(user.clone(), x.clone()))
                .unwrap();
            if resp.output.as_slice()[2] < 0.0 {
                trigger = Some(x);
                break;
            }
        }
        let trigger = trigger.expect("some input should produce a negative class-2 logit");
        let deadline = Instant::now() + Duration::from_secs(60);
        while server.stats().swaps == 0 {
            assert!(
                Instant::now() < deadline,
                "argmax feed never triggered a swap; stats {:?}",
                server.stats()
            );
            server
                .infer(ServeRequest::new(user.clone(), trigger.clone()))
                .unwrap();
        }
        let stats = server.shutdown();
        assert!(stats.swaps >= 1, "prediction drift must rebind");
        assert_eq!(stats.failed, 0);
    }
}
