//! CAP'NN-M: class-aware pruning of miseffectual neurons.
//!
//! A unit in the last hidden layer is *miseffectual* for a class `k` when it
//! pushes the classifier toward one of `k`'s top confusing classes more than
//! toward `k` itself. Such units are useless-and-harmful once the user's
//! class subset removes the classes they were really serving — pruning them
//! can *raise* accuracy above the unpruned baseline.
//!
//! Mechanically (§III-C of the paper): (1) from the confusion matrix, find
//! each class's top confusing classes; (2) in the last hidden layer, compare
//! each unit's output-weight contribution `w_{c,i}` toward the class vs
//! toward the confusers; (3) zero the miseffectual entries of the last
//! layer's firing-rate matrix and hand the result to CAP'NN-W, which then
//! treats them as prunable ineffectual units.

use crate::capnn_b::prunable_tail_without_output;
use crate::capnn_w::CapnnW;
use crate::config::PruningConfig;
use crate::error::CapnnError;
use crate::eval::TailEvaluator;
use crate::user::UserProfile;
use capnn_nn::{Layer, Network, PruneMask};
use capnn_profile::{ConfusionMatrix, FiringRates};

/// The CAP'NN-M pruner.
#[derive(Debug, Clone, Copy)]
pub struct CapnnM {
    config: PruningConfig,
}

impl CapnnM {
    /// Creates a pruner with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CapnnError::Config`] if the configuration is invalid.
    pub fn new(config: PruningConfig) -> Result<Self, CapnnError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The pruner's configuration.
    pub fn config(&self) -> &PruningConfig {
        &self.config
    }

    /// Identifies, per class, the miseffectual units of the last hidden
    /// layer: unit `i ∈ M_c` iff its largest output weight toward one of
    /// `c`'s top confusing classes exceeds its weight toward `c`.
    ///
    /// This is the paper's offline one-time step; it is independent of the
    /// user profile.
    ///
    /// # Errors
    ///
    /// Returns an error if the network's final layer is not dense or the
    /// confusion matrix does not match the class count.
    pub fn miseffectual_sets(
        &self,
        net: &Network,
        confusion: &ConfusionMatrix,
    ) -> Result<Vec<Vec<usize>>, CapnnError> {
        let num_classes = net.num_classes();
        if confusion.num_classes() != num_classes {
            return Err(CapnnError::Mismatch(format!(
                "confusion matrix covers {} classes, network has {num_classes}",
                confusion.num_classes()
            )));
        }
        let output_layer_idx = *net
            .prunable_layers()
            .last()
            .ok_or_else(|| CapnnError::Mismatch("network has no prunable layers".into()))?;
        let Layer::Dense(output) = &net.layers()[output_layer_idx] else {
            return Err(CapnnError::Mismatch(
                "the output layer must be dense to measure contributions".into(),
            ));
        };
        let n_last = output.in_features();
        let w = output.weights().as_slice(); // [classes × n_last]
        let mut sets = Vec::with_capacity(num_classes);
        for c in 0..num_classes {
            let confusers = confusion.top_confusing(c, self.config.top_confusing);
            let mut set = Vec::new();
            for i in 0..n_last {
                let toward_c = w[c * n_last + i];
                let toward_confuser = confusers
                    .iter()
                    .map(|&j| w[j * n_last + i])
                    .fold(f32::NEG_INFINITY, f32::max);
                if toward_confuser > toward_c {
                    set.push(i);
                }
            }
            sets.push(set);
        }
        Ok(sets)
    }

    /// Returns a copy of `rates` with `F_last(i, c) = 0` for every
    /// miseffectual unit `i` of class `c` — the firing-rate surgery that
    /// makes CAP'NN-W prune them.
    ///
    /// # Errors
    ///
    /// Returns an error if `rates` does not cover the last hidden layer.
    pub fn zero_miseffectual_rates(
        &self,
        net: &Network,
        rates: &FiringRates,
        sets: &[Vec<usize>],
    ) -> Result<FiringRates, CapnnError> {
        let tail = prunable_tail_without_output(net, self.config.tail_layers);
        let &last_hidden = tail
            .last()
            .ok_or_else(|| CapnnError::Mismatch("no prunable hidden layer in the tail".into()))?;
        let mut updated = rates.clone();
        let num_classes = rates.num_classes();
        let lr = updated
            .layers_mut()
            .iter_mut()
            .find(|l| l.layer == last_hidden)
            .ok_or_else(|| {
                CapnnError::Mismatch(format!("no firing rates for layer {last_hidden}"))
            })?;
        for (c, set) in sets.iter().enumerate().take(num_classes) {
            for &i in set {
                if i < lr.units() {
                    let cols = lr.rates.dims()[1];
                    lr.rates.as_mut_slice()[i * cols + c] = 0.0;
                }
            }
        }
        Ok(updated)
    }

    /// Full CAP'NN-M pruning: identify miseffectual units, zero their
    /// firing-rate entries, then run CAP'NN-W with the updated rates.
    ///
    /// # Errors
    ///
    /// Propagates errors from the identification step and from CAP'NN-W.
    pub fn prune(
        &self,
        net: &Network,
        rates: &FiringRates,
        confusion: &ConfusionMatrix,
        eval: &TailEvaluator,
        profile: &UserProfile,
    ) -> Result<PruneMask, CapnnError> {
        let sets = self.miseffectual_sets(net, confusion)?;
        let updated = self.zero_miseffectual_rates(net, rates, &sets)?;
        CapnnW::new(self.config)?.prune(net, &updated, eval, profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capnn_data::{VectorClusters, VectorClustersConfig};
    use capnn_nn::{model_size, Dense, NetworkBuilder, Trainer, TrainerConfig};
    use capnn_profile::FiringRateProfiler;
    use capnn_tensor::Tensor;

    fn trained_rig() -> (Network, FiringRates, ConfusionMatrix, TailEvaluator) {
        let gen = VectorClusters::new(VectorClustersConfig::easy(4, 6)).unwrap();
        let mut net = NetworkBuilder::mlp(&[6, 16, 12, 4], 2).build().unwrap();
        let cfg = TrainerConfig {
            epochs: 12,
            ..TrainerConfig::default()
        };
        Trainer::new(cfg, 1)
            .fit(&mut net, gen.generate(30, 1).samples())
            .unwrap();
        let profile_ds = gen.generate(20, 2);
        let rates = FiringRateProfiler::new(3)
            .profile(&net, &profile_ds)
            .unwrap();
        let confusion = ConfusionMatrix::measure(&net, &profile_ds).unwrap();
        let eval = TailEvaluator::new(&net, &gen.generate(15, 3), 3).unwrap();
        (net, rates, confusion, eval)
    }

    #[test]
    fn miseffectual_sets_identified_from_output_weights() {
        // Hand-built: last hidden layer of 3 units feeding 3 classes.
        // Unit 0 points at class 0, unit 1 at class 1, unit 2 at class 2.
        let hidden = Dense::new(
            Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0], &[3, 2]).unwrap(),
            Tensor::zeros(&[3]),
        )
        .unwrap();
        let output = Dense::new(
            Tensor::from_vec(
                vec![
                    2.0, -1.0, 0.0, // class 0 weights over units
                    -1.0, 2.0, 0.0, // class 1
                    0.0, 0.0, 2.0, // class 2
                ],
                &[3, 3],
            )
            .unwrap(),
            Tensor::zeros(&[3]),
        )
        .unwrap();
        let net = Network::new(
            vec![Layer::Dense(hidden), Layer::Relu, Layer::Dense(output)],
            &[2],
        )
        .unwrap();
        // confusion: class 0 confused with 1, class 1 with 0, class 2 clean
        let cm = ConfusionMatrix::from_fractions(
            Tensor::from_vec(vec![0.7, 0.3, 0.0, 0.3, 0.7, 0.0, 0.0, 0.0, 1.0], &[3, 3]).unwrap(),
        )
        .unwrap();
        let mut cfg = PruningConfig::fast();
        cfg.top_confusing = 1;
        let m = CapnnM::new(cfg).unwrap();
        let sets = m.miseffectual_sets(&net, &cm).unwrap();
        // For class 0 (confuser = 1): unit 1 has w[1] = 2 > w[0] = -1 → miseffectual.
        assert!(sets[0].contains(&1));
        assert!(!sets[0].contains(&0));
        // Symmetric for class 1.
        assert!(sets[1].contains(&0));
        assert!(!sets[1].contains(&1));
        // Class 2's confuser is whichever of 0/1 ties at 0.0 — unit 2 points
        // squarely at class 2 and must never be miseffectual for it.
        assert!(!sets[2].contains(&2));
    }

    #[test]
    fn zeroing_only_touches_last_hidden_layer() {
        let (net, rates, confusion, _) = trained_rig();
        let m = CapnnM::new(PruningConfig::fast()).unwrap();
        let sets = m.miseffectual_sets(&net, &confusion).unwrap();
        let updated = m.zero_miseffectual_rates(&net, &rates, &sets).unwrap();
        let tail = prunable_tail_without_output(&net, 3);
        let last_hidden = *tail.last().unwrap();
        for (orig, upd) in rates.layers().iter().zip(updated.layers()) {
            if orig.layer == last_hidden {
                // zeroed entries must be exactly the miseffectual ones
                for (c, set) in sets.iter().enumerate() {
                    for &i in set {
                        assert_eq!(upd.rate(i, c), 0.0);
                    }
                }
            } else {
                assert_eq!(orig.rates, upd.rates, "layer {} changed", orig.layer);
            }
        }
    }

    #[test]
    fn epsilon_guarantee_holds_for_m() {
        let (net, rates, confusion, eval) = trained_rig();
        let m = CapnnM::new(PruningConfig::fast()).unwrap();
        for classes in [vec![0, 1], vec![2, 3]] {
            let profile = UserProfile::uniform(classes.clone()).unwrap();
            let mask = m.prune(&net, &rates, &confusion, &eval, &profile).unwrap();
            let d = eval.max_degradation(&mask, Some(&classes)).unwrap();
            assert!(
                d <= PruningConfig::fast().epsilon + 1e-6,
                "classes {classes:?}: degradation {d}"
            );
        }
    }

    #[test]
    fn m_prunes_at_least_as_much_as_w() {
        let (net, rates, confusion, eval) = trained_rig();
        let cfg = PruningConfig::fast();
        let w = CapnnW::new(cfg).unwrap();
        let m = CapnnM::new(cfg).unwrap();
        let profile = UserProfile::new(vec![0, 1], vec![0.8, 0.2]).unwrap();
        let mask_w = w.prune(&net, &rates, &eval, &profile).unwrap();
        let mask_m = m.prune(&net, &rates, &confusion, &eval, &profile).unwrap();
        let size_w = model_size(&net, &mask_w).unwrap().total();
        let size_m = model_size(&net, &mask_m).unwrap().total();
        assert!(
            size_m <= size_w,
            "M should prune at least as much: W → {size_w}, M → {size_m}"
        );
    }

    #[test]
    fn mismatched_confusion_rejected() {
        let (net, _, _, _) = trained_rig();
        let m = CapnnM::new(PruningConfig::fast()).unwrap();
        let wrong = ConfusionMatrix::from_fractions(Tensor::zeros(&[7, 7])).unwrap();
        assert!(m.miseffectual_sets(&net, &wrong).is_err());
    }
}
