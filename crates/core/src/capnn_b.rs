//! CAP'NN-B: basic class-aware pruning (Algorithm 1 + online intersection).
//!
//! Offline, per layer and per class, a threshold search finds the largest
//! set of low-firing-rate units whose simultaneous removal (together with
//! the sets accepted in earlier tail layers) keeps *every* class's accuracy
//! degradation below ε. The result is a binary pruning matrix `P_ℓ` per
//! layer. Online, for a user's class subset `K`, the pruned set is the
//! intersection `∩_{c∈K} P_ℓ(:, c)` — a cheap bit-wise AND, which is why
//! CAP'NN-B has near-zero online cost.

use crate::config::PruningConfig;
use crate::error::CapnnError;
use crate::eval::TailEvaluator;
use capnn_nn::{Network, PruneMask};
use capnn_profile::FiringRates;
use serde::{Deserialize, Serialize};

/// Per-class pruning matrices produced by Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PruningMatrices {
    /// One entry per prunable tail layer.
    layers: Vec<LayerMatrix>,
    num_classes: usize,
}

/// The binary pruning matrix of one layer: `matrix[n * classes + c]` is true
/// if unit `n` may be pruned for class `c`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerMatrix {
    /// Layer index within the network.
    pub layer: usize,
    /// Number of prunable units.
    pub units: usize,
    /// Row-major `[units × classes]` prune flags.
    pub matrix: Vec<bool>,
}

impl LayerMatrix {
    /// Whether unit `n` may be pruned for class `c`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn may_prune(&self, n: usize, c: usize, num_classes: usize) -> bool {
        self.matrix[n * num_classes + c]
    }
}

impl PruningMatrices {
    /// Per-layer matrices, in tail order.
    pub fn layers(&self) -> &[LayerMatrix] {
        &self.layers
    }

    /// Number of classes covered.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Storage footprint in bytes at one bit per entry (what the cloud
    /// stores for CAP'NN-B).
    pub fn memory_bytes(&self) -> u64 {
        let bits: u64 = self.layers.iter().map(|l| l.matrix.len() as u64).sum();
        bits.div_ceil(8)
    }

    /// The per-class prune mask for a single class (column `c` of every
    /// matrix).
    ///
    /// # Errors
    ///
    /// Returns an error if `c` is out of range or `net` does not match.
    pub fn class_mask(&self, net: &Network, c: usize) -> Result<PruneMask, CapnnError> {
        if c >= self.num_classes {
            return Err(CapnnError::Mismatch(format!(
                "class {c} out of range for {} classes",
                self.num_classes
            )));
        }
        let mut mask = PruneMask::all_kept(net);
        for lm in &self.layers {
            let flags: Vec<bool> = (0..lm.units)
                .map(|n| !lm.matrix[n * self.num_classes + c])
                .collect();
            mask.set_layer(lm.layer, flags)?;
        }
        Ok(mask)
    }
}

/// The CAP'NN-B pruner.
///
/// # Examples
///
/// See the `capnn_b_end_to_end` integration test and
/// `examples/quickstart.rs` for full offline + online usage.
#[derive(Debug, Clone, Copy)]
pub struct CapnnB {
    config: PruningConfig,
}

impl CapnnB {
    /// Creates a pruner with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CapnnError::Config`] if the configuration is invalid.
    pub fn new(config: PruningConfig) -> Result<Self, CapnnError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The pruner's configuration.
    pub fn config(&self) -> &PruningConfig {
        &self.config
    }

    /// Algorithm 1: computes the per-class pruning matrices offline.
    ///
    /// Visits the prunable tail layers in order; for each layer and class,
    /// lowers the firing-rate threshold from `T_start` in `step` decrements
    /// until the temporarily-pruned network (including classes' accepted
    /// sets from earlier layers) degrades no class by more than ε.
    ///
    /// The output layer (last prunable layer) is exempt: its units are the
    /// class logits themselves (§V-C).
    ///
    /// # Errors
    ///
    /// Returns an error if `rates` does not cover the tail layers or the
    /// evaluator's network disagrees with `net`.
    pub fn offline(
        &self,
        net: &Network,
        rates: &FiringRates,
        eval: &TailEvaluator,
    ) -> Result<PruningMatrices, CapnnError> {
        let tail = prunable_tail_without_output(net, self.config.tail_layers);
        let num_classes = rates.num_classes();
        let mut out_layers: Vec<LayerMatrix> = Vec::with_capacity(tail.len());
        for &li in &tail {
            let lr = rates
                .for_layer(li)
                .ok_or_else(|| CapnnError::Mismatch(format!("no firing rates for layer {li}")))?;
            let units = lr.units();
            let mut matrix = vec![false; units * num_classes];
            for c in 0..num_classes {
                // Threshold search for this (layer, class).
                let mut t = self.config.t_start;
                loop {
                    let flagged: Vec<usize> = (0..units).filter(|&n| lr.rate(n, c) < t).collect();
                    let mut mask = PruneMask::all_kept(net);
                    // earlier tail layers: this class's accepted prune sets
                    for prev in &out_layers {
                        let flags: Vec<bool> = (0..prev.units)
                            .map(|n| !prev.matrix[n * num_classes + c])
                            .collect();
                        mask.set_layer(prev.layer, flags)?;
                    }
                    let mut flags = vec![true; units];
                    for &n in &flagged {
                        flags[n] = false;
                    }
                    mask.set_layer(li, flags)?;
                    let degradation =
                        eval.max_degradation_metric(&mask, None, self.config.metric)?;
                    if degradation <= self.config.epsilon {
                        for &n in &flagged {
                            matrix[n * num_classes + c] = true;
                        }
                        break;
                    }
                    t -= self.config.step;
                    if t <= 0.0 {
                        // empty candidate set is always safe (earlier layers
                        // were accepted with zero extra pruning here)
                        break;
                    }
                }
            }
            out_layers.push(LayerMatrix {
                layer: li,
                units,
                matrix,
            });
        }
        Ok(PruningMatrices {
            layers: out_layers,
            num_classes,
        })
    }

    /// Online pruning: the prune set for `classes` is the intersection of
    /// the per-class prune columns.
    ///
    /// # Errors
    ///
    /// Returns an error if a class id is out of range or `net` does not
    /// match the matrices.
    pub fn online(
        net: &Network,
        matrices: &PruningMatrices,
        classes: &[usize],
    ) -> Result<PruneMask, CapnnError> {
        if classes.is_empty() {
            return Err(CapnnError::Profile("no classes requested".into()));
        }
        if let Some(&bad) = classes.iter().find(|&&c| c >= matrices.num_classes) {
            return Err(CapnnError::Mismatch(format!(
                "class {bad} out of range for {} classes",
                matrices.num_classes
            )));
        }
        let mut mask = PruneMask::all_kept(net);
        let nc = matrices.num_classes;
        for lm in &matrices.layers {
            let flags: Vec<bool> = (0..lm.units)
                .map(|n| {
                    let prune_for_all = classes.iter().all(|&c| lm.matrix[n * nc + c]);
                    !prune_for_all
                })
                .collect();
            mask.set_layer(lm.layer, flags)?;
        }
        Ok(mask)
    }
}

/// The prunable tail of `net`, excluding the final (output) layer.
pub(crate) fn prunable_tail_without_output(net: &Network, tail_layers: usize) -> Vec<usize> {
    let mut tail = net.prunable_tail(tail_layers);
    let all = net.prunable_layers();
    if let (Some(&last_tail), Some(&last_all)) = (tail.last(), all.last()) {
        if last_tail == last_all {
            tail.pop();
        }
    }
    tail
}

#[cfg(test)]
mod tests {
    use super::*;
    use capnn_data::{VectorClusters, VectorClustersConfig};
    use capnn_nn::{NetworkBuilder, Trainer, TrainerConfig};
    use capnn_profile::FiringRateProfiler;

    pub(crate) fn trained_rig() -> (Network, FiringRates, TailEvaluator) {
        let gen = VectorClusters::new(VectorClustersConfig::easy(4, 6)).unwrap();
        let mut net = NetworkBuilder::mlp(&[6, 16, 12, 4], 2).build().unwrap();
        let cfg = TrainerConfig {
            epochs: 12,
            ..TrainerConfig::default()
        };
        Trainer::new(cfg, 1)
            .fit(&mut net, gen.generate(30, 1).samples())
            .unwrap();
        let profile_ds = gen.generate(20, 2);
        let rates = FiringRateProfiler::new(3)
            .profile(&net, &profile_ds)
            .unwrap();
        let eval = TailEvaluator::new(&net, &gen.generate(15, 3), 3).unwrap();
        (net, rates, eval)
    }

    #[test]
    fn tail_without_output_drops_last_layer() {
        let net = NetworkBuilder::mlp(&[4, 8, 6, 3], 1).build().unwrap();
        let tail = prunable_tail_without_output(&net, 3);
        let all = net.prunable_layers();
        assert_eq!(tail, all[..2].to_vec());
        // tail smaller than total layers
        let tail1 = prunable_tail_without_output(&net, 2);
        assert_eq!(tail1, vec![all[1]]);
    }

    #[test]
    fn offline_respects_epsilon_for_every_class_column() {
        let (net, rates, eval) = trained_rig();
        let pruner = CapnnB::new(PruningConfig::fast()).unwrap();
        let matrices = pruner.offline(&net, &rates, &eval).unwrap();
        assert_eq!(matrices.num_classes(), 4);
        for c in 0..4 {
            let mask = matrices.class_mask(&net, c).unwrap();
            let d = eval.max_degradation(&mask, None).unwrap();
            assert!(
                d <= PruningConfig::fast().epsilon + 1e-6,
                "class {c} degradation {d}"
            );
        }
    }

    #[test]
    fn online_mask_is_intersection() {
        let (net, rates, eval) = trained_rig();
        let pruner = CapnnB::new(PruningConfig::fast()).unwrap();
        let matrices = pruner.offline(&net, &rates, &eval).unwrap();
        let m0 = matrices.class_mask(&net, 0).unwrap();
        let m1 = matrices.class_mask(&net, 1).unwrap();
        let online = CapnnB::online(&net, &matrices, &[0, 1]).unwrap();
        let expected = m0.intersect_pruned(&m1).unwrap();
        assert_eq!(online, expected);
    }

    #[test]
    fn online_more_classes_prunes_no_more() {
        let (net, rates, eval) = trained_rig();
        let pruner = CapnnB::new(PruningConfig::fast()).unwrap();
        let matrices = pruner.offline(&net, &rates, &eval).unwrap();
        let two = CapnnB::online(&net, &matrices, &[0, 1]).unwrap();
        let three = CapnnB::online(&net, &matrices, &[0, 1, 2]).unwrap();
        assert!(three.pruned_count() <= two.pruned_count());
        assert!(three.is_subset_of(&two));
    }

    #[test]
    fn online_single_class_equals_class_mask() {
        let (net, rates, eval) = trained_rig();
        let pruner = CapnnB::new(PruningConfig::fast()).unwrap();
        let matrices = pruner.offline(&net, &rates, &eval).unwrap();
        let online = CapnnB::online(&net, &matrices, &[2]).unwrap();
        assert_eq!(online, matrices.class_mask(&net, 2).unwrap());
    }

    #[test]
    fn online_guarantees_epsilon_for_any_subset() {
        let (net, rates, eval) = trained_rig();
        let pruner = CapnnB::new(PruningConfig::fast()).unwrap();
        let matrices = pruner.offline(&net, &rates, &eval).unwrap();
        for classes in [vec![0], vec![1, 3], vec![0, 1, 2, 3]] {
            let mask = CapnnB::online(&net, &matrices, &classes).unwrap();
            let d = eval.max_degradation(&mask, None).unwrap();
            assert!(
                d <= PruningConfig::fast().epsilon + 1e-6,
                "classes {classes:?}: degradation {d}"
            );
        }
    }

    #[test]
    fn online_rejects_bad_requests() {
        let (net, rates, eval) = trained_rig();
        let pruner = CapnnB::new(PruningConfig::fast()).unwrap();
        let matrices = pruner.offline(&net, &rates, &eval).unwrap();
        assert!(CapnnB::online(&net, &matrices, &[]).is_err());
        assert!(CapnnB::online(&net, &matrices, &[99]).is_err());
        assert!(matrices.class_mask(&net, 99).is_err());
    }

    #[test]
    fn memory_accounting_counts_bits() {
        let (net, rates, eval) = trained_rig();
        let pruner = CapnnB::new(PruningConfig::fast()).unwrap();
        let matrices = pruner.offline(&net, &rates, &eval).unwrap();
        let entries: u64 = matrices
            .layers()
            .iter()
            .map(|l| l.matrix.len() as u64)
            .sum();
        assert_eq!(matrices.memory_bytes(), entries.div_ceil(8));
        let _ = net;
    }

    #[test]
    fn invalid_config_rejected() {
        let mut cfg = PruningConfig::paper();
        cfg.step = -1.0;
        assert!(CapnnB::new(cfg).is_err());
    }
}
