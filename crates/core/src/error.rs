//! Error type for the CAP'NN pruning framework.

use capnn_nn::NnError;
use std::error::Error;
use std::fmt;

/// Error produced by CAP'NN pruning, evaluation or the cloud/device
/// framework.
#[derive(Debug, Clone, PartialEq)]
pub enum CapnnError {
    /// A user profile was inconsistent (duplicate classes, bad weights,
    /// out-of-range class ids).
    Profile(String),
    /// A pruning configuration was invalid.
    Config(String),
    /// Inputs (network / firing rates / evaluator) disagree about structure.
    Mismatch(String),
    /// The underlying network substrate failed.
    Network(NnError),
    /// A serving front-end rejected the request under admission control:
    /// its queues are at capacity. This is backpressure, not failure — the
    /// caller should retry later or shed the request.
    Overloaded(String),
    /// A serving front-end is shutting down (or already gone) and can no
    /// longer accept or answer requests.
    Unavailable(String),
    /// An internal invariant was violated — a bug in this crate, not in the
    /// caller's input. Public APIs surface this instead of panicking.
    Internal(String),
}

impl fmt::Display for CapnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapnnError::Profile(m) => write!(f, "invalid user profile: {m}"),
            CapnnError::Config(m) => write!(f, "invalid pruning configuration: {m}"),
            CapnnError::Mismatch(m) => write!(f, "structural mismatch: {m}"),
            CapnnError::Network(e) => write!(f, "network error: {e}"),
            CapnnError::Overloaded(m) => write!(f, "server overloaded: {m}"),
            CapnnError::Unavailable(m) => write!(f, "server unavailable: {m}"),
            CapnnError::Internal(m) => write!(f, "internal invariant violated: {m}"),
        }
    }
}

impl Error for CapnnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CapnnError::Network(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for CapnnError {
    fn from(e: NnError) -> Self {
        CapnnError::Network(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CapnnError::Profile("dup".into())
            .to_string()
            .contains("dup"));
        assert!(CapnnError::Config("eps".into()).to_string().contains("eps"));
        assert!(CapnnError::Mismatch("layers".into())
            .to_string()
            .contains("layers"));
        assert!(CapnnError::Internal("lost".into())
            .to_string()
            .contains("internal invariant"));
        assert!(CapnnError::Overloaded("queue full".into())
            .to_string()
            .contains("overloaded"));
        assert!(CapnnError::Unavailable("shutting down".into())
            .to_string()
            .contains("unavailable"));
    }

    #[test]
    fn wraps_nn_error() {
        let e: CapnnError = NnError::Config("x".into()).into();
        assert!(matches!(e, CapnnError::Network(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CapnnError>();
    }
}
