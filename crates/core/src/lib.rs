//! CAP'NN: Class-Aware Personalized Neural Network Inference.
//!
//! This crate implements the DAC 2020 paper's contribution: pruning an
//! *already-trained* CNN, without retraining, for the subset of output
//! classes a specific user actually encounters. Three variants are provided:
//!
//! * [`CapnnB`] — per-class pruning matrices computed offline (Algorithm 1);
//!   online personalization is a near-free intersection of bit columns.
//! * [`CapnnW`] — thresholds *effective* firing rates `Σ w_k·F(n,k)` online
//!   (Algorithm 2), exploiting the user's usage distribution for more
//!   aggressive pruning.
//! * [`CapnnM`] — identifies *miseffectual* neurons (units pushing the
//!   classifier toward a class's top confusers) and prunes them too, which
//!   can *improve* accuracy over the unpruned model.
//!
//! All variants guarantee that per-class accuracy on the evaluation set
//! degrades by at most ε (default 3 %). The [`CloudServer`]/[`LocalDevice`]
//! pair models the paper's deployment: the cloud owns the full model and the
//! offline profiles; devices receive compacted networks and can request
//! re-personalization when monitored usage drifts.
//!
//! # Examples
//!
//! ```
//! use capnn_core::{CloudServer, PruningConfig, UserProfile, Variant};
//! use capnn_data::{VectorClusters, VectorClustersConfig};
//! use capnn_nn::{NetworkBuilder, Trainer, TrainerConfig};
//!
//! // 1. A commodity trained model (the substrate stands in for VGG-16).
//! let gen = VectorClusters::new(VectorClustersConfig::easy(4, 6))?;
//! let mut net = NetworkBuilder::mlp(&[6, 16, 12, 4], 2).build().unwrap();
//! let cfg = TrainerConfig { epochs: 8, ..TrainerConfig::default() };
//! Trainer::new(cfg, 1).fit(&mut net, gen.generate(20, 1).samples()).unwrap();
//!
//! // 2. Cloud-side offline profiling.
//! let mut cloud = CloudServer::new(
//!     net, &gen.generate(15, 2), &gen.generate(10, 3), PruningConfig::fast(),
//! ).unwrap();
//!
//! // 3. Personalize for a user who mostly sees class 0.
//! let profile = UserProfile::new(vec![0, 1], vec![0.9, 0.1]).unwrap();
//! let model = cloud.personalize(&profile, Variant::Miseffectual).unwrap();
//! assert!(model.relative_size <= 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod cache;
mod capnn_b;
mod capnn_m;
mod capnn_w;
mod certificate;
mod cloud;
mod config;
mod error;
mod eval;
mod protocol;
mod server;
mod session;
mod user;

pub use cache::{CacheStats, FleetPlanCache, ModelCache, ProfileKey};
pub use capnn_b::{CapnnB, LayerMatrix, PruningMatrices};
pub use capnn_m::CapnnM;
pub use capnn_w::CapnnW;
pub use certificate::{ClassEvidence, PruningCertificate};
pub use cloud::{
    CloudServer, LocalDevice, PersonalizationRequest, PersonalizationRequestBuilder,
    PersonalizationResponse, PersonalizedModel, Variant,
};
pub use config::PruningConfig;
pub use error::CapnnError;
pub use eval::{ClassAccuracy, DegradationMetric, TailEvaluator};
pub use protocol::{transfer_cost, TransferCost};
pub use server::{
    BucketStat, ControllerConfig, ControllerSnapshot, DriftConfig, InferenceServer, ResponseHandle,
    ServeRequest, ServeResponse, ServerConfig, ServerHandle, ServerStats, SharedFleetCache,
};
pub use session::{
    DriftDecision, DriftPolicy, DriftPolicyBuilder, PersonalizationSession, StreamingDriftMonitor,
};
pub use user::UserProfile;
