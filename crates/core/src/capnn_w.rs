//! CAP'NN-W: weighted class-aware pruning (Algorithm 2).
//!
//! Instead of per-class binary matrices, CAP'NN-W thresholds each unit's
//! *effective firing rate* `Σ_{k∈K} w_k · F(n, k)` — how often the unit
//! fires weighted by how often the user actually encounters each class. A
//! unit that fires only for a rarely-used class can now be pruned (Fig. 3 of
//! the paper), so CAP'NN-W prunes strictly more aggressively than CAP'NN-B.
//! The cost: the search runs online (the weights are only known then) and
//! the cloud must store real-valued firing rates (quantized; see
//! `capnn_profile::quantize_rates`).

use crate::capnn_b::prunable_tail_without_output;
use crate::config::PruningConfig;
use crate::error::CapnnError;
use crate::eval::TailEvaluator;
use crate::user::UserProfile;
use capnn_nn::{Network, PruneMask};
use capnn_profile::FiringRates;

/// The CAP'NN-W pruner.
///
/// # Examples
///
/// See `examples/personalize.rs` for end-to-end usage; unit tests below
/// exercise the ε guarantee and the Fig. 3 aggressiveness property.
#[derive(Debug, Clone, Copy)]
pub struct CapnnW {
    config: PruningConfig,
}

impl CapnnW {
    /// Creates a pruner with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CapnnError::Config`] if the configuration is invalid.
    pub fn new(config: PruningConfig) -> Result<Self, CapnnError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The pruner's configuration.
    pub fn config(&self) -> &PruningConfig {
        &self.config
    }

    /// Algorithm 2, applied layer by layer over the prunable tail: flags
    /// units whose effective firing rate is at most the threshold, accepts
    /// the flagged set if no *user* class degrades by more than ε
    /// (accounting for the sets already accepted in earlier layers), and
    /// otherwise lowers the threshold and retries.
    ///
    /// # Errors
    ///
    /// Returns an error if the profile does not fit the model or the rates
    /// do not cover the tail.
    pub fn prune(
        &self,
        net: &Network,
        rates: &FiringRates,
        eval: &TailEvaluator,
        profile: &UserProfile,
    ) -> Result<PruneMask, CapnnError> {
        if !profile.fits_model(rates.num_classes()) {
            return Err(CapnnError::Profile(format!(
                "profile classes {:?} exceed model's {} classes",
                profile.classes(),
                rates.num_classes()
            )));
        }
        let tail = prunable_tail_without_output(net, self.config.tail_layers);
        let mut mask = PruneMask::all_kept(net);
        let user_classes = profile.classes();
        for &li in &tail {
            let lr = rates
                .for_layer(li)
                .ok_or_else(|| CapnnError::Mismatch(format!("no firing rates for layer {li}")))?;
            let units = lr.units();
            let eff: Vec<f32> = (0..units)
                .map(|n| lr.effective_rate(n, user_classes, profile.weights()))
                .collect();
            let mut t = self.config.t_start;
            loop {
                let flags: Vec<bool> = eff.iter().map(|&e| e > t).collect();
                let mut candidate = mask.clone();
                candidate.set_layer(li, flags.clone())?;
                let degradation = eval.max_degradation_metric(
                    &candidate,
                    Some(user_classes),
                    self.config.metric,
                )?;
                if degradation <= self.config.epsilon {
                    mask = candidate;
                    break;
                }
                t -= self.config.step;
                if t <= 0.0 {
                    // keep every unit of this layer; earlier acceptances stand
                    break;
                }
            }
        }
        Ok(mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capnn_b::{CapnnB, PruningMatrices};
    use capnn_data::{VectorClusters, VectorClustersConfig};
    use capnn_nn::{model_size, NetworkBuilder, Trainer, TrainerConfig};
    use capnn_profile::{FiringRateProfiler, FiringRates, LayerRates};
    use capnn_tensor::Tensor;

    fn trained_rig() -> (Network, FiringRates, TailEvaluator) {
        let gen = VectorClusters::new(VectorClustersConfig::easy(4, 6)).unwrap();
        let mut net = NetworkBuilder::mlp(&[6, 16, 12, 4], 2).build().unwrap();
        let cfg = TrainerConfig {
            epochs: 12,
            ..TrainerConfig::default()
        };
        Trainer::new(cfg, 1)
            .fit(&mut net, gen.generate(30, 1).samples())
            .unwrap();
        let rates = FiringRateProfiler::new(3)
            .profile(&net, &gen.generate(20, 2))
            .unwrap();
        let eval = TailEvaluator::new(&net, &gen.generate(15, 3), 3).unwrap();
        (net, rates, eval)
    }

    #[test]
    fn epsilon_guarantee_on_user_classes() {
        let (net, rates, eval) = trained_rig();
        let pruner = CapnnW::new(PruningConfig::fast()).unwrap();
        for classes in [vec![0, 1], vec![2, 3], vec![0, 1, 2, 3]] {
            let profile = UserProfile::uniform(classes.clone()).unwrap();
            let mask = pruner.prune(&net, &rates, &eval, &profile).unwrap();
            let d = eval.max_degradation(&mask, Some(&classes)).unwrap();
            assert!(
                d <= PruningConfig::fast().epsilon + 1e-6,
                "classes {classes:?}: degradation {d}"
            );
        }
    }

    #[test]
    fn weighted_prunes_at_least_as_much_as_basic() {
        let (net, rates, eval) = trained_rig();
        let cfg = PruningConfig::fast();
        let b = CapnnB::new(cfg).unwrap();
        let matrices: PruningMatrices = b.offline(&net, &rates, &eval).unwrap();
        let w = CapnnW::new(cfg).unwrap();
        // a heavily skewed profile should expose extra pruning opportunities
        let profile = UserProfile::new(vec![0, 1], vec![0.9, 0.1]).unwrap();
        let mask_b = CapnnB::online(&net, &matrices, profile.classes()).unwrap();
        let mask_w = w.prune(&net, &rates, &eval, &profile).unwrap();
        let size_b = model_size(&net, &mask_b).unwrap().total();
        let size_w = model_size(&net, &mask_w).unwrap().total();
        assert!(
            size_w <= size_b,
            "W should prune at least as much: B → {size_b}, W → {size_w}"
        );
    }

    #[test]
    fn fig3_worked_example() {
        // Paper Fig. 3: three neurons, three classes, T = 0.1,
        // weights (0.8, 0.1, 0.1). Neuron n1 fires 0.05/0.3/0.02 — B keeps it
        // (0.3 ≥ T for class c2) but W prunes it (effective rate
        // 0.8·0.05 + 0.1·0.3 + 0.1·0.02 = 0.072 < 0.1).
        let lr = LayerRates {
            layer: 0,
            rates: Tensor::from_vec(
                vec![
                    0.05, 0.30, 0.02, // n1
                    0.50, 0.40, 0.60, // n2: fires a lot, never pruned
                    0.02, 0.03, 0.01, // n3: ineffectual everywhere
                ],
                &[3, 3],
            )
            .unwrap(),
        };
        let t = 0.1;
        let weights = [0.8f32, 0.1, 0.1];
        let classes = [0usize, 1, 2];
        // B's rule at threshold t: prunable for subset iff rate < t for ALL
        let b_prunes_n1 = (0..3).all(|c| lr.rate(0, c) < t);
        assert!(!b_prunes_n1, "B must keep n1 (c2 rate 0.3 ≥ 0.1)");
        let w_eff_n1 = lr.effective_rate(0, &classes, &weights);
        assert!(
            w_eff_n1 < t,
            "W must prune n1 (effective rate {w_eff_n1} < 0.1)"
        );
        // n3 pruned by both; n2 pruned by neither
        assert!((0..3).all(|c| lr.rate(2, c) < t));
        assert!(lr.effective_rate(1, &classes, &weights) >= t);
    }

    #[test]
    fn one_hot_profile_reduces_to_single_class_rates() {
        let (net, rates, eval) = trained_rig();
        let pruner = CapnnW::new(PruningConfig::fast()).unwrap();
        // weight 1 on class 0 — effective rate equals F(n, 0)
        let profile = UserProfile::new(vec![0], vec![1.0]).unwrap();
        let mask = pruner.prune(&net, &rates, &eval, &profile).unwrap();
        let d = eval.max_degradation(&mask, Some(&[0])).unwrap();
        assert!(d <= PruningConfig::fast().epsilon + 1e-6);
    }

    #[test]
    fn rejects_profile_out_of_range() {
        let (net, rates, eval) = trained_rig();
        let pruner = CapnnW::new(PruningConfig::fast()).unwrap();
        let profile = UserProfile::uniform(vec![0, 99]).unwrap();
        assert!(pruner.prune(&net, &rates, &eval, &profile).is_err());
    }

    #[test]
    fn never_prunes_output_layer() {
        let (net, rates, eval) = trained_rig();
        let pruner = CapnnW::new(PruningConfig::fast()).unwrap();
        let profile = UserProfile::uniform(vec![0]).unwrap();
        let mask = pruner.prune(&net, &rates, &eval, &profile).unwrap();
        let output_layer = *net.prunable_layers().last().unwrap();
        assert_eq!(mask.kept_in_layer(output_layer), net.num_classes());
    }
}
