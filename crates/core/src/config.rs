//! Pruning hyper-parameters shared by all CAP'NN variants.

use crate::error::CapnnError;
use crate::eval::DegradationMetric;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the threshold-search pruning loop (Algorithms 1/2).
///
/// The defaults match the paper's evaluation: ε = 3 %, `T_start = 0.4`,
/// `step = 0.025`, pruning the last 6 layers (with the output layer itself
/// exempt from pruning, per §V-C).
///
/// # Examples
///
/// ```
/// use capnn_core::PruningConfig;
///
/// let cfg = PruningConfig::paper();
/// assert!((cfg.epsilon - 0.03).abs() < 1e-6);
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PruningConfig {
    /// Maximum allowed per-class accuracy degradation (fraction, e.g. 0.03).
    pub epsilon: f32,
    /// Initial firing-rate threshold `T_start`.
    pub t_start: f32,
    /// Threshold reduction per rejected candidate set.
    pub step: f32,
    /// Number of trailing prunable layers considered (`|L| - l_start`);
    /// the final output layer inside this tail is never pruned.
    pub tail_layers: usize,
    /// How many confusing classes CAP'NN-M considers per user class
    /// (paper: 5, tied to top-5 accuracy).
    pub top_confusing: usize,
    /// The accuracy notion the ε bound uses (paper: per-class top-1; a
    /// top-k bound is looser and admits more pruning).
    pub metric: DegradationMetric,
}

impl PruningConfig {
    /// The paper's configuration (§V).
    pub fn paper() -> Self {
        Self {
            epsilon: 0.03,
            t_start: 0.4,
            step: 0.025,
            tail_layers: 6,
            top_confusing: 5,
            metric: DegradationMetric::Top1,
        }
    }

    /// A faster configuration for tests: coarser threshold steps, smaller
    /// tail.
    pub fn fast() -> Self {
        Self {
            epsilon: 0.03,
            t_start: 0.4,
            step: 0.1,
            tail_layers: 3,
            top_confusing: 3,
            metric: DegradationMetric::Top1,
        }
    }

    /// Checks that all fields are in range.
    ///
    /// # Errors
    ///
    /// Returns [`CapnnError::Config`] describing the first violation.
    pub fn validate(&self) -> Result<(), CapnnError> {
        if !(0.0..=1.0).contains(&self.epsilon) || !self.epsilon.is_finite() {
            return Err(CapnnError::Config(format!(
                "epsilon must be in [0, 1], got {}",
                self.epsilon
            )));
        }
        if !(0.0..=1.0).contains(&self.t_start) {
            return Err(CapnnError::Config(format!(
                "t_start must be in [0, 1], got {}",
                self.t_start
            )));
        }
        if self.step <= 0.0 || !self.step.is_finite() {
            return Err(CapnnError::Config(format!(
                "step must be positive, got {}",
                self.step
            )));
        }
        if self.tail_layers == 0 {
            return Err(CapnnError::Config("tail_layers must be positive".into()));
        }
        if self.top_confusing == 0 {
            return Err(CapnnError::Config("top_confusing must be positive".into()));
        }
        if let DegradationMetric::TopK(k) = self.metric {
            if k == 0 {
                return Err(CapnnError::Config("top-k metric needs k ≥ 1".into()));
            }
        }
        Ok(())
    }
}

impl Default for PruningConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = PruningConfig::paper();
        assert_eq!(c, PruningConfig::default());
        assert!((c.t_start - 0.4).abs() < 1e-6);
        assert!((c.step - 0.025).abs() < 1e-6);
        assert_eq!(c.tail_layers, 6);
        assert_eq!(c.top_confusing, 5);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_fields() {
        let mut c = PruningConfig::paper();
        c.epsilon = -0.1;
        assert!(c.validate().is_err());
        let mut c = PruningConfig::paper();
        c.epsilon = 1.5;
        assert!(c.validate().is_err());
        let mut c = PruningConfig::paper();
        c.t_start = 2.0;
        assert!(c.validate().is_err());
        let mut c = PruningConfig::paper();
        c.step = 0.0;
        assert!(c.validate().is_err());
        let mut c = PruningConfig::paper();
        c.tail_layers = 0;
        assert!(c.validate().is_err());
        let mut c = PruningConfig::paper();
        c.top_confusing = 0;
        assert!(c.validate().is_err());
    }
}
