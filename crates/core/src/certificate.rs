//! ε-guarantee certificates.
//!
//! Every CAP'NN variant promises that per-class accuracy on the evaluation
//! set degrades by at most ε. A [`PruningCertificate`] materializes the
//! evidence for one accepted mask — per-class baseline vs pruned accuracy,
//! the metric and tolerance used, and the evaluation-set size — so the
//! cloud can attach an auditable record to every model it ships and a
//! device (or a test) can re-verify the claim without re-running the
//! search.

use crate::error::CapnnError;
use crate::eval::{DegradationMetric, TailEvaluator};
use capnn_nn::PruneMask;
use serde::{Deserialize, Serialize};

/// Per-class entry of a certificate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassEvidence {
    /// Class id.
    pub class: usize,
    /// Accuracy of the unpruned model on this class.
    pub baseline: f32,
    /// Accuracy of the pruned model on this class.
    pub pruned: f32,
}

impl ClassEvidence {
    /// Degradation (positive = worse than baseline, clamped at 0 from
    /// below when the pruned model improved).
    pub fn degradation(&self) -> f32 {
        self.baseline - self.pruned
    }
}

/// Evidence that a mask satisfies the ε bound on a specific evaluation set.
///
/// # Examples
///
/// See `TailEvaluator::certify` and the `certificates_are_auditable`
/// integration test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PruningCertificate {
    /// The tolerance the mask was accepted under.
    pub epsilon: f32,
    /// The accuracy metric used by the bound.
    pub metric: DegradationMetric,
    /// Number of evaluation samples backing the measurement.
    pub eval_samples: usize,
    /// Per-class evidence over the certified classes.
    pub classes: Vec<ClassEvidence>,
}

impl PruningCertificate {
    /// Whether every certified class is within ε.
    pub fn holds(&self) -> bool {
        self.classes
            .iter()
            .all(|e| e.degradation() <= self.epsilon + 1e-6)
    }

    /// The worst per-class degradation (0 if every class improved).
    pub fn max_degradation(&self) -> f32 {
        self.classes
            .iter()
            .map(ClassEvidence::degradation)
            .fold(0.0f32, f32::max)
    }

    /// Classes whose accuracy *improved* under pruning (the miseffectual
    /// effect the paper highlights).
    pub fn improved_classes(&self) -> Vec<usize> {
        self.classes
            .iter()
            .filter(|e| e.pruned > e.baseline)
            .map(|e| e.class)
            .collect()
    }
}

impl TailEvaluator {
    /// Produces the ε certificate of `mask` over `classes` at tolerance
    /// `epsilon` under `metric`.
    ///
    /// # Errors
    ///
    /// Returns an error if the mask does not fit the evaluator's network or
    /// a class id is out of range.
    pub fn certify(
        &self,
        mask: &PruneMask,
        classes: &[usize],
        epsilon: f32,
        metric: DegradationMetric,
    ) -> Result<PruningCertificate, CapnnError> {
        if classes.is_empty() {
            return Err(CapnnError::Profile(
                "cannot certify an empty class set".into(),
            ));
        }
        let k = match metric {
            DegradationMetric::Top1 => 1,
            DegradationMetric::TopK(k) => k.max(1),
        };
        let unmasked = PruneMask::all_kept(self.network());
        let mut evidence = Vec::with_capacity(classes.len());
        for &class in classes {
            let baseline = self.topk_accuracy(&unmasked, k, Some(&[class]))?;
            let pruned = self.topk_accuracy(mask, k, Some(&[class]))?;
            evidence.push(ClassEvidence {
                class,
                baseline,
                pruned,
            });
        }
        Ok(PruningCertificate {
            epsilon,
            metric,
            eval_samples: self.sample_count(),
            classes: evidence,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capnn_w::CapnnW;
    use crate::config::PruningConfig;
    use crate::user::UserProfile;
    use capnn_data::{VectorClusters, VectorClustersConfig};
    use capnn_nn::{NetworkBuilder, Trainer, TrainerConfig};
    use capnn_profile::FiringRateProfiler;

    fn rig() -> (capnn_nn::Network, capnn_profile::FiringRates, TailEvaluator) {
        let gen = VectorClusters::new(VectorClustersConfig::easy(4, 6)).unwrap();
        let mut net = NetworkBuilder::mlp(&[6, 16, 12, 4], 2).build().unwrap();
        let cfg = TrainerConfig {
            epochs: 10,
            ..TrainerConfig::default()
        };
        Trainer::new(cfg, 1)
            .fit(&mut net, gen.generate(25, 1).samples())
            .unwrap();
        let rates = FiringRateProfiler::new(3)
            .profile(&net, &gen.generate(15, 2))
            .unwrap();
        let eval = TailEvaluator::new(&net, &gen.generate(12, 3), 3).unwrap();
        (net, rates, eval)
    }

    #[test]
    fn accepted_masks_certify() {
        let (net, rates, eval) = rig();
        let config = PruningConfig::fast();
        let profile = UserProfile::new(vec![0, 2], vec![0.7, 0.3]).unwrap();
        let mask = CapnnW::new(config)
            .unwrap()
            .prune(&net, &rates, &eval, &profile)
            .unwrap();
        let cert = eval
            .certify(&mask, profile.classes(), config.epsilon, config.metric)
            .unwrap();
        assert!(cert.holds(), "max degradation {}", cert.max_degradation());
        assert_eq!(cert.classes.len(), 2);
        assert_eq!(cert.eval_samples, eval.sample_count());
    }

    #[test]
    fn gutted_mask_fails_certification() {
        let (net, _, eval) = rig();
        let mut mask = PruneMask::all_kept(&net);
        let prunable = net.prunable_layers();
        for &li in &prunable[..prunable.len() - 1] {
            let units = net.layers()[li].unit_count().unwrap();
            mask.set_layer(li, vec![false; units]).unwrap();
        }
        let cert = eval
            .certify(&mask, &[0, 1, 2, 3], 0.03, DegradationMetric::Top1)
            .unwrap();
        assert!(!cert.holds());
        assert!(cert.max_degradation() > 0.1);
    }

    #[test]
    fn identity_mask_certifies_with_zero_degradation() {
        let (net, _, eval) = rig();
        let mask = PruneMask::all_kept(&net);
        let cert = eval
            .certify(&mask, &[0, 1], 0.0, DegradationMetric::Top1)
            .unwrap();
        assert!(cert.holds());
        assert_eq!(cert.max_degradation(), 0.0);
        assert!(cert.improved_classes().is_empty());
    }

    #[test]
    fn empty_class_set_rejected() {
        let (net, _, eval) = rig();
        let mask = PruneMask::all_kept(&net);
        assert!(eval
            .certify(&mask, &[], 0.03, DegradationMetric::Top1)
            .is_err());
    }

    #[test]
    fn certificate_serializes() {
        let cert = PruningCertificate {
            epsilon: 0.03,
            metric: DegradationMetric::Top1,
            eval_samples: 48,
            classes: vec![ClassEvidence {
                class: 3,
                baseline: 0.9,
                pruned: 0.95,
            }],
        };
        let json = serde_json::to_string(&cert).unwrap();
        let back: PruningCertificate = serde_json::from_str(&json).unwrap();
        assert_eq!(cert, back);
        assert_eq!(back.improved_classes(), vec![3]);
    }
}
