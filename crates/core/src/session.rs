//! Drift-aware personalization sessions.
//!
//! The paper notes that "the network can be pruned again if the user's
//! preferences change" (§II). This module makes that loop concrete: a
//! [`PersonalizationSession`] wraps a device's usage monitor and decides
//! *when* re-personalization is worth a round-trip to the cloud, by
//! comparing the observed class-usage distribution against the profile the
//! current model was pruned for.
//!
//! The divergence measure is the Jensen–Shannon divergence (symmetric,
//! bounded by 1 bit), computed over the union of the two profiles' class
//! supports — so both "the user's mix shifted" and "the user started seeing
//! a class the model was never pruned for" register.

use crate::error::CapnnError;
use crate::user::UserProfile;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Policy knobs for re-personalization.
///
/// Constructed through the validating [`DriftPolicy::builder`] (or the
/// [`DriftPolicy::conservative`] preset), so an invalid policy is
/// unrepresentable: the threshold is always within the JS divergence's
/// `[0, 1]`-bit range and `profile_k` is always positive.
///
/// # Examples
///
/// ```
/// use capnn_core::DriftPolicy;
///
/// let policy = DriftPolicy::builder()
///     .divergence_threshold(0.2)
///     .min_observations(30)
///     .profile_k(2)
///     .build()?;
/// assert_eq!(policy.min_observations(), 30);
/// assert!(DriftPolicy::builder().divergence_threshold(1.5).build().is_err());
/// # Ok::<(), capnn_core::CapnnError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftPolicy {
    divergence_threshold: f64,
    min_observations: u64,
    profile_k: usize,
}

impl DriftPolicy {
    /// Starts a builder pre-filled with the [`DriftPolicy::conservative`]
    /// values; `build` validates the final combination.
    pub fn builder() -> DriftPolicyBuilder {
        DriftPolicyBuilder {
            policy: Self::conservative(),
        }
    }

    /// A conservative default: act on ≥ 0.15 bit of divergence after 50
    /// observations, keeping a 3-class profile.
    pub fn conservative() -> Self {
        Self {
            divergence_threshold: 0.15,
            min_observations: 50,
            profile_k: 3,
        }
    }

    /// Jensen–Shannon divergence (bits) above which re-personalization is
    /// recommended.
    pub fn divergence_threshold(&self) -> f64 {
        self.divergence_threshold
    }

    /// Minimum number of observed inferences before any decision is made
    /// (avoids reacting to noise right after deployment).
    pub fn min_observations(&self) -> u64 {
        self.min_observations
    }

    /// Number of classes the new profile should cover.
    pub fn profile_k(&self) -> usize {
        self.profile_k
    }

    /// Checks the invariants the builder enforces. Still needed internally:
    /// a policy can arrive through deserialization, which bypasses the
    /// builder.
    pub(crate) fn validate(&self) -> Result<(), CapnnError> {
        if !(0.0..=1.0).contains(&self.divergence_threshold) {
            return Err(CapnnError::Config(format!(
                "divergence threshold must be in [0, 1] bits, got {}",
                self.divergence_threshold
            )));
        }
        if self.profile_k == 0 {
            return Err(CapnnError::Config("profile_k must be positive".into()));
        }
        Ok(())
    }
}

impl Default for DriftPolicy {
    fn default() -> Self {
        Self::conservative()
    }
}

/// Validating builder for [`DriftPolicy`]; see [`DriftPolicy::builder`].
#[derive(Debug, Clone)]
pub struct DriftPolicyBuilder {
    policy: DriftPolicy,
}

impl DriftPolicyBuilder {
    /// Sets the JS-divergence threshold in bits (`build` checks `[0, 1]`).
    pub fn divergence_threshold(mut self, bits: f64) -> Self {
        self.policy.divergence_threshold = bits;
        self
    }

    /// Sets the minimum observations before any decision.
    pub fn min_observations(mut self, n: u64) -> Self {
        self.policy.min_observations = n;
        self
    }

    /// Sets the class count of the replacement profile (`build` checks
    /// that it is positive).
    pub fn profile_k(mut self, k: usize) -> Self {
        self.policy.profile_k = k;
        self
    }

    /// Validates and returns the policy.
    ///
    /// # Errors
    ///
    /// Returns [`CapnnError::Config`] describing the first violation.
    pub fn build(self) -> Result<DriftPolicy, CapnnError> {
        self.policy.validate()?;
        Ok(self.policy)
    }
}

/// The decision produced by a drift check.
#[derive(Debug, Clone, PartialEq)]
pub enum DriftDecision {
    /// Not enough observations yet.
    InsufficientData {
        /// Observations so far.
        observed: u64,
        /// Observations required.
        required: u64,
    },
    /// Usage matches the deployed profile closely enough.
    KeepModel {
        /// Measured divergence in bits.
        divergence: f64,
    },
    /// Usage drifted: request this new profile from the cloud.
    Repersonalize {
        /// Measured divergence in bits.
        divergence: f64,
        /// The profile to request.
        profile: UserProfile,
    },
}

/// Tracks one device's deployed profile and observed usage, and decides when
/// to re-personalize.
///
/// # Examples
///
/// ```
/// use capnn_core::{DriftPolicy, PersonalizationSession, UserProfile};
///
/// let deployed = UserProfile::new(vec![0, 1], vec![0.9, 0.1])?;
/// let mut session = PersonalizationSession::new(deployed, DriftPolicy::conservative())?;
/// for _ in 0..60 { session.record(5); } // the user moved to class 5 entirely
/// assert!(matches!(
///     session.check_drift(),
///     capnn_core::DriftDecision::Repersonalize { .. }
/// ));
/// # Ok::<(), capnn_core::CapnnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PersonalizationSession {
    deployed: UserProfile,
    policy: DriftPolicy,
    counts: BTreeMap<usize, u64>,
}

impl PersonalizationSession {
    /// Starts a session for a device running a model pruned for `deployed`.
    ///
    /// # Errors
    ///
    /// Returns [`CapnnError::Config`] if the policy is invalid.
    pub fn new(deployed: UserProfile, policy: DriftPolicy) -> Result<Self, CapnnError> {
        policy.validate()?;
        Ok(Self {
            deployed,
            policy,
            counts: BTreeMap::new(),
        })
    }

    /// The profile the current model was pruned for.
    pub fn deployed_profile(&self) -> &UserProfile {
        &self.deployed
    }

    /// Total recorded observations.
    pub fn observations(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Records one observed (predicted) class.
    pub fn record(&mut self, class: usize) {
        *self.counts.entry(class).or_insert(0) += 1;
    }

    /// Records a whole batch of observed classes — the natural companion of
    /// [`LocalDevice::infer_batch`](crate::LocalDevice::infer_batch).
    pub fn record_batch(&mut self, classes: &[usize]) {
        for &class in classes {
            self.record(class);
        }
    }

    /// The observed usage distribution so far, over observed classes.
    pub fn observed_distribution(&self) -> Vec<(usize, f64)> {
        let total = self.observations().max(1) as f64;
        self.counts
            .iter()
            .map(|(&c, &n)| (c, n as f64 / total))
            .collect()
    }

    /// Checks drift between deployed profile and observed usage.
    pub fn check_drift(&self) -> DriftDecision {
        let observed = self.observations();
        if observed < self.policy.min_observations {
            capnn_telemetry::count("drift.insufficient_data", 1);
            return DriftDecision::InsufficientData {
                observed,
                required: self.policy.min_observations,
            };
        }
        let divergence = self.divergence_bits();
        if divergence < self.policy.divergence_threshold {
            capnn_telemetry::count("drift.keep_model", 1);
            return DriftDecision::KeepModel { divergence };
        }
        // Build the replacement profile: top-k observed classes, weighted by
        // observed frequency. Fewer distinct classes observed than profile_k
        // is fine; an empty observation set cannot reach here
        // (min_observations > 0 implies at least one count).
        match top_k_profile(
            self.counts.iter().map(|(&c, &n)| (c, n as f64)),
            self.policy.profile_k,
        ) {
            Some(profile) => {
                capnn_telemetry::count("drift.repersonalize", 1);
                DriftDecision::Repersonalize {
                    divergence,
                    profile,
                }
            }
            None => {
                capnn_telemetry::count("drift.keep_model", 1);
                DriftDecision::KeepModel { divergence }
            }
        }
    }

    /// Adopts a newly deployed profile and clears the monitor.
    pub fn adopt(&mut self, profile: UserProfile) {
        self.deployed = profile;
        self.counts.clear();
    }

    /// Jensen–Shannon divergence (bits) between the deployed weights and the
    /// observed frequencies, over the union of their supports.
    pub fn divergence_bits(&self) -> f64 {
        let observed: BTreeMap<usize, f64> =
            self.counts.iter().map(|(&c, &n)| (c, n as f64)).collect();
        js_bits(&self.deployed, &observed, self.observations() as f64)
    }
}

/// Jensen–Shannon divergence (bits) between a deployed profile's weights and
/// an observed mass map (`mass / total` per class), over the union of their
/// supports. Shared by the batch session and the streaming monitor.
fn js_bits(deployed: &UserProfile, observed: &BTreeMap<usize, f64>, total: f64) -> f64 {
    let total = total.max(f64::MIN_POSITIVE);
    let mut support: Vec<usize> = observed.keys().copied().collect();
    for &c in deployed.classes() {
        if !support.contains(&c) {
            support.push(c);
        }
    }
    let p = |c: usize| -> f64 { deployed.weight_of(c).map_or(0.0, |w| w as f64) };
    let q = |c: usize| -> f64 { observed.get(&c).map_or(0.0, |&m| m / total) };
    let mut js = 0.0;
    for &c in &support {
        let (pi, qi) = (p(c), q(c));
        let mi = 0.5 * (pi + qi);
        if pi > 0.0 && mi > 0.0 {
            js += 0.5 * pi * (pi / mi).log2();
        }
        if qi > 0.0 && mi > 0.0 {
            js += 0.5 * qi * (qi / mi).log2();
        }
    }
    js.max(0.0)
}

/// Builds a profile from the `k` heaviest observed classes, weighted by their
/// (possibly decayed) mass. Ties break toward the lower class index so the
/// result is deterministic. Returns `None` when no class carries mass.
fn top_k_profile(counts: impl Iterator<Item = (usize, f64)>, k: usize) -> Option<UserProfile> {
    let mut by_mass: Vec<(usize, f64)> = counts.filter(|&(_, m)| m > 1e-9).collect();
    by_mass.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    by_mass.truncate(k);
    let subtotal: f64 = by_mass.iter().map(|&(_, m)| m).sum();
    if subtotal <= 0.0 {
        return None;
    }
    let classes: Vec<usize> = by_mass.iter().map(|&(c, _)| c).collect();
    let weights: Vec<f32> = by_mass
        .iter()
        .map(|&(_, m)| (m / subtotal) as f32)
        .collect();
    UserProfile::new(classes, weights).ok()
}

/// Streaming drift detector for the serving front-end.
///
/// Unlike [`PersonalizationSession`] — which accumulates raw counts and is
/// checked explicitly by the caller — this monitor folds every observation
/// into an exponentially-decayed usage profile and raises
/// [`DriftDecision::Repersonalize`] *from live traffic*: no offline
/// re-profiling pass, no unbounded memory (stale classes decay out of the
/// support). The decay half-life bounds how long outdated usage can mask a
/// genuine shift, and the check interval amortizes the divergence
/// computation across requests.
///
/// After acting on a `Repersonalize` decision the caller invokes
/// [`adopt`](Self::adopt) with a cooldown, suppressing further decisions
/// until the new plan has seen enough traffic to be judged fairly.
///
/// # Examples
///
/// ```
/// use capnn_core::{DriftPolicy, StreamingDriftMonitor, UserProfile};
///
/// let deployed = UserProfile::new(vec![0, 1], vec![0.9, 0.1])?;
/// let policy = DriftPolicy::builder().min_observations(32).build()?;
/// let mut monitor = StreamingDriftMonitor::new(deployed, policy, 64.0, 8)?;
/// let mut drifted = None;
/// for _ in 0..64 {
///     if let Some(capnn_core::DriftDecision::Repersonalize { profile, .. }) =
///         monitor.observe(5)
///     {
///         drifted = Some(profile);
///         break;
///     }
/// }
/// assert_eq!(drifted.expect("drift detected").classes(), &[5]);
/// # Ok::<(), capnn_core::CapnnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StreamingDriftMonitor {
    deployed: UserProfile,
    policy: DriftPolicy,
    /// Per-observation decay factor, `0.5^(1 / half_life)`.
    decay: f64,
    check_interval: u64,
    counts: BTreeMap<usize, f64>,
    mass: f64,
    observed: u64,
    since_check: u64,
    cooldown_left: u64,
}

impl StreamingDriftMonitor {
    /// Starts a monitor for a plan pruned for `deployed`.
    ///
    /// `half_life` is the number of observations over which past usage loses
    /// half its weight; `check_interval` is how many observations pass
    /// between divergence checks.
    ///
    /// # Errors
    ///
    /// Returns [`CapnnError::Config`] if the policy is invalid, `half_life`
    /// is not finite and ≥ 1, or `check_interval` is zero.
    pub fn new(
        deployed: UserProfile,
        policy: DriftPolicy,
        half_life: f64,
        check_interval: u64,
    ) -> Result<Self, CapnnError> {
        policy.validate()?;
        if !half_life.is_finite() || half_life < 1.0 {
            return Err(CapnnError::Config(format!(
                "drift half-life must be finite and >= 1 observation, got {half_life}"
            )));
        }
        if check_interval == 0 {
            return Err(CapnnError::Config(
                "drift check interval must be positive".into(),
            ));
        }
        Ok(Self {
            deployed,
            policy,
            decay: 0.5_f64.powf(1.0 / half_life),
            check_interval,
            counts: BTreeMap::new(),
            mass: 0.0,
            observed: 0,
            since_check: 0,
            cooldown_left: 0,
        })
    }

    /// The profile the currently bound plan was pruned for.
    pub fn deployed_profile(&self) -> &UserProfile {
        &self.deployed
    }

    /// Observations folded in since the last [`adopt`](Self::adopt) (or
    /// since creation).
    pub fn observations(&self) -> u64 {
        self.observed
    }

    /// Folds one observed (predicted or labeled) class into the decayed
    /// usage profile and returns a decision when a check is due.
    ///
    /// Returns `None` between checks, during cooldown, and before
    /// `min_observations` is reached — never
    /// [`DriftDecision::InsufficientData`]: a streaming caller cannot act on
    /// it, so silence carries the same information.
    pub fn observe(&mut self, class: usize) -> Option<DriftDecision> {
        // Decay the whole support, pruning classes whose mass has become
        // negligible so the map stays bounded by the *recent* working set.
        self.counts.retain(|_, m| {
            *m *= self.decay;
            *m > 1e-9
        });
        self.mass = self.mass * self.decay + 1.0;
        *self.counts.entry(class).or_insert(0.0) += 1.0;
        self.observed += 1;
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            return None;
        }
        self.since_check += 1;
        if self.observed < self.policy.min_observations || self.since_check < self.check_interval {
            return None;
        }
        self.since_check = 0;
        let divergence = self.divergence_bits();
        if divergence < self.policy.divergence_threshold {
            capnn_telemetry::count("drift.keep_model", 1);
            return Some(DriftDecision::KeepModel { divergence });
        }
        match top_k_profile(
            self.counts.iter().map(|(&c, &m)| (c, m)),
            self.policy.profile_k,
        ) {
            Some(profile) => {
                capnn_telemetry::count("drift.repersonalize", 1);
                Some(DriftDecision::Repersonalize {
                    divergence,
                    profile,
                })
            }
            None => {
                capnn_telemetry::count("drift.keep_model", 1);
                Some(DriftDecision::KeepModel { divergence })
            }
        }
    }

    /// Adopts a newly deployed profile, clears the usage history, and
    /// suppresses decisions for the next `cooldown` observations so the
    /// fresh plan is judged on its own traffic.
    pub fn adopt(&mut self, profile: UserProfile, cooldown: u64) {
        self.deployed = profile;
        self.counts.clear();
        self.mass = 0.0;
        self.observed = 0;
        self.since_check = 0;
        self.cooldown_left = cooldown;
    }

    /// Defers the next check by `observations` without touching the usage
    /// history — the back-off path when acting on a decision failed.
    pub fn defer(&mut self, observations: u64) {
        self.cooldown_left = self.cooldown_left.max(observations);
        self.since_check = 0;
    }

    /// Jensen–Shannon divergence (bits) between the deployed weights and
    /// the decayed observed frequencies.
    pub fn divergence_bits(&self) -> f64 {
        js_bits(&self.deployed, &self.counts, self.mass)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_policy() -> DriftPolicy {
        DriftPolicy::builder()
            .divergence_threshold(0.1)
            .min_observations(20)
            .profile_k(2)
            .build()
            .unwrap()
    }

    fn session(classes: Vec<usize>, weights: Vec<f32>) -> PersonalizationSession {
        PersonalizationSession::new(UserProfile::new(classes, weights).unwrap(), test_policy())
            .unwrap()
    }

    #[test]
    fn policy_builder_validates() {
        let p = DriftPolicy::builder()
            .divergence_threshold(0.3)
            .min_observations(10)
            .profile_k(4)
            .build()
            .unwrap();
        assert_eq!(p.divergence_threshold(), 0.3);
        assert_eq!(p.min_observations(), 10);
        assert_eq!(p.profile_k(), 4);
        assert!(matches!(
            DriftPolicy::builder().divergence_threshold(1.5).build(),
            Err(CapnnError::Config(_))
        ));
        assert!(matches!(
            DriftPolicy::builder().divergence_threshold(-0.1).build(),
            Err(CapnnError::Config(_))
        ));
        assert!(matches!(
            DriftPolicy::builder().profile_k(0).build(),
            Err(CapnnError::Config(_))
        ));
        // defaults are the conservative preset, which must itself be valid
        assert_eq!(
            DriftPolicy::builder().build().unwrap(),
            DriftPolicy::conservative()
        );
    }

    #[test]
    fn insufficient_data_before_min_observations() {
        let mut s = session(vec![0, 1], vec![0.5, 0.5]);
        for _ in 0..10 {
            s.record(0);
        }
        assert!(matches!(
            s.check_drift(),
            DriftDecision::InsufficientData {
                observed: 10,
                required: 20
            }
        ));
    }

    #[test]
    fn matching_usage_keeps_model() {
        let mut s = session(vec![0, 1], vec![0.75, 0.25]);
        for i in 0..40 {
            s.record(if i % 4 == 0 { 1 } else { 0 });
        }
        match s.check_drift() {
            DriftDecision::KeepModel { divergence } => assert!(divergence < 0.05),
            other => panic!("expected KeepModel, got {other:?}"),
        }
    }

    #[test]
    fn total_shift_triggers_repersonalization() {
        let mut s = session(vec![0, 1], vec![0.9, 0.1]);
        for _ in 0..40 {
            s.record(7);
        }
        match s.check_drift() {
            DriftDecision::Repersonalize {
                divergence,
                profile,
            } => {
                assert!(divergence > 0.5, "divergence {divergence}");
                assert_eq!(profile.classes(), &[7]);
            }
            other => panic!("expected Repersonalize, got {other:?}"),
        }
    }

    #[test]
    fn partial_shift_builds_weighted_profile() {
        let mut s = session(vec![0, 1], vec![0.9, 0.1]);
        // user now sees class 3 75% and class 0 25%
        for i in 0..80 {
            s.record(if i % 4 == 0 { 0 } else { 3 });
        }
        match s.check_drift() {
            DriftDecision::Repersonalize { profile, .. } => {
                assert_eq!(profile.classes(), &[3, 0]);
                assert!((profile.weights()[0] - 0.75).abs() < 0.05);
            }
            other => panic!("expected Repersonalize, got {other:?}"),
        }
    }

    #[test]
    fn adopt_resets_monitor() {
        let mut s = session(vec![0, 1], vec![0.5, 0.5]);
        for _ in 0..30 {
            s.record(5);
        }
        let new_profile = UserProfile::new(vec![5], vec![1.0]).unwrap();
        s.adopt(new_profile.clone());
        assert_eq!(s.observations(), 0);
        assert_eq!(s.deployed_profile(), &new_profile);
    }

    #[test]
    fn divergence_is_zero_for_identical_distributions() {
        let mut s = session(vec![0, 1], vec![0.5, 0.5]);
        for i in 0..100 {
            s.record(i % 2);
        }
        assert!(s.divergence_bits() < 1e-3);
    }

    #[test]
    fn divergence_bounded_by_one_bit() {
        let mut s = session(vec![0], vec![1.0]);
        for _ in 0..50 {
            s.record(9);
        }
        let d = s.divergence_bits();
        assert!(d <= 1.0 + 1e-9, "JS divergence {d} exceeds 1 bit");
        assert!(d > 0.99, "disjoint supports should max out, got {d}");
    }

    #[test]
    fn record_batch_equals_repeated_record() {
        let mut a = session(vec![0, 1], vec![0.5, 0.5]);
        let mut b = session(vec![0, 1], vec![0.5, 0.5]);
        let classes = [3usize, 0, 3, 1, 3, 0];
        a.record_batch(&classes);
        for &c in &classes {
            b.record(c);
        }
        assert_eq!(a.observations(), b.observations());
        assert_eq!(a.observed_distribution(), b.observed_distribution());
        assert_eq!(a.divergence_bits(), b.divergence_bits());
    }

    #[test]
    fn observed_distribution_normalizes() {
        let mut s = session(vec![0, 1], vec![0.5, 0.5]);
        for i in 0..10 {
            s.record(i % 5);
        }
        let dist = s.observed_distribution();
        let sum: f64 = dist.iter().map(|&(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    fn monitor(classes: Vec<usize>, weights: Vec<f32>) -> StreamingDriftMonitor {
        StreamingDriftMonitor::new(
            UserProfile::new(classes, weights).unwrap(),
            test_policy(),
            64.0,
            8,
        )
        .unwrap()
    }

    #[test]
    fn monitor_rejects_invalid_configuration() {
        let profile = UserProfile::new(vec![0], vec![1.0]).unwrap();
        assert!(matches!(
            StreamingDriftMonitor::new(profile.clone(), test_policy(), 0.5, 8),
            Err(CapnnError::Config(_))
        ));
        assert!(matches!(
            StreamingDriftMonitor::new(profile.clone(), test_policy(), f64::NAN, 8),
            Err(CapnnError::Config(_))
        ));
        assert!(matches!(
            StreamingDriftMonitor::new(profile, test_policy(), 64.0, 0),
            Err(CapnnError::Config(_))
        ));
    }

    #[test]
    fn monitor_is_silent_before_min_observations() {
        let mut m = monitor(vec![0, 1], vec![0.5, 0.5]);
        for _ in 0..19 {
            assert_eq!(m.observe(7), None);
        }
        assert_eq!(m.observations(), 19);
    }

    #[test]
    fn monitor_detects_total_shift() {
        let mut m = monitor(vec![0, 1], vec![0.9, 0.1]);
        let mut decision = None;
        for _ in 0..40 {
            if let Some(d) = m.observe(7) {
                decision = Some(d);
                break;
            }
        }
        match decision.expect("a check should have fired") {
            DriftDecision::Repersonalize {
                divergence,
                profile,
            } => {
                assert!(divergence > 0.5, "divergence {divergence}");
                assert_eq!(profile.classes(), &[7]);
            }
            other => panic!("expected Repersonalize, got {other:?}"),
        }
    }

    #[test]
    fn monitor_keeps_model_on_matching_usage() {
        let mut m = monitor(vec![0, 1], vec![0.75, 0.25]);
        let mut checks = 0;
        for i in 0..64 {
            if let Some(d) = m.observe(if i % 4 == 0 { 1 } else { 0 }) {
                checks += 1;
                match d {
                    DriftDecision::KeepModel { divergence } => {
                        assert!(divergence < 0.05, "divergence {divergence}")
                    }
                    other => panic!("expected KeepModel, got {other:?}"),
                }
            }
        }
        assert!(checks > 0, "at least one check should have fired");
    }

    #[test]
    fn monitor_decay_forgets_old_usage() {
        // Short half-life: the early class-0 burst should decay out and the
        // recent class-3 traffic should dominate the replacement profile.
        let mut m = StreamingDriftMonitor::new(
            UserProfile::new(vec![0], vec![1.0]).unwrap(),
            test_policy(),
            8.0,
            4,
        )
        .unwrap();
        for _ in 0..40 {
            m.observe(0);
        }
        let mut last = None;
        for _ in 0..64 {
            if let Some(d) = m.observe(3) {
                last = Some(d);
            }
        }
        match last.expect("checks should have fired") {
            DriftDecision::Repersonalize { profile, .. } => {
                assert_eq!(profile.classes()[0], 3);
                assert!(profile.weights()[0] > 0.9, "old usage should have decayed");
            }
            other => panic!("expected Repersonalize, got {other:?}"),
        }
    }

    #[test]
    fn monitor_adopt_applies_cooldown() {
        let mut m = monitor(vec![0, 1], vec![0.9, 0.1]);
        let mut fired = false;
        for _ in 0..40 {
            if m.observe(7).is_some() {
                fired = true;
                break;
            }
        }
        assert!(fired);
        m.adopt(UserProfile::new(vec![7], vec![1.0]).unwrap(), 100);
        assert_eq!(m.observations(), 0);
        assert_eq!(m.deployed_profile().classes(), &[7]);
        // During cooldown nothing fires, even under totally shifted traffic.
        for _ in 0..100 {
            assert_eq!(m.observe(2), None);
        }
        // After cooldown, checks resume and catch the new shift.
        let mut post = None;
        for _ in 0..40 {
            if let Some(d) = m.observe(2) {
                post = Some(d);
                break;
            }
        }
        assert!(matches!(
            post.expect("check after cooldown"),
            DriftDecision::Repersonalize { .. }
        ));
    }

    #[test]
    fn monitor_defer_backs_off_without_clearing_history() {
        let mut m = monitor(vec![0, 1], vec![0.9, 0.1]);
        for _ in 0..40 {
            if m.observe(7).is_some() {
                break;
            }
        }
        let before = m.observations();
        m.defer(50);
        for _ in 0..50 {
            assert_eq!(m.observe(7), None);
        }
        assert_eq!(m.observations(), before + 50);
        let mut post = None;
        for _ in 0..16 {
            if let Some(d) = m.observe(7) {
                post = Some(d);
                break;
            }
        }
        assert!(matches!(
            post.expect("check after defer"),
            DriftDecision::Repersonalize { .. }
        ));
    }
}
