//! Drift-aware personalization sessions.
//!
//! The paper notes that "the network can be pruned again if the user's
//! preferences change" (§II). This module makes that loop concrete: a
//! [`PersonalizationSession`] wraps a device's usage monitor and decides
//! *when* re-personalization is worth a round-trip to the cloud, by
//! comparing the observed class-usage distribution against the profile the
//! current model was pruned for.
//!
//! The divergence measure is the Jensen–Shannon divergence (symmetric,
//! bounded by 1 bit), computed over the union of the two profiles' class
//! supports — so both "the user's mix shifted" and "the user started seeing
//! a class the model was never pruned for" register.

use crate::error::CapnnError;
use crate::user::UserProfile;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Policy knobs for re-personalization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftPolicy {
    /// Jensen–Shannon divergence (bits) above which re-personalization is
    /// recommended.
    pub divergence_threshold: f64,
    /// Minimum number of observed inferences before any decision is made
    /// (avoids reacting to noise right after deployment).
    pub min_observations: u64,
    /// Number of classes the new profile should cover.
    pub profile_k: usize,
}

impl DriftPolicy {
    /// A conservative default: act on ≥ 0.15 bit of divergence after 50
    /// observations, keeping a 3-class profile.
    pub fn conservative() -> Self {
        Self {
            divergence_threshold: 0.15,
            min_observations: 50,
            profile_k: 3,
        }
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`CapnnError::Config`] describing the first violation.
    pub fn validate(&self) -> Result<(), CapnnError> {
        if !(0.0..=1.0).contains(&self.divergence_threshold) {
            return Err(CapnnError::Config(format!(
                "divergence threshold must be in [0, 1] bits, got {}",
                self.divergence_threshold
            )));
        }
        if self.profile_k == 0 {
            return Err(CapnnError::Config("profile_k must be positive".into()));
        }
        Ok(())
    }
}

impl Default for DriftPolicy {
    fn default() -> Self {
        Self::conservative()
    }
}

/// The decision produced by a drift check.
#[derive(Debug, Clone, PartialEq)]
pub enum DriftDecision {
    /// Not enough observations yet.
    InsufficientData {
        /// Observations so far.
        observed: u64,
        /// Observations required.
        required: u64,
    },
    /// Usage matches the deployed profile closely enough.
    KeepModel {
        /// Measured divergence in bits.
        divergence: f64,
    },
    /// Usage drifted: request this new profile from the cloud.
    Repersonalize {
        /// Measured divergence in bits.
        divergence: f64,
        /// The profile to request.
        profile: UserProfile,
    },
}

/// Tracks one device's deployed profile and observed usage, and decides when
/// to re-personalize.
///
/// # Examples
///
/// ```
/// use capnn_core::{DriftPolicy, PersonalizationSession, UserProfile};
///
/// let deployed = UserProfile::new(vec![0, 1], vec![0.9, 0.1])?;
/// let mut session = PersonalizationSession::new(deployed, DriftPolicy::conservative())?;
/// for _ in 0..60 { session.record(5); } // the user moved to class 5 entirely
/// assert!(matches!(
///     session.check_drift(),
///     capnn_core::DriftDecision::Repersonalize { .. }
/// ));
/// # Ok::<(), capnn_core::CapnnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PersonalizationSession {
    deployed: UserProfile,
    policy: DriftPolicy,
    counts: BTreeMap<usize, u64>,
}

impl PersonalizationSession {
    /// Starts a session for a device running a model pruned for `deployed`.
    ///
    /// # Errors
    ///
    /// Returns [`CapnnError::Config`] if the policy is invalid.
    pub fn new(deployed: UserProfile, policy: DriftPolicy) -> Result<Self, CapnnError> {
        policy.validate()?;
        Ok(Self {
            deployed,
            policy,
            counts: BTreeMap::new(),
        })
    }

    /// The profile the current model was pruned for.
    pub fn deployed_profile(&self) -> &UserProfile {
        &self.deployed
    }

    /// Total recorded observations.
    pub fn observations(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Records one observed (predicted) class.
    pub fn record(&mut self, class: usize) {
        *self.counts.entry(class).or_insert(0) += 1;
    }

    /// Records a whole batch of observed classes — the natural companion of
    /// [`LocalDevice::infer_batch`](crate::LocalDevice::infer_batch).
    pub fn record_batch(&mut self, classes: &[usize]) {
        for &class in classes {
            self.record(class);
        }
    }

    /// The observed usage distribution so far, over observed classes.
    pub fn observed_distribution(&self) -> Vec<(usize, f64)> {
        let total = self.observations().max(1) as f64;
        self.counts
            .iter()
            .map(|(&c, &n)| (c, n as f64 / total))
            .collect()
    }

    /// Checks drift between deployed profile and observed usage.
    pub fn check_drift(&self) -> DriftDecision {
        let observed = self.observations();
        if observed < self.policy.min_observations {
            capnn_telemetry::count("drift.insufficient_data", 1);
            return DriftDecision::InsufficientData {
                observed,
                required: self.policy.min_observations,
            };
        }
        let divergence = self.divergence_bits();
        if divergence < self.policy.divergence_threshold {
            capnn_telemetry::count("drift.keep_model", 1);
            return DriftDecision::KeepModel { divergence };
        }
        // Build the replacement profile: top-k observed classes, weighted by
        // observed frequency.
        let mut by_count: Vec<(usize, u64)> = self.counts.iter().map(|(&c, &n)| (c, n)).collect();
        by_count.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        by_count.truncate(self.policy.profile_k);
        let subtotal: u64 = by_count.iter().map(|&(_, n)| n).sum();
        let classes: Vec<usize> = by_count.iter().map(|&(c, _)| c).collect();
        let weights: Vec<f32> = by_count
            .iter()
            .map(|&(_, n)| n as f32 / subtotal as f32)
            .collect();
        match UserProfile::new(classes, weights) {
            Ok(profile) => {
                capnn_telemetry::count("drift.repersonalize", 1);
                DriftDecision::Repersonalize {
                    divergence,
                    profile,
                }
            }
            // fewer distinct classes observed than profile_k is fine; an
            // empty observation set cannot reach here (min_observations > 0
            // implies at least one count)
            Err(_) => {
                capnn_telemetry::count("drift.keep_model", 1);
                DriftDecision::KeepModel { divergence }
            }
        }
    }

    /// Adopts a newly deployed profile and clears the monitor.
    pub fn adopt(&mut self, profile: UserProfile) {
        self.deployed = profile;
        self.counts.clear();
    }

    /// Jensen–Shannon divergence (bits) between the deployed weights and the
    /// observed frequencies, over the union of their supports.
    pub fn divergence_bits(&self) -> f64 {
        let total = self.observations().max(1) as f64;
        let mut support: Vec<usize> = self.counts.keys().copied().collect();
        for &c in self.deployed.classes() {
            if !support.contains(&c) {
                support.push(c);
            }
        }
        let p = |c: usize| -> f64 { self.deployed.weight_of(c).map_or(0.0, |w| w as f64) };
        let q = |c: usize| -> f64 { self.counts.get(&c).map_or(0.0, |&n| n as f64 / total) };
        let mut js = 0.0;
        for &c in &support {
            let (pi, qi) = (p(c), q(c));
            let mi = 0.5 * (pi + qi);
            if pi > 0.0 && mi > 0.0 {
                js += 0.5 * pi * (pi / mi).log2();
            }
            if qi > 0.0 && mi > 0.0 {
                js += 0.5 * qi * (qi / mi).log2();
            }
        }
        js.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(classes: Vec<usize>, weights: Vec<f32>) -> PersonalizationSession {
        PersonalizationSession::new(
            UserProfile::new(classes, weights).unwrap(),
            DriftPolicy {
                divergence_threshold: 0.1,
                min_observations: 20,
                profile_k: 2,
            },
        )
        .unwrap()
    }

    #[test]
    fn policy_validation() {
        assert!(DriftPolicy::conservative().validate().is_ok());
        let mut p = DriftPolicy::conservative();
        p.divergence_threshold = 1.5;
        assert!(p.validate().is_err());
        let mut p = DriftPolicy::conservative();
        p.profile_k = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn insufficient_data_before_min_observations() {
        let mut s = session(vec![0, 1], vec![0.5, 0.5]);
        for _ in 0..10 {
            s.record(0);
        }
        assert!(matches!(
            s.check_drift(),
            DriftDecision::InsufficientData {
                observed: 10,
                required: 20
            }
        ));
    }

    #[test]
    fn matching_usage_keeps_model() {
        let mut s = session(vec![0, 1], vec![0.75, 0.25]);
        for i in 0..40 {
            s.record(if i % 4 == 0 { 1 } else { 0 });
        }
        match s.check_drift() {
            DriftDecision::KeepModel { divergence } => assert!(divergence < 0.05),
            other => panic!("expected KeepModel, got {other:?}"),
        }
    }

    #[test]
    fn total_shift_triggers_repersonalization() {
        let mut s = session(vec![0, 1], vec![0.9, 0.1]);
        for _ in 0..40 {
            s.record(7);
        }
        match s.check_drift() {
            DriftDecision::Repersonalize {
                divergence,
                profile,
            } => {
                assert!(divergence > 0.5, "divergence {divergence}");
                assert_eq!(profile.classes(), &[7]);
            }
            other => panic!("expected Repersonalize, got {other:?}"),
        }
    }

    #[test]
    fn partial_shift_builds_weighted_profile() {
        let mut s = session(vec![0, 1], vec![0.9, 0.1]);
        // user now sees class 3 75% and class 0 25%
        for i in 0..80 {
            s.record(if i % 4 == 0 { 0 } else { 3 });
        }
        match s.check_drift() {
            DriftDecision::Repersonalize { profile, .. } => {
                assert_eq!(profile.classes(), &[3, 0]);
                assert!((profile.weights()[0] - 0.75).abs() < 0.05);
            }
            other => panic!("expected Repersonalize, got {other:?}"),
        }
    }

    #[test]
    fn adopt_resets_monitor() {
        let mut s = session(vec![0, 1], vec![0.5, 0.5]);
        for _ in 0..30 {
            s.record(5);
        }
        let new_profile = UserProfile::new(vec![5], vec![1.0]).unwrap();
        s.adopt(new_profile.clone());
        assert_eq!(s.observations(), 0);
        assert_eq!(s.deployed_profile(), &new_profile);
    }

    #[test]
    fn divergence_is_zero_for_identical_distributions() {
        let mut s = session(vec![0, 1], vec![0.5, 0.5]);
        for i in 0..100 {
            s.record(i % 2);
        }
        assert!(s.divergence_bits() < 1e-3);
    }

    #[test]
    fn divergence_bounded_by_one_bit() {
        let mut s = session(vec![0], vec![1.0]);
        for _ in 0..50 {
            s.record(9);
        }
        let d = s.divergence_bits();
        assert!(d <= 1.0 + 1e-9, "JS divergence {d} exceeds 1 bit");
        assert!(d > 0.99, "disjoint supports should max out, got {d}");
    }

    #[test]
    fn record_batch_equals_repeated_record() {
        let mut a = session(vec![0, 1], vec![0.5, 0.5]);
        let mut b = session(vec![0, 1], vec![0.5, 0.5]);
        let classes = [3usize, 0, 3, 1, 3, 0];
        a.record_batch(&classes);
        for &c in &classes {
            b.record(c);
        }
        assert_eq!(a.observations(), b.observations());
        assert_eq!(a.observed_distribution(), b.observed_distribution());
        assert_eq!(a.divergence_bits(), b.divergence_bits());
    }

    #[test]
    fn observed_distribution_normalizes() {
        let mut s = session(vec![0, 1], vec![0.5, 0.5]);
        for i in 0..10 {
            s.record(i % 5);
        }
        let dist = s.observed_distribution();
        let sum: f64 = dist.iter().map(|&(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}
