//! Cloud-side model cache: users with equivalent profiles share a pruned
//! model.
//!
//! The paper's cloud prunes per user, but many users are *not* unique —
//! prior mobile-usage studies (its motivation cites [11]) show heavy overlap
//! in the classes people actually use. CAP'NN-B is trivially shareable (the
//! mask depends only on the class set); CAP'NN-W/M masks also depend on the
//! usage weights, so the cache key quantizes weights to a small grid and
//! shares a model between users whose usage differs by less than one grid
//! step. The ε guarantee is unaffected: a cached mask was accepted by the
//! same accuracy check, over the same class set.

//! Two cache tiers live here. [`ModelCache`] is the original whole-model
//! front-end (profile key → [`PersonalizedModel`]). [`FleetPlanCache`] is
//! the fleet-scale tier: it canonicalizes masks before keying, shares packed
//! weight panels across plans through the cloud's
//! [`PanelPool`](capnn_nn::PanelPool), and evicts
//! least-recently-used plans to stay under an explicit byte budget
//! (`CAPNN_CACHE_BYTES`) — the shape a server farm needs when the distinct
//! profile population is 10^5–10^6 but the hot set is Zipfian.

use crate::cloud::{CloudServer, PersonalizedModel, Variant};
use crate::error::CapnnError;
use crate::user::UserProfile;
use capnn_nn::{CompiledPlan, Precision, PruneMask, Sparsity};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Cache key: variant + class set + usage weights quantized to a grid.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProfileKey {
    variant: Variant,
    classes: Vec<usize>,
    /// Weights in units of the quantization step, aligned with `classes`
    /// sorted ascending. Empty for [`Variant::Basic`] (weights unused).
    quantized_weights: Vec<u16>,
}

impl ProfileKey {
    /// Builds the key for a profile at `steps` quantization levels.
    ///
    /// Classes are sorted (two profiles listing the same classes in
    /// different orders share a key) and duplicate class ids are merged by
    /// summing their weights — [`UserProfile::new`] rejects duplicates, but
    /// a deserialized profile can carry them, and `{2: 0.3, 2: 0.2}` names
    /// the same usage as `{2: 0.5}`. Basic keys ignore weights entirely.
    pub fn new(profile: &UserProfile, variant: Variant, steps: u16) -> Self {
        let mut pairs: Vec<(usize, f32)> = profile
            .classes()
            .iter()
            .copied()
            .zip(profile.weights().iter().copied())
            .collect();
        pairs.sort_by_key(|&(c, _)| c);
        pairs.dedup_by(|dup, kept| {
            if dup.0 == kept.0 {
                kept.1 += dup.1;
                true
            } else {
                false
            }
        });
        let classes: Vec<usize> = pairs.iter().map(|&(c, _)| c).collect();
        let quantized_weights = if variant == Variant::Basic {
            Vec::new()
        } else {
            pairs
                .iter()
                .map(|&(_, w)| (w * steps as f32).round() as u16)
                .collect()
        };
        Self {
            variant,
            classes,
            quantized_weights,
        }
    }
}

/// Statistics of a [`ModelCache`] or [`FleetPlanCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that ran the pruning pipeline (for [`FleetPlanCache`]: that
    /// compiled a plan — the mask memo may still have skipped re-pruning).
    pub misses: u64,
    /// Plans evicted to stay under the byte budget. Always 0 for the
    /// unbudgeted [`ModelCache`].
    pub evictions: u64,
    /// Plans released because a hot-swap [`FleetPlanCache::rebind`] left
    /// their mask unreferenced — distinct from budget evictions. Always 0
    /// for [`ModelCache`].
    pub released: u64,
    /// Bytes of compiled plans resident in the cache; each shared weight
    /// panel is counted once for as long as any resident plan references
    /// it. Always 0 for [`ModelCache`], which does not account bytes.
    pub resident_bytes: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (0 when empty).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A personalization front-end that deduplicates equivalent requests.
///
/// # Examples
///
/// See the `model_cache_dedups_equivalent_users` integration test.
#[derive(Debug)]
pub struct ModelCache {
    entries: HashMap<ProfileKey, PersonalizedModel>,
    weight_steps: u16,
    stats: CacheStats,
}

impl ModelCache {
    /// Creates a cache quantizing usage weights to `weight_steps` levels
    /// (8–32 is reasonable; more steps → fewer shares, closer fidelity).
    ///
    /// # Errors
    ///
    /// Returns [`CapnnError::Config`] if `weight_steps` is zero.
    pub fn new(weight_steps: u16) -> Result<Self, CapnnError> {
        if weight_steps == 0 {
            return Err(CapnnError::Config("weight_steps must be positive".into()));
        }
        Ok(Self {
            entries: HashMap::new(),
            weight_steps,
            stats: CacheStats::default(),
        })
    }

    /// Number of distinct cached models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Personalizes through the cache: an equivalent earlier request's model
    /// is cloned instead of re-running the pruning pipeline. The clone is
    /// shallow where it matters — the compiled execution plan is an
    /// `Arc<CompiledPlan>`, so every user sharing a [`ProfileKey`] serves
    /// inference from the *same* packed weights.
    ///
    /// # Errors
    ///
    /// Propagates pruning errors on cache misses.
    pub fn personalize(
        &mut self,
        cloud: &mut CloudServer,
        profile: &UserProfile,
        variant: Variant,
    ) -> Result<PersonalizedModel, CapnnError> {
        let key = ProfileKey::new(profile, variant, self.weight_steps);
        if let Some(model) = self.entries.get(&key) {
            self.stats.hits += 1;
            capnn_telemetry::count("cache.hits", 1);
            return Ok(model.clone());
        }
        let model = cloud.personalize(profile, variant)?;
        self.stats.misses += 1;
        capnn_telemetry::count("cache.misses", 1);
        self.entries.insert(key, model.clone());
        Ok(model)
    }

    /// Drops all cached models (e.g. after the cloud retrains or re-profiles
    /// the base network).
    pub fn invalidate(&mut self) {
        self.entries.clear();
    }
}

/// One resident compiled plan plus its LRU bookkeeping.
#[derive(Debug)]
struct PlanEntry {
    plan: Arc<CompiledPlan>,
    /// Logical timestamp of the last request served from this entry.
    last_used: u64,
}

/// Refcount of one shared weight kernel across the cache's resident plans.
#[derive(Debug, Clone, Copy)]
struct KernelRef {
    refs: usize,
    bytes: u64,
}

/// Outcome of a [`FleetPlanCache::lookup`]: what the caller must do next to
/// serve the request. The serving front-end uses this to keep pruning and
/// compilation outside the cache lock.
#[derive(Debug)]
pub(crate) enum PlanLookup {
    /// A resident plan was found (hit counted, LRU refreshed) — serve it.
    Hit(Arc<CompiledPlan>),
    /// The profile's mask is memoized but no plan is resident at this
    /// precision × sparsity tier — compile this mask, then
    /// [`FleetPlanCache::admit_plan`].
    CompileMask(Arc<PruneMask>),
    /// The profile has never been served — prune a mask, then
    /// [`FleetPlanCache::admit_mask`].
    ProfileUnknown,
}

/// Fleet-scale plan cache: canonicalized masks, pooled weight panels, and
/// byte-budgeted LRU eviction.
///
/// Three layers of deduplication stack up, in request order:
///
/// 1. **Profile memo** — [`ProfileKey`] → canonical mask. Survives plan
///    eviction, so a re-requested profile skips the pruning pipeline even
///    when its plan has to be recompiled.
/// 2. **Mask canonicalization** — masks are interned by value, collapsing
///    the many-profiles-to-one-mask structure of CAP'NN-B (the mask is an
///    intersection of per-class matrices, so every profile with the same
///    class set lands on the same mask) and of quantized CAP'NN-W/M keys.
///    With [`FleetPlanCache::set_mask_slack`] the clustering is loosened:
///    a new mask may be substituted by an existing canonical mask that
///    keeps at most `slack` extra units, guarded so the canonical kept set
///    is always a **superset** of the user's kept set (the user's ε check
///    accepted a mask that prunes *more*, so serving one that prunes less
///    can only preserve accuracy). The default slack of 0 admits only
///    mask-equality substitution, which is bitwise output-identical.
/// 3. **Panel pool** — compilation goes through
///    [`CloudServer::compile_pooled`], so even *distinct* resident plans
///    share packed (and quantized) per-layer panels where their kept sets
///    agree.
///
/// Eviction is least-recently-used under a byte budget
/// (`CAPNN_CACHE_BYTES`, or [`FleetPlanCache::with_budget`]). The budget is
/// strict: if the just-compiled plan itself cannot fit, it is evicted too
/// and the request is served uncached. Residency is refcounted over the
/// plans the cache itself holds — each shared panel counts once while any
/// resident plan references it — so the total is exact, O(1) to read, and
/// unaffected by plan handles callers still hold after an eviction.
///
/// # Examples
///
/// See the `fleet_cache_*` tests in this module and the `perf_cache` bench.
#[derive(Debug)]
pub struct FleetPlanCache {
    /// Profile key → canonical mask. Never evicted (a mask is a few hundred
    /// bytes; plans are the heavy part).
    masks: HashMap<ProfileKey, Arc<PruneMask>>,
    /// Distinct canonical masks, interned by value.
    canon: HashSet<Arc<PruneMask>>,
    /// Resident compiled plans, keyed by canonical mask + precision +
    /// weight-sparsity tier (a dense and a hybrid N:M plan for the same
    /// mask are distinct residents sharing panels through the pool).
    plans: HashMap<(Arc<PruneMask>, Precision, Sparsity), PlanEntry>,
    weight_steps: u16,
    budget_bytes: Option<u64>,
    mask_slack: usize,
    /// Logical clock driving LRU order.
    tick: u64,
    /// Kernel identity (`Arc` pointer) → how many resident plans reference
    /// it, plus its byte footprint. Maintained on insert/evict.
    kernel_refs: HashMap<usize, KernelRef>,
    /// Exact resident bytes: every plan's fixed bytes plus each shared
    /// kernel counted once while referenced. Incremental, so reads are
    /// O(1) and stable against plan `Arc`s held outside the cache.
    resident_exact: u64,
    substitutions: u64,
    stats: CacheStats,
}

impl FleetPlanCache {
    /// Creates a cache quantizing usage weights to `weight_steps` levels,
    /// with the byte budget taken from the `CAPNN_CACHE_BYTES` environment
    /// variable (unset, unparsable or zero → unbounded).
    ///
    /// # Errors
    ///
    /// Returns [`CapnnError::Config`] if `weight_steps` is zero.
    pub fn new(weight_steps: u16) -> Result<Self, CapnnError> {
        let budget = std::env::var("CAPNN_CACHE_BYTES")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&b| b > 0);
        Self::with_budget(weight_steps, budget)
    }

    /// Creates a cache with an explicit byte budget (`None` → unbounded).
    ///
    /// # Errors
    ///
    /// Returns [`CapnnError::Config`] if `weight_steps` is zero.
    pub fn with_budget(weight_steps: u16, budget_bytes: Option<u64>) -> Result<Self, CapnnError> {
        if weight_steps == 0 {
            return Err(CapnnError::Config("weight_steps must be positive".into()));
        }
        Ok(Self {
            masks: HashMap::new(),
            canon: HashSet::new(),
            plans: HashMap::new(),
            weight_steps,
            budget_bytes,
            mask_slack: 0,
            tick: 0,
            kernel_refs: HashMap::new(),
            resident_exact: 0,
            substitutions: 0,
            stats: CacheStats::default(),
        })
    }

    /// Allows canonical-mask substitution keeping up to `slack` extra units
    /// (see the type docs for the accuracy guard). 0 restores the default
    /// exact-equality clustering.
    pub fn set_mask_slack(&mut self, slack: usize) {
        self.mask_slack = slack;
    }

    /// The configured byte budget (`None` → unbounded).
    pub fn budget_bytes(&self) -> Option<u64> {
        self.budget_bytes
    }

    /// Number of resident compiled plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether no plans are resident.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Number of distinct canonical masks ever interned.
    pub fn unique_masks(&self) -> usize {
        self.canon.len()
    }

    /// Number of profiles served a canonical plan under a nonzero mask
    /// slack instead of their own exact mask.
    pub fn canonical_substitutions(&self) -> u64 {
        self.substitutions
    }

    /// Hit/miss/eviction/residency statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Exact resident bytes: every plan's fixed bytes plus each shared
    /// kernel counted once. Maintained incrementally, so this is O(1) and
    /// never exceeds the budget after a [`FleetPlanCache::plan_for`] call.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_exact
    }

    /// The weight-quantization grid this cache keys profiles at — callers
    /// building a [`ProfileKey`] themselves must use the same value.
    pub fn weight_steps(&self) -> u16 {
        self.weight_steps
    }

    /// Serves one request: memoized mask lookup (or prune + canonicalize),
    /// then plan lookup (or pooled compile + budget enforcement).
    ///
    /// This is the single-caller convenience; the serving front-end splits
    /// the same sequence into [`lookup`](Self::lookup) /
    /// [`admit_mask`](Self::admit_mask) / [`resident`](Self::resident) /
    /// [`admit_plan`](Self::admit_plan) so pruning and compilation run
    /// outside the cache lock.
    ///
    /// # Errors
    ///
    /// Propagates pruning and compilation errors.
    pub fn plan_for(
        &mut self,
        cloud: &mut CloudServer,
        profile: &UserProfile,
        variant: Variant,
        precision: Precision,
    ) -> Result<Arc<CompiledPlan>, CapnnError> {
        self.plan_for_sparse(cloud, profile, variant, precision, Sparsity::Dense)
    }

    /// [`plan_for`](Self::plan_for) at an explicit weight-sparsity tier:
    /// a hybrid N:M plan is cached under its own
    /// (mask, precision, sparsity) key, so dense and sparse tiers for the
    /// same canonical mask coexist and evict independently.
    ///
    /// # Errors
    ///
    /// Propagates pruning and compilation errors.
    pub fn plan_for_sparse(
        &mut self,
        cloud: &mut CloudServer,
        profile: &UserProfile,
        variant: Variant,
        precision: Precision,
        sparsity: Sparsity,
    ) -> Result<Arc<CompiledPlan>, CapnnError> {
        let key = ProfileKey::new(profile, variant, self.weight_steps);
        let mask = match self.lookup(&key, precision, sparsity) {
            PlanLookup::Hit(plan) => return Ok(plan),
            PlanLookup::CompileMask(mask) => mask,
            PlanLookup::ProfileUnknown => {
                let fresh = cloud.prune_mask(profile, variant)?;
                let mask = self.admit_mask(key, fresh);
                // Canonicalization can land on a mask another profile
                // already compiled for.
                if let Some(plan) = self.resident(&mask, precision, sparsity) {
                    return Ok(plan);
                }
                mask
            }
        };
        let plan = cloud.compile_pooled_sparse(&mask, precision, sparsity)?;
        Ok(self.admit_plan(mask, precision, plan))
    }

    /// One step of the decomposed [`plan_for`](Self::plan_for): resolves a
    /// pre-built key against the mask memo and resident plans. Advances the
    /// LRU clock (once per served request).
    pub(crate) fn lookup(
        &mut self,
        key: &ProfileKey,
        precision: Precision,
        sparsity: Sparsity,
    ) -> PlanLookup {
        self.tick += 1;
        let Some(mask) = self.masks.get(key).cloned() else {
            return PlanLookup::ProfileUnknown;
        };
        match self.resident(&mask, precision, sparsity) {
            Some(plan) => PlanLookup::Hit(plan),
            None => PlanLookup::CompileMask(mask),
        }
    }

    /// Interns a freshly pruned mask and memoizes it for `key`; returns the
    /// canonical mask to compile against.
    pub(crate) fn admit_mask(&mut self, key: ProfileKey, fresh: PruneMask) -> Arc<PruneMask> {
        let canonical = self.intern_mask(fresh);
        self.masks.insert(key, Arc::clone(&canonical));
        canonical
    }

    /// Returns the resident plan for a canonical mask, counting a hit and
    /// refreshing its LRU stamp, or `None` if it must be compiled.
    pub(crate) fn resident(
        &mut self,
        mask: &Arc<PruneMask>,
        precision: Precision,
        sparsity: Sparsity,
    ) -> Option<Arc<CompiledPlan>> {
        let entry = self
            .plans
            .get_mut(&(Arc::clone(mask), precision, sparsity))?;
        entry.last_used = self.tick;
        let plan = Arc::clone(&entry.plan);
        self.stats.hits += 1;
        capnn_telemetry::count("cache.hits", 1);
        self.publish_gauges();
        Some(plan)
    }

    /// Admits a just-compiled plan, enforcing the byte budget. The plan's
    /// weight-sparsity tier is read off the plan itself, so the key is
    /// always (mask, precision, [`CompiledPlan::sparsity`]). Counts the
    /// compile as a miss. If a concurrent caller admitted the same
    /// tier first, the earlier resident plan wins (and counts
    /// a hit) so every holder of this key serves the same allocation; if
    /// the mask is no longer canonical (invalidated or rebound while the
    /// compile ran), the plan is served uncached.
    pub(crate) fn admit_plan(
        &mut self,
        mask: Arc<PruneMask>,
        precision: Precision,
        plan: Arc<CompiledPlan>,
    ) -> Arc<CompiledPlan> {
        let sparsity = plan.sparsity();
        if let Some(existing) = self.resident(&mask, precision, sparsity) {
            return existing;
        }
        self.stats.misses += 1;
        capnn_telemetry::count("cache.misses", 1);
        let still_canonical = self
            .canon
            .get(mask.as_ref())
            .is_some_and(|c| Arc::ptr_eq(c, &mask));
        if still_canonical {
            self.account_insert(&plan);
            self.plans.insert(
                (mask, precision, sparsity),
                PlanEntry {
                    plan: Arc::clone(&plan),
                    last_used: self.tick,
                },
            );
            self.enforce_budget();
        }
        self.publish_gauges();
        plan
    }

    /// Interns a mask by value (with slack substitution, like the masks the
    /// request path admits) without binding it to any profile. The
    /// recompile worker canonicalizes its re-pruned mask first, so a
    /// no-op swap — drift detected but the mask unchanged — is observable
    /// *before* compiling anything.
    pub fn canonicalize(&mut self, mask: PruneMask) -> Arc<PruneMask> {
        self.intern_mask(mask)
    }

    /// The canonical mask currently bound to `key`, if the profile has been
    /// served before.
    pub fn bound_mask(&self, key: &ProfileKey) -> Option<Arc<PruneMask>> {
        self.masks.get(key).cloned()
    }

    /// Atomically rebinds `key` to a new canonical mask and admits the
    /// plans compiled for it — the hot-swap commit point. Every
    /// [`lookup`](Self::lookup) after this call resolves to the new plans.
    ///
    /// If the old mask is left unreferenced by the memo, its resident plans
    /// are released (counted in [`CacheStats::released`], not as
    /// evictions) and the mask is un-interned, so repeated swaps cannot
    /// grow residency past the budget.
    ///
    /// Returns the number of plans released.
    pub fn rebind(
        &mut self,
        key: &ProfileKey,
        canonical: Arc<PruneMask>,
        plans: Vec<(Precision, Arc<CompiledPlan>)>,
    ) -> usize {
        self.tick += 1;
        let old = self.masks.insert(key.clone(), Arc::clone(&canonical));
        for (precision, plan) in plans {
            self.admit_plan(Arc::clone(&canonical), precision, plan);
        }
        let mut released = 0;
        if let Some(old) = old {
            let still_bound =
                Arc::ptr_eq(&old, &canonical) || self.masks.values().any(|m| Arc::ptr_eq(m, &old));
            if !still_bound {
                let stale: Vec<(Arc<PruneMask>, Precision, Sparsity)> = self
                    .plans
                    .keys()
                    .filter(|(m, _, _)| Arc::ptr_eq(m, &old))
                    .cloned()
                    .collect();
                for k in stale {
                    if let Some(entry) = self.plans.remove(&k) {
                        self.account_evict(&entry.plan);
                        released += 1;
                    }
                }
                self.canon.remove(&old);
                if released > 0 {
                    self.stats.released += released as u64;
                    capnn_telemetry::count("cache.swap_released", released as u64);
                }
            }
        }
        self.enforce_budget();
        self.publish_gauges();
        released
    }

    /// Drops every resident plan and memoized mask (e.g. after the cloud
    /// retrains). Statistics are kept.
    pub fn invalidate(&mut self) {
        self.masks.clear();
        self.canon.clear();
        self.plans.clear();
        self.kernel_refs.clear();
        self.resident_exact = 0;
        self.stats.resident_bytes = 0;
    }

    /// Adds a just-compiled plan to the residency ledger: its fixed bytes
    /// always, each kernel's bytes only on its first resident reference.
    fn account_insert(&mut self, plan: &CompiledPlan) {
        self.resident_exact = self
            .resident_exact
            .saturating_add(plan.fixed_bytes() as u64);
        for (id, bytes) in plan.kernel_footprints() {
            let slot = self.kernel_refs.entry(id).or_insert(KernelRef {
                refs: 0,
                bytes: bytes as u64,
            });
            if slot.refs == 0 {
                self.resident_exact = self.resident_exact.saturating_add(slot.bytes);
            }
            slot.refs += 1;
        }
    }

    /// Removes an evicted plan from the residency ledger, releasing each
    /// kernel's bytes when its last resident reference drops.
    fn account_evict(&mut self, plan: &CompiledPlan) {
        self.resident_exact = self
            .resident_exact
            .saturating_sub(plan.fixed_bytes() as u64);
        for (id, _) in plan.kernel_footprints() {
            if let Some(slot) = self.kernel_refs.get_mut(&id) {
                slot.refs -= 1;
                if slot.refs == 0 {
                    self.resident_exact = self.resident_exact.saturating_sub(slot.bytes);
                    self.kernel_refs.remove(&id);
                }
            }
        }
    }

    /// Interns `mask` by value; under a nonzero slack, an acceptable
    /// already-canonical superset-kept mask is substituted instead.
    fn intern_mask(&mut self, mask: PruneMask) -> Arc<PruneMask> {
        if let Some(existing) = self.canon.get(&mask) {
            return Arc::clone(existing);
        }
        if self.mask_slack > 0 {
            let user_pruned = mask.pruned_count();
            // Guard: candidate.is_subset_of(mask) ⟺ the candidate prunes a
            // subset of what the user's mask prunes ⟺ its kept set is a
            // superset of the user's. Among acceptable candidates take the
            // closest (most-pruned) one.
            let best = self
                .canon
                .iter()
                .filter(|c| {
                    c.is_subset_of(&mask) && user_pruned - c.pruned_count() <= self.mask_slack
                })
                .max_by_key(|c| c.pruned_count())
                .cloned();
            if let Some(canonical) = best {
                self.substitutions += 1;
                capnn_telemetry::count("cache.canonical_substitutions", 1);
                return canonical;
            }
        }
        let canonical = Arc::new(mask);
        self.canon.insert(Arc::clone(&canonical));
        canonical
    }

    /// Evicts least-recently-used plans until the exact resident total is
    /// within budget. The incremental ledger makes the check O(1), so the
    /// unbounded path stays O(1) per request too.
    fn enforce_budget(&mut self) {
        if let Some(budget) = self.budget_bytes {
            while self.resident_exact > budget && !self.plans.is_empty() {
                let lru = self
                    .plans
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone());
                let Some(key) = lru else { break };
                if let Some(entry) = self.plans.remove(&key) {
                    self.account_evict(&entry.plan);
                }
                self.stats.evictions += 1;
                capnn_telemetry::count("cache.evictions", 1);
            }
        }
        self.stats.resident_bytes = self.resident_exact;
    }

    fn publish_gauges(&self) {
        capnn_telemetry::set_gauge("cache.resident_bytes", self.stats.resident_bytes as f64);
        capnn_telemetry::set_gauge("cache.evictions", self.stats.evictions as f64);
        capnn_telemetry::set_gauge("cache.plans", self.plans.len() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(classes: Vec<usize>, weights: Vec<f32>) -> UserProfile {
        UserProfile::new(classes, weights).unwrap()
    }

    #[test]
    fn key_ignores_class_order() {
        let a = profile(vec![3, 7], vec![0.4, 0.6]);
        let b = profile(vec![7, 3], vec![0.6, 0.4]);
        assert_eq!(
            ProfileKey::new(&a, Variant::Weighted, 16),
            ProfileKey::new(&b, Variant::Weighted, 16)
        );
    }

    #[test]
    fn key_distinguishes_weights_for_weighted_only() {
        let a = profile(vec![1, 2], vec![0.9, 0.1]);
        let b = profile(vec![1, 2], vec![0.1, 0.9]);
        assert_ne!(
            ProfileKey::new(&a, Variant::Weighted, 16),
            ProfileKey::new(&b, Variant::Weighted, 16)
        );
        assert_eq!(
            ProfileKey::new(&a, Variant::Basic, 16),
            ProfileKey::new(&b, Variant::Basic, 16)
        );
    }

    #[test]
    fn near_identical_weights_share_a_key() {
        let a = profile(vec![1, 2], vec![0.500, 0.500]);
        let b = profile(vec![1, 2], vec![0.505, 0.495]);
        assert_eq!(
            ProfileKey::new(&a, Variant::Miseffectual, 8),
            ProfileKey::new(&b, Variant::Miseffectual, 8)
        );
        // with a fine grid they differ… if the delta exceeds half a step
        let c = profile(vec![1, 2], vec![0.53, 0.47]);
        assert_ne!(
            ProfileKey::new(&a, Variant::Miseffectual, 64),
            ProfileKey::new(&c, Variant::Miseffectual, 64)
        );
    }

    #[test]
    fn key_merges_duplicate_classes_by_summing_weights() {
        // `UserProfile::new` rejects duplicates, but a deserialized profile
        // can carry them — the key must treat {2:0.3, 2:0.2} as {2:0.5}.
        let dup: UserProfile =
            serde_json::from_str(r#"{"classes":[2,5,2],"weights":[0.3,0.5,0.2]}"#).unwrap();
        let clean = profile(vec![2, 5], vec![0.5, 0.5]);
        for variant in [Variant::Basic, Variant::Weighted, Variant::Miseffectual] {
            assert_eq!(
                ProfileKey::new(&dup, variant, 16),
                ProfileKey::new(&clean, variant, 16),
                "{variant}"
            );
        }
        // and a genuinely different total weight still gets its own key
        let other = profile(vec![2, 5], vec![0.3, 0.7]);
        assert_ne!(
            ProfileKey::new(&dup, Variant::Weighted, 16),
            ProfileKey::new(&other, Variant::Weighted, 16)
        );
    }

    #[test]
    fn key_distinguishes_variants() {
        let a = profile(vec![1, 2], vec![0.5, 0.5]);
        assert_ne!(
            ProfileKey::new(&a, Variant::Weighted, 16),
            ProfileKey::new(&a, Variant::Miseffectual, 16)
        );
    }

    #[test]
    fn cache_construction_validates() {
        assert!(ModelCache::new(0).is_err());
        let c = ModelCache::new(16).unwrap();
        assert!(c.is_empty());
        assert_eq!(c.stats().hit_rate(), 0.0);
    }

    #[test]
    fn stats_hit_rate() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    /// A trained 4-class cloud small enough for unit tests.
    fn tiny_cloud() -> CloudServer {
        use capnn_data::{VectorClusters, VectorClustersConfig};
        use capnn_nn::{NetworkBuilder, Trainer, TrainerConfig};

        let gen = VectorClusters::new(VectorClustersConfig::easy(4, 6)).unwrap();
        let mut net = NetworkBuilder::mlp(&[6, 16, 12, 4], 2).build().unwrap();
        let cfg = TrainerConfig {
            epochs: 12,
            ..TrainerConfig::default()
        };
        Trainer::new(cfg, 1)
            .fit(&mut net, gen.generate(30, 1).samples())
            .unwrap();
        CloudServer::new(
            net,
            &gen.generate(20, 2),
            &gen.generate(15, 3),
            crate::PruningConfig::fast(),
        )
        .unwrap()
    }

    #[test]
    fn personalize_counts_hits_and_shares_plans() {
        let mut cloud = tiny_cloud();
        let mut cache = ModelCache::new(16).unwrap();

        let a = profile(vec![0, 1], vec![0.7, 0.3]);
        let b = profile(vec![1, 0], vec![0.3, 0.7]); // same usage, reordered
        let c = profile(vec![2, 3], vec![0.5, 0.5]);

        let ma = cache
            .personalize(&mut cloud, &a, Variant::Weighted)
            .unwrap();
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                misses: 1,
                ..Default::default()
            }
        );
        let mb = cache
            .personalize(&mut cloud, &b, Variant::Weighted)
            .unwrap();
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                ..Default::default()
            }
        );
        // equivalent profiles serve from the *same* compiled plan
        assert!(std::sync::Arc::ptr_eq(&ma.plan, &mb.plan));
        let mc = cache
            .personalize(&mut cloud, &c, Variant::Weighted)
            .unwrap();
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 2,
                ..Default::default()
            }
        );
        assert!(!std::sync::Arc::ptr_eq(&ma.plan, &mc.plan));
        assert!((cache.stats().hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn fleet_cache_construction_validates() {
        assert!(FleetPlanCache::with_budget(0, None).is_err());
        let c = FleetPlanCache::with_budget(16, Some(1 << 20)).unwrap();
        assert!(c.is_empty());
        assert_eq!(c.budget_bytes(), Some(1 << 20));
        assert_eq!(c.unique_masks(), 0);
    }

    #[test]
    fn fleet_cache_memoizes_masks_and_keys_plans_by_precision() {
        let mut cloud = tiny_cloud();
        let mut cache = FleetPlanCache::with_budget(16, None).unwrap();

        let a = profile(vec![0, 1], vec![0.7, 0.3]);
        let b = profile(vec![1, 0], vec![0.3, 0.7]); // same usage, reordered
        let c = profile(vec![2, 3], vec![0.5, 0.5]);

        let pa = cache
            .plan_for(&mut cloud, &a, Variant::Weighted, Precision::F32)
            .unwrap();
        let pb = cache
            .plan_for(&mut cloud, &b, Variant::Weighted, Precision::F32)
            .unwrap();
        // equivalent profiles are served the *same* resident plan
        assert!(Arc::ptr_eq(&pa, &pb));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);

        let pc = cache
            .plan_for(&mut cloud, &c, Variant::Weighted, Precision::F32)
            .unwrap();
        assert!(!Arc::ptr_eq(&pa, &pc));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.unique_masks(), 2);

        // the same mask at int8 is its own resident plan…
        let qa = cache
            .plan_for(&mut cloud, &a, Variant::Weighted, Precision::Int8)
            .unwrap();
        assert!(!Arc::ptr_eq(&pa, &qa));
        assert_eq!(cache.len(), 3);
        // …but no new canonical mask was interned for it
        assert_eq!(cache.unique_masks(), 2);

        assert!(cache.resident_bytes() > 0);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.stats().resident_bytes, cache.resident_bytes());
    }

    #[test]
    fn fleet_cache_keys_plans_by_sparsity_tier() {
        let mut cloud = tiny_cloud();
        let mut cache = FleetPlanCache::with_budget(16, None).unwrap();
        let a = profile(vec![0, 1], vec![0.7, 0.3]);

        let dense = cache
            .plan_for(&mut cloud, &a, Variant::Weighted, Precision::F32)
            .unwrap();
        let hybrid = cache
            .plan_for_sparse(
                &mut cloud,
                &a,
                Variant::Weighted,
                Precision::F32,
                Sparsity::NM(2, 4),
            )
            .unwrap();
        // the same mask at the hybrid tier is its own resident plan…
        assert!(!Arc::ptr_eq(&dense, &hybrid));
        assert_eq!(hybrid.sparsity(), Sparsity::NM(2, 4));
        assert_eq!(cache.len(), 2);
        // …interned against the same canonical mask
        assert_eq!(cache.unique_masks(), 1);

        // each tier hits its own key on a repeat request
        let again = cache
            .plan_for_sparse(
                &mut cloud,
                &a,
                Variant::Weighted,
                Precision::F32,
                Sparsity::NM(2, 4),
            )
            .unwrap();
        assert!(Arc::ptr_eq(&hybrid, &again));
        let dense_again = cache
            .plan_for(&mut cloud, &a, Variant::Weighted, Precision::F32)
            .unwrap();
        assert!(Arc::ptr_eq(&dense, &dense_again));
        assert_eq!(cache.stats().hits, 2);
        assert_eq!(cache.stats().misses, 2);

        // int8 × NM is a fourth tier under the same mask
        let q = cache
            .plan_for_sparse(
                &mut cloud,
                &a,
                Variant::Weighted,
                Precision::Int8,
                Sparsity::NM(2, 4),
            )
            .unwrap();
        assert!(!Arc::ptr_eq(&q, &hybrid));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.unique_masks(), 1);
    }

    #[test]
    fn fleet_cache_budget_evicts_lru_and_recompiles_from_mask_memo() {
        let mut cloud = tiny_cloud();
        let a = profile(vec![0, 1], vec![0.7, 0.3]);
        let c = profile(vec![2, 3], vec![0.5, 0.5]);

        // size one resident plan to derive a budget that fits ~one plan
        let one = {
            let mut probe = FleetPlanCache::with_budget(16, None).unwrap();
            probe
                .plan_for(&mut cloud, &a, Variant::Weighted, Precision::F32)
                .unwrap();
            probe.resident_bytes()
        };
        assert!(one > 0);

        let mut cache = FleetPlanCache::with_budget(16, Some(one + one / 4)).unwrap();
        cache
            .plan_for(&mut cloud, &a, Variant::Weighted, Precision::F32)
            .unwrap();
        assert_eq!(cache.stats().evictions, 0);
        cache
            .plan_for(&mut cloud, &c, Variant::Weighted, Precision::F32)
            .unwrap();
        // the second plan forced the first (LRU) out
        assert!(cache.stats().evictions >= 1);
        assert!(cache.resident_bytes() <= one + one / 4);
        assert_eq!(cache.unique_masks(), 2);

        // re-requesting `a` recompiles (plan was evicted) from the memoized
        // mask: a new miss, but no new canonical mask
        let misses_before = cache.stats().misses;
        cache
            .plan_for(&mut cloud, &a, Variant::Weighted, Precision::F32)
            .unwrap();
        assert_eq!(cache.stats().misses, misses_before + 1);
        assert_eq!(cache.unique_masks(), 2);
    }

    #[test]
    fn fleet_cache_budget_is_strict_even_for_the_incoming_plan() {
        let mut cloud = tiny_cloud();
        // 64 bytes cannot hold any compiled plan
        let mut cache = FleetPlanCache::with_budget(16, Some(64)).unwrap();
        let a = profile(vec![0, 1], vec![0.7, 0.3]);
        let plan = cache
            .plan_for(&mut cloud, &a, Variant::Weighted, Precision::F32)
            .unwrap();
        // served uncached: the plan works, but nothing stays resident
        assert!(cache.is_empty());
        assert!(cache.stats().evictions >= 1);
        assert_eq!(cache.resident_bytes(), 0);
        let out = plan.forward(&capnn_tensor::Tensor::ones(&[6])).unwrap();
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn fleet_cache_slack_substitutes_only_superset_kept_masks() {
        let mut cloud = tiny_cloud();
        let small = UserProfile::uniform(vec![2]).unwrap();
        let big = UserProfile::uniform(vec![2, 3]).unwrap();
        // CAP'NN-B masks: prune({2,3}) = ∩ of the per-class matrices
        // ⊆ prune({2}) — the big profile's mask keeps a superset.
        let mask_small = cloud.prune_mask(&small, Variant::Basic).unwrap();
        let mask_big = cloud.prune_mask(&big, Variant::Basic).unwrap();
        assert_ne!(mask_small, mask_big, "setup: masks must differ");
        assert!(mask_big.is_subset_of(&mask_small));

        // big first: the small profile may be served big's (superset-kept)
        // canonical plan
        let mut cache = FleetPlanCache::with_budget(16, None).unwrap();
        cache.set_mask_slack(10_000);
        let pb = cache
            .plan_for(&mut cloud, &big, Variant::Basic, Precision::F32)
            .unwrap();
        let ps = cache
            .plan_for(&mut cloud, &small, Variant::Basic, Precision::F32)
            .unwrap();
        assert!(Arc::ptr_eq(&pb, &ps));
        assert_eq!(cache.canonical_substitutions(), 1);
        assert_eq!(cache.unique_masks(), 1);
        assert_eq!(cache.stats().hits, 1);

        // small first: big must NOT be folded onto small's mask — that
        // would prune units big's ε check never accepted pruning
        let mut cache = FleetPlanCache::with_budget(16, None).unwrap();
        cache.set_mask_slack(10_000);
        cache
            .plan_for(&mut cloud, &small, Variant::Basic, Precision::F32)
            .unwrap();
        cache
            .plan_for(&mut cloud, &big, Variant::Basic, Precision::F32)
            .unwrap();
        assert_eq!(cache.canonical_substitutions(), 0);
        assert_eq!(cache.unique_masks(), 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn fleet_cache_rebind_swaps_binding_and_releases_stale_plans() {
        let mut cloud = tiny_cloud();
        let mut cache = FleetPlanCache::with_budget(16, None).unwrap();
        let a = profile(vec![0, 1], vec![0.7, 0.3]);
        let old_plan = cache
            .plan_for(&mut cloud, &a, Variant::Weighted, Precision::F32)
            .unwrap();
        let key = ProfileKey::new(&a, Variant::Weighted, 16);

        // usage drifted to {2, 3}: re-prune, canonicalize, compile, rebind
        let shifted = profile(vec![2, 3], vec![0.5, 0.5]);
        let fresh = cloud.prune_mask(&shifted, Variant::Weighted).unwrap();
        let canonical = cache.canonicalize(fresh);
        let new_plan = cloud.compile_pooled(&canonical, Precision::F32).unwrap();
        let released = cache.rebind(
            &key,
            Arc::clone(&canonical),
            vec![(Precision::F32, Arc::clone(&new_plan))],
        );
        assert_eq!(released, 1, "the stale plan must be released");
        assert_eq!(cache.stats().released, 1);
        assert_eq!(cache.stats().evictions, 0, "a release is not an eviction");

        // the profile now resolves to the new plan, as a hit
        let hits_before = cache.stats().hits;
        let served = cache
            .plan_for(&mut cloud, &a, Variant::Weighted, Precision::F32)
            .unwrap();
        assert!(Arc::ptr_eq(&served, &new_plan));
        assert!(!Arc::ptr_eq(&served, &old_plan));
        assert_eq!(cache.stats().hits, hits_before + 1);
        // old mask un-interned, old plan out of residency
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.unique_masks(), 1);
    }

    #[test]
    fn fleet_cache_rebind_to_same_mask_is_noop() {
        let mut cloud = tiny_cloud();
        let mut cache = FleetPlanCache::with_budget(16, None).unwrap();
        let a = profile(vec![0, 1], vec![0.7, 0.3]);
        let plan = cache
            .plan_for(&mut cloud, &a, Variant::Weighted, Precision::F32)
            .unwrap();
        let key = ProfileKey::new(&a, Variant::Weighted, 16);

        // re-pruning the same usage interns onto the same canonical mask —
        // a swap worker can detect the no-op before compiling anything
        let fresh = cloud.prune_mask(&a, Variant::Weighted).unwrap();
        let canonical = cache.canonicalize(fresh);
        assert!(Arc::ptr_eq(&cache.bound_mask(&key).unwrap(), &canonical));
        let released = cache.rebind(&key, canonical, Vec::new());
        assert_eq!(released, 0);
        assert_eq!(cache.stats().released, 0);
        let served = cache
            .plan_for(&mut cloud, &a, Variant::Weighted, Precision::F32)
            .unwrap();
        assert!(Arc::ptr_eq(&served, &plan));
    }

    #[test]
    fn fleet_cache_rebind_keeps_mask_shared_by_other_profiles() {
        let mut cloud = tiny_cloud();
        let mut cache = FleetPlanCache::with_budget(16, None).unwrap();
        let a = profile(vec![0, 1], vec![0.7, 0.3]);
        let plan = cache
            .plan_for(&mut cloud, &a, Variant::Weighted, Precision::F32)
            .unwrap();
        let key_a = ProfileKey::new(&a, Variant::Weighted, 16);
        let old_mask = cache.bound_mask(&key_a).unwrap();
        // bind a second profile to the same canonical mask
        let b = profile(vec![2, 3], vec![0.5, 0.5]);
        let key_b = ProfileKey::new(&b, Variant::Weighted, 16);
        cache.masks.insert(key_b, Arc::clone(&old_mask));

        let shifted = profile(vec![2, 3], vec![0.5, 0.5]);
        let fresh = cloud.prune_mask(&shifted, Variant::Weighted).unwrap();
        let canonical = cache.canonicalize(fresh);
        let released = cache.rebind(&key_a, canonical, Vec::new());
        assert_eq!(released, 0, "a mask still bound elsewhere must survive");
        // the other profile still serves the original plan
        let pb = cache
            .plan_for(&mut cloud, &b, Variant::Weighted, Precision::F32)
            .unwrap();
        assert!(Arc::ptr_eq(&pb, &plan));
    }
}
