//! Cloud-side model cache: users with equivalent profiles share a pruned
//! model.
//!
//! The paper's cloud prunes per user, but many users are *not* unique —
//! prior mobile-usage studies (its motivation cites [11]) show heavy overlap
//! in the classes people actually use. CAP'NN-B is trivially shareable (the
//! mask depends only on the class set); CAP'NN-W/M masks also depend on the
//! usage weights, so the cache key quantizes weights to a small grid and
//! shares a model between users whose usage differs by less than one grid
//! step. The ε guarantee is unaffected: a cached mask was accepted by the
//! same accuracy check, over the same class set.

use crate::cloud::{CloudServer, PersonalizedModel, Variant};
use crate::error::CapnnError;
use crate::user::UserProfile;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Cache key: variant + class set + usage weights quantized to a grid.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProfileKey {
    variant: Variant,
    classes: Vec<usize>,
    /// Weights in units of the quantization step, aligned with `classes`
    /// sorted ascending. Empty for [`Variant::Basic`] (weights unused).
    quantized_weights: Vec<u16>,
}

impl ProfileKey {
    /// Builds the key for a profile at `steps` quantization levels.
    ///
    /// Classes are sorted (two profiles listing the same classes in
    /// different orders share a key); Basic keys ignore weights entirely.
    pub fn new(profile: &UserProfile, variant: Variant, steps: u16) -> Self {
        let mut pairs: Vec<(usize, f32)> = profile
            .classes()
            .iter()
            .copied()
            .zip(profile.weights().iter().copied())
            .collect();
        pairs.sort_by_key(|&(c, _)| c);
        let classes: Vec<usize> = pairs.iter().map(|&(c, _)| c).collect();
        let quantized_weights = if variant == Variant::Basic {
            Vec::new()
        } else {
            pairs
                .iter()
                .map(|&(_, w)| (w * steps as f32).round() as u16)
                .collect()
        };
        Self {
            variant,
            classes,
            quantized_weights,
        }
    }
}

/// Statistics of a [`ModelCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that ran the pruning pipeline.
    pub misses: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (0 when empty).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A personalization front-end that deduplicates equivalent requests.
///
/// # Examples
///
/// See the `model_cache_dedups_equivalent_users` integration test.
#[derive(Debug)]
pub struct ModelCache {
    entries: HashMap<ProfileKey, PersonalizedModel>,
    weight_steps: u16,
    stats: CacheStats,
}

impl ModelCache {
    /// Creates a cache quantizing usage weights to `weight_steps` levels
    /// (8–32 is reasonable; more steps → fewer shares, closer fidelity).
    ///
    /// # Errors
    ///
    /// Returns [`CapnnError::Config`] if `weight_steps` is zero.
    pub fn new(weight_steps: u16) -> Result<Self, CapnnError> {
        if weight_steps == 0 {
            return Err(CapnnError::Config("weight_steps must be positive".into()));
        }
        Ok(Self {
            entries: HashMap::new(),
            weight_steps,
            stats: CacheStats::default(),
        })
    }

    /// Number of distinct cached models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Personalizes through the cache: an equivalent earlier request's model
    /// is cloned instead of re-running the pruning pipeline. The clone is
    /// shallow where it matters — the compiled execution plan is an
    /// `Arc<CompiledPlan>`, so every user sharing a [`ProfileKey`] serves
    /// inference from the *same* packed weights.
    ///
    /// # Errors
    ///
    /// Propagates pruning errors on cache misses.
    pub fn personalize(
        &mut self,
        cloud: &mut CloudServer,
        profile: &UserProfile,
        variant: Variant,
    ) -> Result<PersonalizedModel, CapnnError> {
        let key = ProfileKey::new(profile, variant, self.weight_steps);
        if let Some(model) = self.entries.get(&key) {
            self.stats.hits += 1;
            capnn_telemetry::count("cache.hits", 1);
            return Ok(model.clone());
        }
        let model = cloud.personalize(profile, variant)?;
        self.stats.misses += 1;
        capnn_telemetry::count("cache.misses", 1);
        self.entries.insert(key, model.clone());
        Ok(model)
    }

    /// Drops all cached models (e.g. after the cloud retrains or re-profiles
    /// the base network).
    pub fn invalidate(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(classes: Vec<usize>, weights: Vec<f32>) -> UserProfile {
        UserProfile::new(classes, weights).unwrap()
    }

    #[test]
    fn key_ignores_class_order() {
        let a = profile(vec![3, 7], vec![0.4, 0.6]);
        let b = profile(vec![7, 3], vec![0.6, 0.4]);
        assert_eq!(
            ProfileKey::new(&a, Variant::Weighted, 16),
            ProfileKey::new(&b, Variant::Weighted, 16)
        );
    }

    #[test]
    fn key_distinguishes_weights_for_weighted_only() {
        let a = profile(vec![1, 2], vec![0.9, 0.1]);
        let b = profile(vec![1, 2], vec![0.1, 0.9]);
        assert_ne!(
            ProfileKey::new(&a, Variant::Weighted, 16),
            ProfileKey::new(&b, Variant::Weighted, 16)
        );
        assert_eq!(
            ProfileKey::new(&a, Variant::Basic, 16),
            ProfileKey::new(&b, Variant::Basic, 16)
        );
    }

    #[test]
    fn near_identical_weights_share_a_key() {
        let a = profile(vec![1, 2], vec![0.500, 0.500]);
        let b = profile(vec![1, 2], vec![0.505, 0.495]);
        assert_eq!(
            ProfileKey::new(&a, Variant::Miseffectual, 8),
            ProfileKey::new(&b, Variant::Miseffectual, 8)
        );
        // with a fine grid they differ… if the delta exceeds half a step
        let c = profile(vec![1, 2], vec![0.53, 0.47]);
        assert_ne!(
            ProfileKey::new(&a, Variant::Miseffectual, 64),
            ProfileKey::new(&c, Variant::Miseffectual, 64)
        );
    }

    #[test]
    fn key_distinguishes_variants() {
        let a = profile(vec![1, 2], vec![0.5, 0.5]);
        assert_ne!(
            ProfileKey::new(&a, Variant::Weighted, 16),
            ProfileKey::new(&a, Variant::Miseffectual, 16)
        );
    }

    #[test]
    fn cache_construction_validates() {
        assert!(ModelCache::new(0).is_err());
        let c = ModelCache::new(16).unwrap();
        assert!(c.is_empty());
        assert_eq!(c.stats().hit_rate(), 0.0);
    }

    #[test]
    fn stats_hit_rate() {
        let s = CacheStats { hits: 3, misses: 1 };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn personalize_counts_hits_and_shares_plans() {
        use capnn_data::{VectorClusters, VectorClustersConfig};
        use capnn_nn::{NetworkBuilder, Trainer, TrainerConfig};

        let gen = VectorClusters::new(VectorClustersConfig::easy(4, 6)).unwrap();
        let mut net = NetworkBuilder::mlp(&[6, 16, 12, 4], 2).build().unwrap();
        let cfg = TrainerConfig {
            epochs: 12,
            ..TrainerConfig::default()
        };
        Trainer::new(cfg, 1)
            .fit(&mut net, gen.generate(30, 1).samples())
            .unwrap();
        let mut cloud = crate::CloudServer::new(
            net,
            &gen.generate(20, 2),
            &gen.generate(15, 3),
            crate::PruningConfig::fast(),
        )
        .unwrap();
        let mut cache = ModelCache::new(16).unwrap();

        let a = profile(vec![0, 1], vec![0.7, 0.3]);
        let b = profile(vec![1, 0], vec![0.3, 0.7]); // same usage, reordered
        let c = profile(vec![2, 3], vec![0.5, 0.5]);

        let ma = cache
            .personalize(&mut cloud, &a, Variant::Weighted)
            .unwrap();
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 1 });
        let mb = cache
            .personalize(&mut cloud, &b, Variant::Weighted)
            .unwrap();
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        // equivalent profiles serve from the *same* compiled plan
        assert!(std::sync::Arc::ptr_eq(&ma.plan, &mb.plan));
        let mc = cache
            .personalize(&mut cloud, &c, Variant::Weighted)
            .unwrap();
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 2 });
        assert!(!std::sync::Arc::ptr_eq(&ma.plan, &mc.plan));
        assert!((cache.stats().hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(cache.len(), 2);
    }
}
