//! Masked-network evaluation with cached tail replay.
//!
//! Algorithms 1 and 2 re-measure per-class accuracy for every candidate
//! threshold. Since pruning only touches the last few layers, the expensive
//! convolutional prefix is identical for every candidate — so the evaluator
//! runs it once per evaluation sample, caches the activation at the tail
//! boundary, and replays only the tail for each mask. This is exact (see the
//! `tail_replay_matches_full_masked_forward` test in `capnn-nn`), and turns
//! the threshold search from hours into seconds at our scale.

use crate::error::CapnnError;
use capnn_data::Dataset;
use capnn_nn::{Network, PruneMask};
use capnn_tensor::Tensor;

/// Per-class accuracy snapshot of a (possibly masked) network.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassAccuracy {
    /// Top-1 accuracy per class id (`NaN`-free: classes without samples get
    /// 0).
    pub top1: Vec<f32>,
}

impl ClassAccuracy {
    /// Mean top-1 accuracy over `classes` (or over all classes if `None`).
    pub fn mean(&self, classes: Option<&[usize]>) -> f32 {
        match classes {
            Some(cs) if !cs.is_empty() => {
                cs.iter().map(|&c| self.top1[c]).sum::<f32>() / cs.len() as f32
            }
            Some(_) => 0.0,
            None => {
                if self.top1.is_empty() {
                    0.0
                } else {
                    self.top1.iter().sum::<f32>() / self.top1.len() as f32
                }
            }
        }
    }
}

/// Evaluator with cached activations at the tail boundary.
///
/// The evaluator owns a clone of the network, guaranteeing that cached
/// activations and tail weights stay consistent.
///
/// # Examples
///
/// ```
/// use capnn_core::TailEvaluator;
/// use capnn_data::{VectorClusters, VectorClustersConfig};
/// use capnn_nn::{NetworkBuilder, PruneMask};
///
/// let gen = VectorClusters::new(VectorClustersConfig::easy(3, 4))?;
/// let net = NetworkBuilder::mlp(&[4, 8, 3], 1).build().unwrap();
/// let eval = TailEvaluator::new(&net, &gen.generate(5, 1), 2).unwrap();
/// let acc = eval.per_class_accuracy(&PruneMask::all_kept(eval.network()), None).unwrap();
/// assert_eq!(acc.top1.len(), 3);
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone)]
pub struct TailEvaluator {
    net: Network,
    /// First layer index of the replayed tail.
    start: usize,
    /// `(boundary activation, label)` per evaluation sample.
    cached: Vec<(Tensor, usize)>,
    num_classes: usize,
    /// Per-class accuracy of the *unmasked* network — the baseline that
    /// degradation is measured against.
    baseline: ClassAccuracy,
    /// MACs of one tail replay — sets the min-work-per-thread threshold so
    /// sweeps over tiny tails stay serial instead of paying spawn overhead.
    replay_macs: u64,
}

impl TailEvaluator {
    /// Builds the evaluator: computes the boundary activation of every
    /// sample in `dataset` and the unmasked baseline accuracy.
    ///
    /// `tail_prunable` is the number of trailing prunable layers that masks
    /// will touch; the boundary is placed just before the first of them.
    ///
    /// # Errors
    ///
    /// Returns an error if the dataset is empty or shapes mismatch.
    pub fn new(net: &Network, dataset: &Dataset, tail_prunable: usize) -> Result<Self, CapnnError> {
        if dataset.is_empty() {
            return Err(CapnnError::Config("evaluation dataset is empty".into()));
        }
        let tail = net.prunable_tail(tail_prunable);
        let start = tail.first().copied().unwrap_or(net.len());
        let samples = dataset.samples();
        let threads = capnn_tensor::parallel::max_threads();
        let trace_min = capnn_tensor::parallel::min_items_per_thread(net.mac_count_from(0)?);
        let chunks =
            capnn_tensor::parallel::parallel_reduce(samples.len(), threads, trace_min, |range| {
                samples[range]
                    .iter()
                    .map(|(x, label)| {
                        let trace = net.forward_trace(x)?;
                        Ok((trace[start].clone(), *label))
                    })
                    .collect::<Result<Vec<_>, CapnnError>>()
            });
        let mut cached = Vec::with_capacity(dataset.len());
        for chunk in chunks {
            cached.extend(chunk?);
        }
        let mut eval = Self {
            net: net.clone(),
            start,
            cached,
            num_classes: dataset.num_classes(),
            baseline: ClassAccuracy { top1: vec![] },
            replay_macs: net.mac_count_from(start)?,
        };
        let mask = PruneMask::all_kept(&eval.net);
        eval.baseline = eval.per_class_accuracy(&mask, None)?;
        Ok(eval)
    }

    /// The evaluator's network clone (masks must be built against this
    /// structure).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// First layer index of the replayed tail.
    pub fn tail_start(&self) -> usize {
        self.start
    }

    /// Number of cached evaluation samples.
    pub fn sample_count(&self) -> usize {
        self.cached.len()
    }

    /// Per-class baseline (unmasked) top-1 accuracy.
    pub fn baseline(&self) -> &ClassAccuracy {
        &self.baseline
    }

    /// Per-class top-1 accuracy under `mask`. When `restrict` is given, only
    /// samples of those classes are evaluated (other classes report 0);
    /// predictions are still taken over the full output vector.
    ///
    /// Cached samples are sharded across the worker pool; each worker
    /// replays the tail through its own [`capnn_nn::ExecScratch`] and
    /// counts hits with integer counters, so the result is exactly the
    /// same for every thread count.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch between mask and network.
    pub fn per_class_accuracy(
        &self,
        mask: &PruneMask,
        restrict: Option<&[usize]>,
    ) -> Result<ClassAccuracy, CapnnError> {
        let threads = capnn_tensor::parallel::max_threads();
        let min_items = capnn_tensor::parallel::min_items_per_thread(self.replay_macs);
        let partials = capnn_tensor::parallel::parallel_reduce(
            self.cached.len(),
            threads,
            min_items,
            |range| {
                let mut scratch = capnn_nn::ExecScratch::new();
                let mut correct = vec![0u32; self.num_classes];
                let mut total = vec![0u32; self.num_classes];
                for (act, label) in &self.cached[range] {
                    if let Some(cs) = restrict {
                        if !cs.contains(label) {
                            continue;
                        }
                    }
                    let out = self.net.forward_masked_from_with_scratch(
                        self.start,
                        act,
                        mask,
                        &mut scratch,
                    )?;
                    total[*label] += 1;
                    if out.argmax() == Some(*label) {
                        correct[*label] += 1;
                    }
                }
                Ok::<_, CapnnError>((correct, total))
            },
        );
        let mut correct = vec![0u32; self.num_classes];
        let mut total = vec![0u32; self.num_classes];
        for partial in partials {
            let (pc, pt) = partial?;
            for (c, &p) in correct.iter_mut().zip(&pc) {
                *c += p;
            }
            for (t, &p) in total.iter_mut().zip(&pt) {
                *t += p;
            }
        }
        let top1 = correct
            .iter()
            .zip(&total)
            .map(|(&c, &t)| if t > 0 { c as f32 / t as f32 } else { 0.0 })
            .collect();
        Ok(ClassAccuracy { top1 })
    }

    /// Top-k accuracy over samples of `classes` (or all samples if `None`).
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch.
    pub fn topk_accuracy(
        &self,
        mask: &PruneMask,
        k: usize,
        classes: Option<&[usize]>,
    ) -> Result<f32, CapnnError> {
        let threads = capnn_tensor::parallel::max_threads();
        let min_items = capnn_tensor::parallel::min_items_per_thread(self.replay_macs);
        let partials = capnn_tensor::parallel::parallel_reduce(
            self.cached.len(),
            threads,
            min_items,
            |range| {
                let mut scratch = capnn_nn::ExecScratch::new();
                let mut correct = 0u32;
                let mut total = 0u32;
                for (act, label) in &self.cached[range] {
                    if let Some(cs) = classes {
                        if !cs.contains(label) {
                            continue;
                        }
                    }
                    let out = self.net.forward_masked_from_with_scratch(
                        self.start,
                        act,
                        mask,
                        &mut scratch,
                    )?;
                    total += 1;
                    if out.top_k(k).contains(label) {
                        correct += 1;
                    }
                }
                Ok::<_, CapnnError>((correct, total))
            },
        );
        let mut correct = 0u32;
        let mut total = 0u32;
        for partial in partials {
            let (pc, pt) = partial?;
            correct += pc;
            total += pt;
        }
        Ok(if total > 0 {
            correct as f32 / total as f32
        } else {
            0.0
        })
    }

    /// Maximum per-class accuracy degradation of `mask` relative to the
    /// unmasked baseline, over `classes` (or all classes if `None`).
    ///
    /// This is the quantity both algorithms compare against ε, using the
    /// default top-1 metric.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch.
    pub fn max_degradation(
        &self,
        mask: &PruneMask,
        classes: Option<&[usize]>,
    ) -> Result<f32, CapnnError> {
        self.max_degradation_metric(mask, classes, DegradationMetric::Top1)
    }

    /// Like [`TailEvaluator::max_degradation`] but with an explicit accuracy
    /// metric: the per-class degradation is measured in top-1 or top-k
    /// accuracy. A top-k bound is looser (top-k accuracy dominates top-1),
    /// so it admits more pruning at the same ε.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch.
    pub fn max_degradation_metric(
        &self,
        mask: &PruneMask,
        classes: Option<&[usize]>,
        metric: DegradationMetric,
    ) -> Result<f32, CapnnError> {
        let k = match metric {
            DegradationMetric::Top1 => 1,
            DegradationMetric::TopK(k) => k.max(1),
        };
        let ids: Vec<usize> = match classes {
            Some(cs) => cs.to_vec(),
            None => (0..self.num_classes).collect(),
        };
        if k == 1 {
            let acc = self.per_class_accuracy(mask, classes)?;
            return Ok(ids
                .iter()
                .map(|&c| self.baseline.top1[c] - acc.top1[c])
                .fold(f32::MIN, f32::max)
                .max(0.0));
        }
        // top-k path: measure per class individually
        let unmasked = PruneMask::all_kept(&self.net);
        let mut worst = 0.0f32;
        for &c in &ids {
            let base = self.topk_accuracy(&unmasked, k, Some(&[c]))?;
            let now = self.topk_accuracy(mask, k, Some(&[c]))?;
            worst = worst.max(base - now);
        }
        Ok(worst)
    }
}

/// Which accuracy notion the ε degradation bound uses.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize, Default,
)]
pub enum DegradationMetric {
    /// Per-class top-1 accuracy (the paper's check).
    #[default]
    Top1,
    /// Per-class top-k accuracy — looser, admits more pruning at equal ε.
    TopK(usize),
}

impl std::fmt::Display for DegradationMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradationMetric::Top1 => write!(f, "top-1"),
            DegradationMetric::TopK(k) => write!(f, "top-{k}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capnn_data::{VectorClusters, VectorClustersConfig};
    use capnn_nn::{NetworkBuilder, Trainer, TrainerConfig};

    fn trained_setup() -> (Network, Dataset) {
        let gen = VectorClusters::new(VectorClustersConfig::easy(3, 4)).unwrap();
        let mut net = NetworkBuilder::mlp(&[4, 12, 8, 3], 2).build().unwrap();
        let cfg = TrainerConfig {
            epochs: 10,
            ..TrainerConfig::default()
        };
        Trainer::new(cfg, 1)
            .fit(&mut net, gen.generate(25, 1).samples())
            .unwrap();
        (net, gen.generate(15, 2))
    }

    #[test]
    fn baseline_matches_unmasked_accuracy() {
        let (net, eval_ds) = trained_setup();
        let eval = TailEvaluator::new(&net, &eval_ds, 2).unwrap();
        let mask = PruneMask::all_kept(eval.network());
        let acc = eval.per_class_accuracy(&mask, None).unwrap();
        assert_eq!(acc, *eval.baseline());
        assert!(acc.mean(None) > 0.8, "trained accuracy {}", acc.mean(None));
    }

    #[test]
    fn replay_equals_full_forward() {
        let (net, eval_ds) = trained_setup();
        let eval = TailEvaluator::new(&net, &eval_ds, 2).unwrap();
        let mask = PruneMask::all_kept(eval.network());
        let acc_replay = eval.per_class_accuracy(&mask, None).unwrap();
        // compute per-class accuracy the slow way
        let mut correct = [0u32; 3];
        let mut total = [0u32; 3];
        for (x, l) in eval_ds.samples() {
            total[*l] += 1;
            if net.predict(x).unwrap() == *l {
                correct[*l] += 1;
            }
        }
        for c in 0..3 {
            let slow = correct[c] as f32 / total[c] as f32;
            assert!((acc_replay.top1[c] - slow).abs() < 1e-6);
        }
    }

    #[test]
    fn restrict_skips_other_classes() {
        let (net, eval_ds) = trained_setup();
        let eval = TailEvaluator::new(&net, &eval_ds, 2).unwrap();
        let mask = PruneMask::all_kept(eval.network());
        let acc = eval.per_class_accuracy(&mask, Some(&[1])).unwrap();
        assert_eq!(acc.top1[0], 0.0);
        assert_eq!(acc.top1[2], 0.0);
        assert!(acc.top1[1] > 0.0);
    }

    #[test]
    fn degradation_zero_for_identity_mask() {
        let (net, eval_ds) = trained_setup();
        let eval = TailEvaluator::new(&net, &eval_ds, 2).unwrap();
        let mask = PruneMask::all_kept(eval.network());
        assert_eq!(eval.max_degradation(&mask, None).unwrap(), 0.0);
    }

    #[test]
    fn degradation_positive_when_gutted() {
        let (net, eval_ds) = trained_setup();
        let eval = TailEvaluator::new(&net, &eval_ds, 2).unwrap();
        let mut mask = PruneMask::all_kept(eval.network());
        let prunable = eval.network().prunable_layers();
        // gut the second hidden layer entirely
        let units = eval.network().layers()[prunable[1]].unit_count().unwrap();
        mask.set_layer(prunable[1], vec![false; units]).unwrap();
        let d = eval.max_degradation(&mask, None).unwrap();
        assert!(d > 0.1, "expected big degradation, got {d}");
    }

    #[test]
    fn topk_at_least_top1() {
        let (net, eval_ds) = trained_setup();
        let eval = TailEvaluator::new(&net, &eval_ds, 2).unwrap();
        let mask = PruneMask::all_kept(eval.network());
        let top1 = eval.topk_accuracy(&mask, 1, None).unwrap();
        let top2 = eval.topk_accuracy(&mask, 2, None).unwrap();
        let top3 = eval.topk_accuracy(&mask, 3, None).unwrap();
        assert!(top1 <= top2 && top2 <= top3);
        assert_eq!(top3, 1.0); // 3 classes → top-3 is always right
    }

    #[test]
    fn empty_dataset_rejected() {
        let (net, _) = trained_setup();
        let empty = Dataset::new(vec![], 3).unwrap();
        assert!(TailEvaluator::new(&net, &empty, 2).is_err());
    }

    #[test]
    fn topk_metric_is_looser_than_top1() {
        let (net, eval_ds) = trained_setup();
        let eval = TailEvaluator::new(&net, &eval_ds, 2).unwrap();
        let mut mask = PruneMask::all_kept(eval.network());
        let prunable = eval.network().prunable_layers();
        // prune a few units to induce some degradation
        for u in [0usize, 3, 5, 7] {
            let _ = mask.prune(prunable[0], u);
        }
        let d1 = eval
            .max_degradation_metric(&mask, None, DegradationMetric::Top1)
            .unwrap();
        let d2 = eval
            .max_degradation_metric(&mask, None, DegradationMetric::TopK(2))
            .unwrap();
        let d3 = eval
            .max_degradation_metric(&mask, None, DegradationMetric::TopK(3))
            .unwrap();
        assert!(d2 <= d1 + 1e-6, "top-2 degr {d2} vs top-1 {d1}");
        // 3 classes → top-3 degradation is identically zero
        assert_eq!(d3, 0.0);
        // Top1 metric equals the default path
        assert_eq!(d1, eval.max_degradation(&mask, None).unwrap());
    }

    #[test]
    fn metric_display_and_default() {
        assert_eq!(DegradationMetric::default(), DegradationMetric::Top1);
        assert_eq!(DegradationMetric::Top1.to_string(), "top-1");
        assert_eq!(DegradationMetric::TopK(5).to_string(), "top-5");
    }

    #[test]
    fn class_accuracy_mean_variants() {
        let acc = ClassAccuracy {
            top1: vec![1.0, 0.5, 0.0],
        };
        assert!((acc.mean(None) - 0.5).abs() < 1e-6);
        assert!((acc.mean(Some(&[0, 1])) - 0.75).abs() < 1e-6);
        assert_eq!(acc.mean(Some(&[])), 0.0);
    }
}
