//! Gaussian-cluster vector datasets for fast MLP-based tests.

use crate::dataset::Dataset;
use capnn_tensor::{Tensor, XorShiftRng};
use serde::{Deserialize, Serialize};

/// Configuration for [`VectorClusters`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VectorClustersConfig {
    /// Number of classes (cluster centres).
    pub classes: usize,
    /// Feature dimension.
    pub dim: usize,
    /// Distance of each centre from the origin.
    pub separation: f32,
    /// Std-dev of within-cluster noise.
    pub noise: f32,
    /// Seed for centre placement.
    pub seed: u64,
}

impl VectorClustersConfig {
    /// Well-separated default clusters.
    pub fn easy(classes: usize, dim: usize) -> Self {
        Self {
            classes,
            dim,
            separation: 3.0,
            noise: 0.5,
            seed: 0xB10B5,
        }
    }
}

/// Deterministic generator of Gaussian clusters in `R^dim`, one per class.
///
/// # Examples
///
/// ```
/// use capnn_data::{VectorClusters, VectorClustersConfig};
///
/// let gen = VectorClusters::new(VectorClustersConfig::easy(3, 4)).unwrap();
/// let ds = gen.generate(5, 1);
/// assert_eq!(ds.len(), 15);
/// ```
#[derive(Debug, Clone)]
pub struct VectorClusters {
    config: VectorClustersConfig,
    centres: Vec<Tensor>,
}

impl VectorClusters {
    /// Places the cluster centres.
    ///
    /// # Errors
    ///
    /// Returns an error string if `classes == 0` or `dim == 0`.
    pub fn new(config: VectorClustersConfig) -> Result<Self, String> {
        if config.classes == 0 || config.dim == 0 {
            return Err("classes and dim must be positive".into());
        }
        let mut rng = XorShiftRng::new(config.seed);
        let centres = (0..config.classes)
            .map(|_| {
                let dir = Tensor::randn(&[config.dim], 1.0, &mut rng);
                let norm = dir.norm_sq().sqrt().max(1e-6);
                dir.scale(config.separation / norm)
            })
            .collect();
        Ok(Self { config, centres })
    }

    /// The generator's configuration.
    pub fn config(&self) -> &VectorClustersConfig {
        &self.config
    }

    /// Draws one sample of `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn sample(&self, class: usize, rng: &mut XorShiftRng) -> Tensor {
        let noise = Tensor::randn(&[self.config.dim], self.config.noise, rng);
        self.centres[class].add(&noise).expect("same dims")
    }

    /// Generates a balanced dataset with `per_class` samples per class.
    pub fn generate(&self, per_class: usize, seed: u64) -> Dataset {
        let mut rng = XorShiftRng::new(seed);
        let mut samples = Vec::with_capacity(per_class * self.config.classes);
        for class in 0..self.config.classes {
            for _ in 0..per_class {
                samples.push((self.sample(class, &mut rng), class));
            }
        }
        Dataset::new(samples, self.config.classes).expect("labels in range by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(VectorClusters::new(VectorClustersConfig::easy(0, 4)).is_err());
        assert!(VectorClusters::new(VectorClustersConfig::easy(3, 0)).is_err());
    }

    #[test]
    fn centres_have_requested_separation() {
        let gen = VectorClusters::new(VectorClustersConfig::easy(5, 8)).unwrap();
        for c in &gen.centres {
            assert!((c.norm_sq().sqrt() - 3.0).abs() < 1e-3);
        }
    }

    #[test]
    fn balanced_and_deterministic() {
        let gen = VectorClusters::new(VectorClustersConfig::easy(4, 6)).unwrap();
        let a = gen.generate(7, 3);
        assert_eq!(a.class_counts(), vec![7; 4]);
        assert_eq!(a, gen.generate(7, 3));
    }

    #[test]
    fn samples_cluster_around_centres() {
        let gen = VectorClusters::new(VectorClustersConfig::easy(3, 4)).unwrap();
        let mut rng = XorShiftRng::new(5);
        for class in 0..3 {
            let mut mean = Tensor::zeros(&[4]);
            let n = 200;
            for _ in 0..n {
                mean.axpy_in_place(1.0 / n as f32, &gen.sample(class, &mut rng))
                    .unwrap();
            }
            let err = mean.sub(&gen.centres[class]).unwrap().norm_sq().sqrt();
            assert!(err < 0.3, "class {class} mean error {err}");
        }
    }
}
