//! Labelled dataset container with per-class views and splits.

use capnn_tensor::{Tensor, XorShiftRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A labelled dataset: samples, labels and the total class count.
///
/// # Examples
///
/// ```
/// use capnn_data::Dataset;
/// use capnn_tensor::Tensor;
///
/// let ds = Dataset::new(vec![(Tensor::zeros(&[2]), 0), (Tensor::ones(&[2]), 1)], 2).unwrap();
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.of_class(1).count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    samples: Vec<(Tensor, usize)>,
    num_classes: usize,
}

/// Error produced when constructing an inconsistent dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetError {
    message: String,
}

impl DatasetError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid dataset: {}", self.message)
    }
}

impl std::error::Error for DatasetError {}

impl Dataset {
    /// Creates a dataset, validating that every label is below
    /// `num_classes`.
    ///
    /// # Errors
    ///
    /// Returns an error if a label is out of range or `num_classes` is 0.
    pub fn new(samples: Vec<(Tensor, usize)>, num_classes: usize) -> Result<Self, DatasetError> {
        if num_classes == 0 {
            return Err(DatasetError::new("num_classes must be positive"));
        }
        if let Some((_, bad)) = samples.iter().find(|(_, l)| *l >= num_classes) {
            return Err(DatasetError::new(format!(
                "label {bad} out of range for {num_classes} classes"
            )));
        }
        Ok(Self {
            samples,
            num_classes,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total number of classes in the label space.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// All `(input, label)` pairs.
    pub fn samples(&self) -> &[(Tensor, usize)] {
        &self.samples
    }

    /// Iterator over samples of one class.
    pub fn of_class(&self, class: usize) -> impl Iterator<Item = &(Tensor, usize)> {
        self.samples.iter().filter(move |(_, l)| *l == class)
    }

    /// Number of samples per class, indexed by class id.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for (_, l) in &self.samples {
            counts[*l] += 1;
        }
        counts
    }

    /// Returns a new dataset containing only samples whose label is in
    /// `classes` (labels are preserved, not remapped).
    pub fn restrict_to(&self, classes: &[usize]) -> Dataset {
        let samples = self
            .samples
            .iter()
            .filter(|(_, l)| classes.contains(l))
            .cloned()
            .collect();
        Dataset {
            samples,
            num_classes: self.num_classes,
        }
    }

    /// Splits into `(first, second)` with `fraction` of *each class* going to
    /// the first part (deterministic, preserves order within class).
    pub fn split_per_class(&self, fraction: f32) -> (Dataset, Dataset) {
        let mut taken = vec![0usize; self.num_classes];
        let counts = self.class_counts();
        let mut first = Vec::new();
        let mut second = Vec::new();
        for (x, l) in &self.samples {
            let quota = (counts[*l] as f32 * fraction).round() as usize;
            if taken[*l] < quota {
                first.push((x.clone(), *l));
                taken[*l] += 1;
            } else {
                second.push((x.clone(), *l));
            }
        }
        (
            Dataset {
                samples: first,
                num_classes: self.num_classes,
            },
            Dataset {
                samples: second,
                num_classes: self.num_classes,
            },
        )
    }

    /// Shuffles the samples in place.
    pub fn shuffle(&mut self, rng: &mut XorShiftRng) {
        rng.shuffle(&mut self.samples);
    }

    /// Takes up to `n` samples of each class, preserving order.
    pub fn take_per_class(&self, n: usize) -> Dataset {
        let mut taken = vec![0usize; self.num_classes];
        let samples = self
            .samples
            .iter()
            .filter(|(_, l)| {
                if taken[*l] < n {
                    taken[*l] += 1;
                    true
                } else {
                    false
                }
            })
            .cloned()
            .collect();
        Dataset {
            samples,
            num_classes: self.num_classes,
        }
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Dataset({} samples, {} classes)",
            self.samples.len(),
            self.num_classes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let samples = (0..12)
            .map(|i| (Tensor::full(&[2], i as f32), i % 3))
            .collect();
        Dataset::new(samples, 3).unwrap()
    }

    #[test]
    fn validation_rejects_bad_labels() {
        assert!(Dataset::new(vec![(Tensor::zeros(&[1]), 5)], 3).is_err());
        assert!(Dataset::new(vec![], 0).is_err());
        assert!(Dataset::new(vec![], 1).is_ok());
    }

    #[test]
    fn class_counts_and_views() {
        let ds = tiny();
        assert_eq!(ds.class_counts(), vec![4, 4, 4]);
        assert_eq!(ds.of_class(2).count(), 4);
        assert!(ds.of_class(2).all(|(_, l)| *l == 2));
    }

    #[test]
    fn restrict_keeps_labels() {
        let ds = tiny();
        let r = ds.restrict_to(&[0, 2]);
        assert_eq!(r.len(), 8);
        assert_eq!(r.num_classes(), 3);
        assert!(r.samples().iter().all(|(_, l)| *l == 0 || *l == 2));
    }

    #[test]
    fn split_per_class_is_stratified() {
        let ds = tiny();
        let (a, b) = ds.split_per_class(0.5);
        assert_eq!(a.class_counts(), vec![2, 2, 2]);
        assert_eq!(b.class_counts(), vec![2, 2, 2]);
        assert_eq!(a.len() + b.len(), ds.len());
    }

    #[test]
    fn split_extreme_fractions() {
        let ds = tiny();
        let (a, b) = ds.split_per_class(0.0);
        assert!(a.is_empty());
        assert_eq!(b.len(), 12);
        let (a, b) = ds.split_per_class(1.0);
        assert_eq!(a.len(), 12);
        assert!(b.is_empty());
    }

    #[test]
    fn take_per_class_caps_counts() {
        let ds = tiny();
        let t = ds.take_per_class(1);
        assert_eq!(t.class_counts(), vec![1, 1, 1]);
        let t_all = ds.take_per_class(99);
        assert_eq!(t_all.len(), 12);
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut ds = tiny();
        let mut rng = XorShiftRng::new(1);
        ds.shuffle(&mut rng);
        assert_eq!(ds.class_counts(), vec![4, 4, 4]);
        assert_eq!(ds.len(), 12);
    }

    #[test]
    fn display_mentions_counts() {
        assert!(tiny().to_string().contains("12 samples"));
    }
}
