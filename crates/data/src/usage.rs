//! Usage-distribution presets: the per-class weights of the paper's
//! Figures 4 and 5.
//!
//! CAP'NN-W/M weigh pruning by how often the user encounters each class.
//! Figure 4 evaluates 24 configurations: for each `K ∈ {2, 3, 4, 5}`, a
//! handful of usage splits (e.g. `10%–90%` for K = 2). These presets
//! reproduce that grid; arbitrary distributions can be built with
//! [`UsageDistribution::new`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// A normalized distribution of class-usage weights for `K` classes.
///
/// # Examples
///
/// ```
/// use capnn_data::UsageDistribution;
///
/// let d = UsageDistribution::new(vec![0.1, 0.9]).unwrap();
/// assert_eq!(d.k(), 2);
/// assert!(d.is_normalized());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UsageDistribution {
    weights: Vec<f32>,
}

impl UsageDistribution {
    /// Creates a distribution, validating that weights are non-negative and
    /// sum to 1 (±1e-4).
    ///
    /// # Errors
    ///
    /// Returns an error string describing the violation.
    pub fn new(weights: Vec<f32>) -> Result<Self, String> {
        if weights.is_empty() {
            return Err("distribution must have at least one weight".into());
        }
        if weights.iter().any(|&w| w < 0.0 || !w.is_finite()) {
            return Err("weights must be finite and non-negative".into());
        }
        let sum: f32 = weights.iter().sum();
        if (sum - 1.0).abs() > 1e-4 {
            return Err(format!("weights must sum to 1, got {sum}"));
        }
        Ok(Self { weights })
    }

    /// Creates the uniform distribution over `k` classes.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn uniform(k: usize) -> Self {
        assert!(k > 0, "uniform distribution needs k > 0");
        Self {
            weights: vec![1.0 / k as f32; k],
        }
    }

    /// Creates a distribution from integer percentages (they must sum
    /// to 100).
    ///
    /// # Errors
    ///
    /// Returns an error string if the percentages do not sum to 100.
    pub fn from_percentages(pcts: &[u32]) -> Result<Self, String> {
        let sum: u32 = pcts.iter().sum();
        if sum != 100 {
            return Err(format!("percentages must sum to 100, got {sum}"));
        }
        Self::new(pcts.iter().map(|&p| p as f32 / 100.0).collect())
    }

    /// Number of classes the distribution covers.
    pub fn k(&self) -> usize {
        self.weights.len()
    }

    /// The weights.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Whether the weights sum to 1 (±1e-4). Always true for constructed
    /// values; useful as a test invariant.
    pub fn is_normalized(&self) -> bool {
        (self.weights.iter().sum::<f32>() - 1.0).abs() <= 1e-4
    }

    /// Shannon entropy in bits; uniform distributions maximize this.
    pub fn entropy_bits(&self) -> f32 {
        self.weights
            .iter()
            .filter(|&&w| w > 0.0)
            .map(|&w| -w * w.log2())
            .sum()
    }
}

impl fmt::Display for UsageDistribution {
    /// Formats as `"10%-90%"`-style percentage strings.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, w) in self.weights.iter().enumerate() {
            if i > 0 {
                write!(f, "-")?;
            }
            write!(f, "{:.0}%", w * 100.0)?;
        }
        Ok(())
    }
}

/// One experiment cell of the paper's Figures 4/5: a class-count `K` and a
/// usage distribution over those classes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UsageScenario {
    /// Number of user-specified classes.
    pub k: usize,
    /// Usage distribution (length `k`).
    pub distribution: UsageDistribution,
}

impl UsageScenario {
    /// Creates a scenario, validating the distribution length.
    ///
    /// # Errors
    ///
    /// Returns an error string if `distribution.k() != k`.
    pub fn new(k: usize, distribution: UsageDistribution) -> Result<Self, String> {
        if distribution.k() != k {
            return Err(format!(
                "distribution covers {} classes, expected {k}",
                distribution.k()
            ));
        }
        Ok(Self { k, distribution })
    }
}

impl fmt::Display for UsageScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "K={} ({})", self.k, self.distribution)
    }
}

/// The 24 `(K, usage)` configurations of the paper's Figures 4 and 5:
/// `K ∈ {2, 3, 4, 5}` each with several usage splits.
pub fn paper_fig4_scenarios() -> Vec<UsageScenario> {
    let grid: Vec<Vec<u32>> = vec![
        // K = 2 (5 splits)
        vec![10, 90],
        vec![20, 80],
        vec![30, 70],
        vec![40, 60],
        vec![50, 50],
        // K = 3 (6 splits)
        vec![10, 10, 80],
        vec![10, 20, 70],
        vec![10, 30, 60],
        vec![20, 20, 60],
        vec![20, 30, 50],
        vec![34, 33, 33],
        // K = 4 (6 splits)
        vec![10, 10, 10, 70],
        vec![10, 10, 20, 60],
        vec![10, 20, 30, 40],
        vec![10, 10, 40, 40],
        vec![20, 20, 30, 30],
        vec![25, 25, 25, 25],
        // K = 5 (7 splits)
        vec![10, 10, 10, 10, 60],
        vec![10, 10, 10, 20, 50],
        vec![10, 10, 20, 20, 40],
        vec![10, 20, 20, 20, 30],
        vec![10, 10, 20, 30, 30],
        vec![20, 20, 20, 20, 20],
        vec![5, 5, 10, 30, 50],
    ];
    grid.into_iter()
        .map(|pcts| {
            let k = pcts.len();
            UsageScenario::new(
                k,
                UsageDistribution::from_percentages(&pcts).expect("preset sums to 100"),
            )
            .expect("preset lengths are consistent")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_weights() {
        assert!(UsageDistribution::new(vec![]).is_err());
        assert!(UsageDistribution::new(vec![0.5, 0.6]).is_err());
        assert!(UsageDistribution::new(vec![-0.1, 1.1]).is_err());
        assert!(UsageDistribution::new(vec![f32::NAN, 1.0]).is_err());
        assert!(UsageDistribution::new(vec![0.25; 4]).is_ok());
    }

    #[test]
    fn uniform_properties() {
        let u = UsageDistribution::uniform(4);
        assert!(u.is_normalized());
        assert_eq!(u.k(), 4);
        assert!((u.entropy_bits() - 2.0).abs() < 1e-5);
    }

    #[test]
    fn skewed_has_lower_entropy_than_uniform() {
        let skew = UsageDistribution::from_percentages(&[10, 90]).unwrap();
        let uni = UsageDistribution::uniform(2);
        assert!(skew.entropy_bits() < uni.entropy_bits());
    }

    #[test]
    fn from_percentages_requires_sum_100() {
        assert!(UsageDistribution::from_percentages(&[50, 49]).is_err());
        let d = UsageDistribution::from_percentages(&[10, 90]).unwrap();
        assert_eq!(d.weights(), &[0.1, 0.9]);
    }

    #[test]
    fn scenario_length_validated() {
        let d = UsageDistribution::uniform(3);
        assert!(UsageScenario::new(2, d.clone()).is_err());
        assert!(UsageScenario::new(3, d).is_ok());
    }

    #[test]
    fn paper_grid_has_24_valid_scenarios() {
        let all = paper_fig4_scenarios();
        assert_eq!(all.len(), 24);
        for s in &all {
            assert!(s.distribution.is_normalized(), "{s}");
            assert_eq!(s.distribution.k(), s.k);
            assert!((2..=5).contains(&s.k));
        }
        // counts per K
        for (k, expected) in [(2usize, 5usize), (3, 6), (4, 6), (5, 7)] {
            assert_eq!(all.iter().filter(|s| s.k == k).count(), expected);
        }
    }

    #[test]
    fn display_formats() {
        let d = UsageDistribution::from_percentages(&[10, 90]).unwrap();
        assert_eq!(d.to_string(), "10%-90%");
        let s = UsageScenario::new(2, d).unwrap();
        assert_eq!(s.to_string(), "K=2 (10%-90%)");
    }

    #[test]
    #[should_panic(expected = "k > 0")]
    fn uniform_zero_panics() {
        UsageDistribution::uniform(0);
    }
}
