//! Synthetic class-clustered image generator.
//!
//! CAP'NN's algorithms require a trained CNN whose hidden units have *class
//! structure*: some units fire mostly for one class, some for a family of
//! related classes, some for everything. This generator produces exactly
//! that kind of data without any external dataset:
//!
//! * classes are grouped into **families**; each family has a smooth random
//!   base pattern,
//! * each class adds its own perturbation pattern on top of the family base,
//! * samples add Gaussian pixel noise and a random global gain.
//!
//! Classes within a family are visually similar and therefore *confusable* —
//! which is what gives CAP'NN-M's miseffectual-neuron mechanism something to
//! find (the paper's confusing classes on ImageNet: dog breeds, etc.).

use crate::dataset::Dataset;
use capnn_tensor::{Tensor, XorShiftRng};
use serde::{Deserialize, Serialize};

/// Configuration for [`SyntheticImages`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticImagesConfig {
    /// Total number of classes.
    pub classes: usize,
    /// Number of class families (≤ classes); classes in a family confuse.
    pub families: usize,
    /// Square image side length.
    pub image_size: usize,
    /// Number of channels (1 = grayscale).
    pub channels: usize,
    /// Std-dev of additive pixel noise.
    pub noise: f32,
    /// Strength of the class-specific perturbation relative to the family
    /// base (0 = classes in a family are indistinguishable).
    pub class_contrast: f32,
    /// RNG seed for prototype generation.
    pub seed: u64,
}

impl SyntheticImagesConfig {
    /// A sensible default: classes in families of 4, 16×16 grayscale.
    pub fn small(classes: usize) -> Self {
        Self {
            classes,
            families: (classes / 4).max(1),
            image_size: 16,
            channels: 1,
            noise: 0.25,
            class_contrast: 0.55,
            seed: 0xC1A55,
        }
    }

    /// A CIFAR-10-like preset: 10 classes in 5 families, 32×32 RGB — the
    /// substrate for the paper's Table III comparison (which retrains VGG-16
    /// on CIFAR-10).
    pub fn cifar_like() -> Self {
        Self {
            classes: 10,
            families: 5,
            image_size: 32,
            channels: 3,
            noise: 0.35,
            class_contrast: 0.5,
            seed: 0xC1FA2,
        }
    }
}

/// Deterministic generator of class-clustered images.
///
/// # Examples
///
/// ```
/// use capnn_data::{SyntheticImages, SyntheticImagesConfig};
///
/// let gen = SyntheticImages::new(SyntheticImagesConfig::small(8)).unwrap();
/// let ds = gen.generate(10, 42);
/// assert_eq!(ds.len(), 80);
/// assert_eq!(ds.num_classes(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticImages {
    config: SyntheticImagesConfig,
    /// Per-class prototype images (CHW).
    prototypes: Vec<Tensor>,
    /// Family id per class.
    family_of: Vec<usize>,
}

impl SyntheticImages {
    /// Builds the per-class prototypes.
    ///
    /// # Errors
    ///
    /// Returns an error string if the configuration is degenerate
    /// (`classes == 0`, `families == 0`, `families > classes`, zero-sized
    /// images).
    pub fn new(config: SyntheticImagesConfig) -> Result<Self, String> {
        if config.classes == 0 {
            return Err("classes must be positive".into());
        }
        if config.families == 0 || config.families > config.classes {
            return Err(format!(
                "families must be in 1..={}, got {}",
                config.classes, config.families
            ));
        }
        if config.image_size == 0 || config.channels == 0 {
            return Err("image dimensions must be positive".into());
        }
        let mut rng = XorShiftRng::new(config.seed);
        let dims = [config.channels, config.image_size, config.image_size];
        // Family bases: smooth low-frequency patterns.
        let bases: Vec<Tensor> = (0..config.families)
            .map(|_| smooth_pattern(&dims, &mut rng))
            .collect();
        let mut prototypes = Vec::with_capacity(config.classes);
        let mut family_of = Vec::with_capacity(config.classes);
        for class in 0..config.classes {
            let family = class % config.families;
            family_of.push(family);
            let perturbation = smooth_pattern(&dims, &mut rng);
            let proto = bases[family]
                .add(&perturbation.scale(config.class_contrast))
                .expect("same dims");
            prototypes.push(proto);
        }
        Ok(Self {
            config,
            prototypes,
            family_of,
        })
    }

    /// The generator's configuration.
    pub fn config(&self) -> &SyntheticImagesConfig {
        &self.config
    }

    /// The family id of each class.
    pub fn family_of(&self) -> &[usize] {
        &self.family_of
    }

    /// Classes sharing a family with `class` (excluding `class` itself) —
    /// the ground-truth confusable set, useful for validating confusion
    /// matrices in tests.
    pub fn confusable_with(&self, class: usize) -> Vec<usize> {
        let fam = self.family_of[class];
        (0..self.config.classes)
            .filter(|&c| c != class && self.family_of[c] == fam)
            .collect()
    }

    /// Input shape of generated samples.
    pub fn input_dims(&self) -> [usize; 3] {
        [
            self.config.channels,
            self.config.image_size,
            self.config.image_size,
        ]
    }

    /// Draws one sample of `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn sample(&self, class: usize, rng: &mut XorShiftRng) -> Tensor {
        let proto = &self.prototypes[class];
        let gain = 1.0 + 0.15 * rng.next_gaussian();
        let mut out = proto.scale(gain);
        for v in out.as_mut_slice() {
            *v += self.config.noise * rng.next_gaussian();
        }
        out
    }

    /// Generates a balanced dataset with `per_class` samples per class.
    pub fn generate(&self, per_class: usize, seed: u64) -> Dataset {
        let mut rng = XorShiftRng::new(seed);
        let mut samples = Vec::with_capacity(per_class * self.config.classes);
        for class in 0..self.config.classes {
            for _ in 0..per_class {
                samples.push((self.sample(class, &mut rng), class));
            }
        }
        Dataset::new(samples, self.config.classes).expect("labels in range by construction")
    }

    /// Generates a class-imbalanced dataset: `counts[c]` samples of class
    /// `c` — the shape of a user's *observed* stream (heavy head classes,
    /// long tail), used to exercise monitoring-period logic.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != classes`.
    pub fn generate_imbalanced(&self, counts: &[usize], seed: u64) -> Dataset {
        assert_eq!(
            counts.len(),
            self.config.classes,
            "one count per class required"
        );
        let mut rng = XorShiftRng::new(seed);
        let mut samples = Vec::with_capacity(counts.iter().sum());
        for (class, &n) in counts.iter().enumerate() {
            for _ in 0..n {
                samples.push((self.sample(class, &mut rng), class));
            }
        }
        Dataset::new(samples, self.config.classes).expect("labels in range by construction")
    }

    /// Draws a stream of samples following a usage distribution over
    /// `classes` — what the device actually sees during its monitoring
    /// period. Returns `(input, true class)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `classes` and `weights` differ in length, weights are not
    /// positive, or a class id is out of range.
    pub fn usage_stream(
        &self,
        classes: &[usize],
        weights: &[f32],
        n: usize,
        rng: &mut XorShiftRng,
    ) -> Vec<(Tensor, usize)> {
        assert_eq!(classes.len(), weights.len(), "classes/weights mismatch");
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        let total: f32 = weights.iter().sum();
        (0..n)
            .map(|_| {
                let mut pick = rng.next_uniform() * total;
                let mut chosen = classes[classes.len() - 1];
                for (&c, &w) in classes.iter().zip(weights) {
                    if pick < w {
                        chosen = c;
                        break;
                    }
                    pick -= w;
                }
                (self.sample(chosen, rng), chosen)
            })
            .collect()
    }
}

/// A smooth random pattern: a few random Gaussian bumps superimposed.
fn smooth_pattern(dims: &[usize; 3], rng: &mut XorShiftRng) -> Tensor {
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    let mut t = Tensor::zeros(dims);
    let n_bumps = 4 + rng.next_below(4);
    let tv = t.as_mut_slice();
    for _ in 0..n_bumps {
        let cy = rng.next_uniform() * h as f32;
        let cx = rng.next_uniform() * w as f32;
        let sigma = 1.5 + rng.next_uniform() * (h as f32 / 3.0);
        let amp = if rng.next_uniform() < 0.5 { 1.0 } else { -1.0 } * (0.5 + rng.next_uniform());
        let ch = rng.next_below(c);
        for y in 0..h {
            for x in 0..w {
                let d2 = (y as f32 - cy).powi(2) + (x as f32 - cx).powi(2);
                tv[(ch * h + y) * w + x] += amp * (-d2 / (2.0 * sigma * sigma)).exp();
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        let mut cfg = SyntheticImagesConfig::small(8);
        cfg.classes = 0;
        assert!(SyntheticImages::new(cfg).is_err());
        let mut cfg = SyntheticImagesConfig::small(8);
        cfg.families = 9;
        assert!(SyntheticImages::new(cfg).is_err());
        let mut cfg = SyntheticImagesConfig::small(8);
        cfg.image_size = 0;
        assert!(SyntheticImages::new(cfg).is_err());
    }

    #[test]
    fn generation_is_deterministic() {
        let gen = SyntheticImages::new(SyntheticImagesConfig::small(4)).unwrap();
        let a = gen.generate(3, 7);
        let b = gen.generate(3, 7);
        assert_eq!(a, b);
        let c = gen.generate(3, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn dataset_is_balanced_with_correct_dims() {
        let gen = SyntheticImages::new(SyntheticImagesConfig::small(6)).unwrap();
        let ds = gen.generate(5, 1);
        assert_eq!(ds.class_counts(), vec![5; 6]);
        let dims = gen.input_dims();
        assert!(ds.samples().iter().all(|(x, _)| x.dims() == dims));
    }

    #[test]
    fn same_family_prototypes_are_closer() {
        let gen = SyntheticImages::new(SyntheticImagesConfig::small(8)).unwrap();
        // classes 0 and families (0 % f) share a family with 0 + families
        let fam = gen.family_of().to_vec();
        let d = |a: usize, b: usize| gen.prototypes[a].sub(&gen.prototypes[b]).unwrap().norm_sq();
        let mut same_fam = Vec::new();
        let mut diff_fam = Vec::new();
        for a in 0..8 {
            for b in (a + 1)..8 {
                if fam[a] == fam[b] {
                    same_fam.push(d(a, b));
                } else {
                    diff_fam.push(d(a, b));
                }
            }
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len().max(1) as f32;
        assert!(
            mean(&same_fam) < mean(&diff_fam),
            "same-family {} vs diff-family {}",
            mean(&same_fam),
            mean(&diff_fam)
        );
    }

    #[test]
    fn confusable_with_excludes_self_and_matches_family() {
        let gen = SyntheticImages::new(SyntheticImagesConfig::small(8)).unwrap();
        let conf = gen.confusable_with(0);
        assert!(!conf.contains(&0));
        let fam0 = gen.family_of()[0];
        assert!(conf.iter().all(|&c| gen.family_of()[c] == fam0));
    }

    #[test]
    fn cifar_like_preset_shape() {
        let gen = SyntheticImages::new(SyntheticImagesConfig::cifar_like()).unwrap();
        assert_eq!(gen.input_dims(), [3, 32, 32]);
        let ds = gen.generate(2, 1);
        assert_eq!(ds.num_classes(), 10);
        assert_eq!(ds.len(), 20);
    }

    #[test]
    fn imbalanced_generation_honours_counts() {
        let gen = SyntheticImages::new(SyntheticImagesConfig::small(4)).unwrap();
        let ds = gen.generate_imbalanced(&[5, 0, 2, 1], 3);
        assert_eq!(ds.class_counts(), vec![5, 0, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "one count per class")]
    fn imbalanced_wrong_len_panics() {
        let gen = SyntheticImages::new(SyntheticImagesConfig::small(4)).unwrap();
        gen.generate_imbalanced(&[1, 2], 3);
    }

    #[test]
    fn usage_stream_follows_distribution() {
        let gen = SyntheticImages::new(SyntheticImagesConfig::small(4)).unwrap();
        let mut rng = XorShiftRng::new(5);
        let stream = gen.usage_stream(&[0, 2], &[0.75, 0.25], 400, &mut rng);
        assert_eq!(stream.len(), 400);
        let zero = stream.iter().filter(|(_, c)| *c == 0).count() as f32 / 400.0;
        assert!((zero - 0.75).abs() < 0.08, "class-0 fraction {zero}");
        assert!(stream.iter().all(|(_, c)| *c == 0 || *c == 2));
    }

    #[test]
    fn noise_makes_samples_differ() {
        let gen = SyntheticImages::new(SyntheticImagesConfig::small(4)).unwrap();
        let mut rng = XorShiftRng::new(1);
        let a = gen.sample(0, &mut rng);
        let b = gen.sample(0, &mut rng);
        assert_ne!(a.as_slice(), b.as_slice());
    }
}
