//! Synthetic class-structured datasets and user-profile material for the
//! CAP'NN reproduction.
//!
//! The paper's experiments run on ImageNet-trained VGG-16; this crate is the
//! offline substitute (see DESIGN.md): a deterministic, family-structured
//! image generator whose classes confuse each other the way related ImageNet
//! classes do, a fast Gaussian-cluster generator for MLP tests, a labelled
//! [`Dataset`] container, and the usage-distribution grid of the paper's
//! Figures 4/5.
//!
//! # Examples
//!
//! ```
//! use capnn_data::{SyntheticImages, SyntheticImagesConfig};
//!
//! let gen = SyntheticImages::new(SyntheticImagesConfig::small(8))?;
//! let train = gen.generate(20, 1);
//! let eval = gen.generate(8, 2);
//! assert_eq!(train.num_classes(), eval.num_classes());
//! # Ok::<(), String>(())
//! ```

mod dataset;
mod images;
mod usage;
mod vectors;

pub use dataset::{Dataset, DatasetError};
pub use images::{SyntheticImages, SyntheticImagesConfig};
pub use usage::{paper_fig4_scenarios, UsageDistribution, UsageScenario};
pub use vectors::{VectorClusters, VectorClustersConfig};
