//! Property tests for the data crate: generators must be deterministic,
//! balanced, and class-structured for arbitrary small configurations.

use capnn_data::{
    Dataset, SyntheticImages, SyntheticImagesConfig, UsageDistribution, VectorClusters,
    VectorClustersConfig,
};
use capnn_tensor::Tensor;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn image_generation_balanced_and_deterministic(
        classes in 2usize..8, per_class in 1usize..5, seed in any::<u64>()
    ) {
        let mut cfg = SyntheticImagesConfig::small(classes);
        cfg.image_size = 8;
        let gen = SyntheticImages::new(cfg).expect("config");
        let a = gen.generate(per_class, seed);
        let b = gen.generate(per_class, seed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.class_counts(), vec![per_class; classes]);
        prop_assert!(a.samples().iter().all(|(x, _)| x.dims() == gen.input_dims()));
    }

    #[test]
    fn families_partition_classes(classes in 2usize..10) {
        let cfg = SyntheticImagesConfig::small(classes);
        let gen = SyntheticImages::new(cfg).expect("config");
        for class in 0..classes {
            let confusable = gen.confusable_with(class);
            prop_assert!(!confusable.contains(&class));
            // symmetric: if a confuses with b, b confuses with a
            for &other in &confusable {
                prop_assert!(gen.confusable_with(other).contains(&class));
            }
        }
    }

    #[test]
    fn vector_clusters_respect_configuration(
        classes in 2usize..6, dim in 2usize..8, seed in any::<u64>()
    ) {
        let gen = VectorClusters::new(VectorClustersConfig {
            classes,
            dim,
            separation: 3.0,
            noise: 0.2,
            seed,
        })
        .expect("gen");
        let ds = gen.generate(3, seed ^ 1);
        prop_assert_eq!(ds.num_classes(), classes);
        prop_assert!(ds.samples().iter().all(|(x, _)| x.len() == dim));
    }

    #[test]
    fn split_per_class_partitions(fraction in 0.0f32..1.0, per_class in 1usize..8) {
        let samples = (0..per_class * 3)
            .map(|i| (Tensor::full(&[2], i as f32), i % 3))
            .collect();
        let ds = Dataset::new(samples, 3).expect("dataset");
        let (a, b) = ds.split_per_class(fraction);
        prop_assert_eq!(a.len() + b.len(), ds.len());
        // per-class counts are preserved across the split
        let ca = a.class_counts();
        let cb = b.class_counts();
        let co = ds.class_counts();
        for cls in 0..3 {
            prop_assert_eq!(ca[cls] + cb[cls], co[cls]);
        }
    }

    #[test]
    fn usage_distribution_normalization_invariant(k in 1usize..8) {
        let u = UsageDistribution::uniform(k);
        prop_assert!(u.is_normalized());
        prop_assert!(u.entropy_bits() <= (k as f32).log2() + 1e-5);
        // entropy of uniform is exactly log2(k)
        prop_assert!((u.entropy_bits() - (k as f32).log2()).abs() < 1e-5);
    }

    #[test]
    fn restrict_then_counts_consistent(keep in prop::collection::btree_set(0usize..4, 1..4)) {
        let samples = (0..20).map(|i| (Tensor::zeros(&[1]), i % 4)).collect();
        let ds = Dataset::new(samples, 4).expect("dataset");
        let keep: Vec<usize> = keep.into_iter().collect();
        let r = ds.restrict_to(&keep);
        let counts = r.class_counts();
        for (c, &count) in counts.iter().enumerate() {
            if keep.contains(&c) {
                prop_assert_eq!(count, 5);
            } else {
                prop_assert_eq!(count, 0);
            }
        }
    }
}
