//! Property-based equivalence of compiled execution plans against the
//! masked reference engine: for *any* well-formed topology, mask (all-kept,
//! heavily pruned, single-unit and even fully-pruned layers) and batch
//! size, `CompiledPlan::forward`/`forward_batch` must agree with
//! `forward_masked_reference` — elementwise, hence argmax-bit-compatibly.
use capnn_nn::{
    model_size, plan_from_json, plan_to_json, Engine, InferenceRequest, Network, NetworkBuilder,
    PanelPool, Precision, PruneMask,
};
use capnn_tensor::{Conv2dSpec, Tensor, XorShiftRng};
use proptest::prelude::*;

/// A small random-topology description proptest can shrink.
#[derive(Debug, Clone)]
struct Topology {
    conv_channels: Vec<usize>,
    dense_widths: Vec<usize>,
    classes: usize,
    image: usize,
    seed: u64,
}

fn topology() -> impl Strategy<Value = Topology> {
    (
        prop::collection::vec(2usize..6, 0..3),
        prop::collection::vec(4usize..12, 1..3),
        2usize..5,
        prop::sample::select(vec![8usize, 16]),
        any::<u64>(),
    )
        .prop_map(
            |(conv_channels, dense_widths, classes, image, seed)| Topology {
                conv_channels,
                dense_widths,
                classes,
                image,
                seed,
            },
        )
}

fn build(t: &Topology) -> Network {
    if t.conv_channels.is_empty() {
        let mut widths = vec![t.image]; // treat image as a flat input width
        widths.extend(&t.dense_widths);
        widths.push(t.classes);
        NetworkBuilder::mlp(&widths, t.seed)
            .build()
            .expect("mlp builds")
    } else {
        let blocks: Vec<(usize, usize)> = t.conv_channels.iter().map(|&c| (c, 1)).collect();
        NetworkBuilder::cnn(
            &[1, t.image, t.image],
            &blocks,
            &t.dense_widths,
            t.classes,
            t.seed,
        )
        .build()
        .expect("cnn builds")
    }
}

fn input_for(net: &Network, rng: &mut XorShiftRng) -> Tensor {
    Tensor::uniform(net.input_dims(), -1.0, 1.0, rng)
}

/// Plain dense forward through the unified engine.
fn dense_forward(net: &Network, x: &Tensor) -> Tensor {
    Engine::new(net)
        .run(InferenceRequest::single(x))
        .expect("dense forward")
        .into_single()
        .expect("single output")
}

/// A random mask over *every* prunable layer (output included). Per layer
/// the style varies: untouched, ~35% pruned, pruned down to a single unit,
/// or — when `allow_empty` — fully pruned (a degenerate case the plan must
/// still serve; `compact` cannot).
fn random_mask(net: &Network, rng: &mut XorShiftRng, allow_empty: bool) -> PruneMask {
    let mut mask = PruneMask::all_kept(net);
    for &li in &net.prunable_layers() {
        let units = net.layers()[li].unit_count().unwrap_or(0);
        let style = rng.next_uniform();
        if style < 0.2 {
            continue; // all kept
        } else if style < 0.7 {
            for u in 0..units {
                if rng.next_uniform() < 0.35 && mask.kept_in_layer(li) > 1 {
                    mask.prune(li, u).expect("in range");
                }
            }
        } else if style < 0.9 || !allow_empty {
            // single-unit layer: keep exactly one random unit
            let keep = (rng.next_uniform() * units as f32) as usize % units.max(1);
            let flags: Vec<bool> = (0..units).map(|u| u == keep).collect();
            mask.set_layer(li, flags).expect("prunable");
        } else {
            mask.set_layer(li, vec![false; units]).expect("prunable");
        }
    }
    mask
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn plan_forward_matches_reference_elementwise(t in topology()) {
        let net = build(&t);
        let mut rng = XorShiftRng::new(t.seed ^ 0x91A7);
        let mask = random_mask(&net, &mut rng, true);
        let plan = net.compile(&mask).expect("compiles");
        for _ in 0..3 {
            let x = input_for(&net, &mut rng);
            let reference = net
                .forward_masked_reference_from(0, &x, &mask)
                .expect("reference");
            let planned = plan.forward(&x).expect("plan");
            prop_assert_eq!(planned.dims(), reference.dims());
            prop_assert_eq!(planned.as_slice(), reference.as_slice());
            // value equality implies the serving guarantee: bit-compatible argmax
            prop_assert_eq!(planned.argmax(), reference.argmax());
        }
    }

    #[test]
    fn all_kept_plan_matches_plain_forward(t in topology()) {
        let net = build(&t);
        let mut rng = XorShiftRng::new(t.seed ^ 0x2B2B);
        let plan = net.compile(&PruneMask::all_kept(&net)).expect("compiles");
        let x = input_for(&net, &mut rng);
        let plain = dense_forward(&net, &x);
        let planned = plan.forward(&x).expect("plan");
        prop_assert_eq!(planned.as_slice(), plain.as_slice());
    }

    #[test]
    fn forward_batch_matches_per_sample(t in topology(), batch in 1usize..8) {
        let net = build(&t);
        let mut rng = XorShiftRng::new(t.seed ^ 0xBA7C);
        let mask = random_mask(&net, &mut rng, true);
        let plan = net.compile(&mask).expect("compiles");
        let inputs: Vec<Tensor> = (0..batch).map(|_| input_for(&net, &mut rng)).collect();
        let batched = plan.forward_batch(&inputs).expect("batch");
        prop_assert_eq!(batched.len(), batch);
        for (x, out) in inputs.iter().zip(&batched) {
            let single = plan.forward(x).expect("single");
            prop_assert_eq!(single.as_slice(), out.as_slice());
            let reference = net
                .forward_masked_reference_from(0, x, &mask)
                .expect("reference");
            prop_assert_eq!(out.argmax(), reference.argmax());
        }
    }

    /// Plans whose conv steps run the panel-packed GEMM (with the ReLU
    /// fused into the kernel epilogue) stay elementwise- and
    /// argmax-bit-compatible with the reference engine across kernel
    /// sizes, strides and paddings the stock `cnn` builder never emits.
    #[test]
    fn strided_conv_plan_matches_reference(
        c1 in 2usize..5,
        kernel in prop::sample::select(vec![1usize, 3]),
        stride in 1usize..3,
        padding in 0usize..2,
        batch in 1usize..5,
        seed in any::<u64>(),
    ) {
        let image = 9usize;
        let mut rng = XorShiftRng::new(seed);
        let (oh, ow) = Conv2dSpec::new(1, c1, kernel, stride, padding).output_hw(image, image);
        let net = NetworkBuilder::new(&[1, image, image])
            .conv(1, c1, kernel, stride, padding, &mut rng)
            .relu()
            .flatten()
            .dense(c1 * oh * ow, 3, &mut rng)
            .build()
            .expect("builds");
        let mut mrng = XorShiftRng::new(seed ^ 0xC0FE);
        let mask = random_mask(&net, &mut mrng, true);
        let plan = net.compile(&mask).expect("compiles");
        let inputs: Vec<Tensor> = (0..batch).map(|_| input_for(&net, &mut mrng)).collect();
        let outs = plan.forward_batch(&inputs).expect("batch");
        for (x, out) in inputs.iter().zip(&outs) {
            let reference = net
                .forward_masked_reference_from(0, x, &mask)
                .expect("reference");
            prop_assert_eq!(out.as_slice(), reference.as_slice());
            prop_assert_eq!(out.argmax(), reference.argmax());
        }
    }

    #[test]
    fn packed_size_matches_size_accounting(t in topology()) {
        let net = build(&t);
        let mut rng = XorShiftRng::new(t.seed ^ 0x517E);
        let mask = random_mask(&net, &mut rng, false);
        let plan = net.compile(&mask).expect("compiles");
        let predicted = model_size(&net, &mask).expect("size").total();
        prop_assert_eq!(plan.packed_param_count(), predicted);
    }

    #[test]
    fn plan_json_roundtrip_preserves_outputs(t in topology()) {
        let net = build(&t);
        let mut rng = XorShiftRng::new(t.seed ^ 0x70_50);
        let mask = random_mask(&net, &mut rng, true);
        let plan = net.compile(&mask).expect("compiles");
        let back = plan_from_json(&plan_to_json(&plan).expect("ser")).expect("de");
        prop_assert_eq!(&plan, &back);
        let x = input_for(&net, &mut rng);
        prop_assert_eq!(
            plan.forward(&x).expect("plan").as_slice(),
            back.forward(&x).expect("back").as_slice()
        );
    }

    /// Int8 plans keep the *batch invariance* contract bitwise for every
    /// topology and mask — i32 accumulation is exact and activation scales
    /// are per-sample, so batching cannot perturb a single sample's output.
    #[test]
    fn int8_forward_batch_matches_per_sample_bitwise(t in topology(), batch in 1usize..8) {
        let net = build(&t);
        let mut rng = XorShiftRng::new(t.seed ^ 0x18A8);
        let mask = random_mask(&net, &mut rng, true);
        let plan = net
            .compile_with_precision(&mask, Precision::Int8)
            .expect("compiles");
        let inputs: Vec<Tensor> = (0..batch).map(|_| input_for(&net, &mut rng)).collect();
        let batched = plan.forward_batch(&inputs).expect("batch");
        for (x, out) in inputs.iter().zip(&batched) {
            let single = plan.forward(x).expect("single");
            prop_assert_eq!(single.as_slice(), out.as_slice());
        }
    }

    /// Int8 plans stay numerically close to their f32 twin: pruned output
    /// classes stay exact zeros and logits drift only within the
    /// quantization grid's reach.
    #[test]
    fn int8_plan_tracks_f32_plan(t in topology()) {
        let net = build(&t);
        let mut rng = XorShiftRng::new(t.seed ^ 0x5CA1);
        let mask = random_mask(&net, &mut rng, true);
        let f32_plan = net.compile(&mask).expect("compiles f32");
        let int8_plan = net
            .compile_with_precision(&mask, Precision::Int8)
            .expect("compiles int8");
        let x = input_for(&net, &mut rng);
        let yf = f32_plan.forward(&x).expect("f32");
        let yq = int8_plan.forward(&x).expect("int8");
        prop_assert_eq!(yf.dims(), yq.dims());
        let scale = yf.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        for (i, (&a, &b)) in yf.as_slice().iter().zip(yq.as_slice()).enumerate() {
            prop_assert!(
                (a - b).abs() <= 0.3 * scale + 2e-2,
                "logit {i} drift {a} vs {b} (scale {scale})"
            );
        }
    }

    /// Panel sharing is an allocation property, never a numeric one: a
    /// plan compiled through a [`PanelPool`] — after the pool already
    /// interned kernels for *other* random masks — is bitwise identical
    /// to a fresh unpooled compile, at both precisions.
    #[test]
    fn pooled_compile_is_bitwise_identical_to_fresh(t in topology()) {
        let net = build(&t);
        let mut rng = XorShiftRng::new(t.seed ^ 0x9001);
        let pool = PanelPool::new();
        // populate the pool with kernels from unrelated masks
        let warm: Vec<_> = (0..2)
            .map(|_| {
                let m = random_mask(&net, &mut rng, true);
                net.compile_shared(&m, Precision::F32, &pool).expect("warm")
            })
            .collect();
        let mask = random_mask(&net, &mut rng, true);
        for precision in [Precision::F32, Precision::Int8] {
            let fresh = net
                .compile_with_precision(&mask, precision)
                .expect("fresh");
            let pooled = net
                .compile_shared(&mask, precision, &pool)
                .expect("pooled");
            prop_assert_eq!(&fresh, &pooled);
            for _ in 0..2 {
                let x = input_for(&net, &mut rng);
                prop_assert_eq!(
                    fresh.forward(&x).expect("fresh fwd").as_slice(),
                    pooled.forward(&x).expect("pooled fwd").as_slice()
                );
            }
        }
        drop(warm);
    }

    /// The fleet cache's canonical-plan substitution contract, at the
    /// mask level: a profile whose canonicalization lands on an *equal*
    /// mask (the default, slack-free clustering rule) is served by the
    /// canonical plan — compiled earlier, through a pool, from a
    /// different `PruneMask` value — and the outputs it sees are bitwise
    /// identical (hence argmax-bit-compatible) to a per-user fresh
    /// compile, across random masks, prune ratios and both precisions.
    #[test]
    fn canonical_plan_substitution_is_argmax_bit_compatible(
        t in topology(),
        batch in 1usize..5,
    ) {
        let net = build(&t);
        let mut rng = XorShiftRng::new(t.seed ^ 0xCA40);
        let pool = PanelPool::new();
        let user_mask = random_mask(&net, &mut rng, true);
        // the canonical mask arrives as a distinct but equal value (the
        // cache interns by mask equality, not identity)
        let canonical_mask = user_mask.clone();
        for precision in [Precision::F32, Precision::Int8] {
            let canonical = net
                .compile_shared(&canonical_mask, precision, &pool)
                .expect("canonical");
            let per_user = net
                .compile_with_precision(&user_mask, precision)
                .expect("per-user");
            let inputs: Vec<Tensor> =
                (0..batch).map(|_| input_for(&net, &mut rng)).collect();
            let subst = canonical.forward_batch(&inputs).expect("canonical fwd");
            let own = per_user.forward_batch(&inputs).expect("per-user fwd");
            for (a, b) in subst.iter().zip(&own) {
                prop_assert_eq!(a.as_slice(), b.as_slice());
                prop_assert_eq!(a.argmax(), b.argmax());
            }
        }
    }

    /// Int8 plans round-trip the versioned envelope with their quantized
    /// panels intact: the decoded plan reproduces outputs bitwise.
    #[test]
    fn int8_plan_json_roundtrip_preserves_outputs(t in topology()) {
        let net = build(&t);
        let mut rng = XorShiftRng::new(t.seed ^ 0x0DEC);
        let mask = random_mask(&net, &mut rng, true);
        let plan = net
            .compile_with_precision(&mask, Precision::Int8)
            .expect("compiles");
        let back = plan_from_json(&plan_to_json(&plan).expect("ser")).expect("de");
        prop_assert_eq!(&plan, &back);
        let x = input_for(&net, &mut rng);
        prop_assert_eq!(
            plan.forward(&x).expect("plan").as_slice(),
            back.forward(&x).expect("back").as_slice()
        );
    }
}
