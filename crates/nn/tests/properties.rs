//! Property-based tests over randomized network topologies: masking,
//! compaction, size accounting and serialization must agree for *any*
//! well-formed CNN/MLP, not just the shapes the unit tests pick.

use capnn_nn::{
    model_size, network_from_json, network_to_json, Engine, InferenceRequest, Network,
    NetworkBuilder, PruneMask,
};
use capnn_tensor::{Tensor, XorShiftRng};
use proptest::prelude::*;

/// A small random-topology description proptest can shrink.
#[derive(Debug, Clone)]
struct Topology {
    conv_channels: Vec<usize>,
    dense_widths: Vec<usize>,
    classes: usize,
    image: usize,
    seed: u64,
}

fn topology() -> impl Strategy<Value = Topology> {
    (
        prop::collection::vec(2usize..6, 0..3),
        prop::collection::vec(4usize..12, 1..3),
        2usize..5,
        prop::sample::select(vec![8usize, 16]),
        any::<u64>(),
    )
        .prop_map(
            |(conv_channels, dense_widths, classes, image, seed)| Topology {
                conv_channels,
                dense_widths,
                classes,
                image,
                seed,
            },
        )
}

fn build(t: &Topology) -> Network {
    if t.conv_channels.is_empty() {
        let mut widths = vec![t.image]; // treat image as a flat input width
        widths.extend(&t.dense_widths);
        widths.push(t.classes);
        NetworkBuilder::mlp(&widths, t.seed)
            .build()
            .expect("mlp builds")
    } else {
        let blocks: Vec<(usize, usize)> = t.conv_channels.iter().map(|&c| (c, 1)).collect();
        NetworkBuilder::cnn(
            &[1, t.image, t.image],
            &blocks,
            &t.dense_widths,
            t.classes,
            t.seed,
        )
        .build()
        .expect("cnn builds")
    }
}

fn input_for(net: &Network, rng: &mut XorShiftRng) -> Tensor {
    Tensor::uniform(net.input_dims(), -1.0, 1.0, rng)
}

/// Plain dense forward through the unified engine.
fn dense_forward(net: &Network, x: &Tensor) -> Tensor {
    Engine::new(net)
        .run(InferenceRequest::single(x))
        .expect("dense forward")
        .into_single()
        .expect("single output")
}

/// A random mask that never empties a layer and never touches the output
/// layer.
fn random_mask(net: &Network, rng: &mut XorShiftRng) -> PruneMask {
    let mut mask = PruneMask::all_kept(net);
    let prunable = net.prunable_layers();
    for &li in &prunable[..prunable.len().saturating_sub(1)] {
        let units = net.layers()[li].unit_count().unwrap_or(0);
        for u in 0..units {
            if rng.next_uniform() < 0.35 && mask.kept_in_layer(li) > 1 {
                mask.prune(li, u).expect("in range");
            }
        }
    }
    mask
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn forward_is_deterministic(t in topology()) {
        let net = build(&t);
        let mut rng = XorShiftRng::new(t.seed ^ 0xF00D);
        let x = input_for(&net, &mut rng);
        let a = dense_forward(&net, &x);
        let b = dense_forward(&net, &x);
        prop_assert_eq!(a.as_slice(), b.as_slice());
        prop_assert_eq!(a.len(), t.classes);
    }

    #[test]
    fn masked_forward_matches_compacted(t in topology()) {
        let net = build(&t);
        let mut rng = XorShiftRng::new(t.seed ^ 0xBEEF);
        let mask = random_mask(&net, &mut rng);
        let compacted = net.compact(&mask).expect("compacts");
        let x = input_for(&net, &mut rng);
        let a = net.forward_masked_from(0, &x, &mask).expect("masked");
        let b = dense_forward(&compacted, &x);
        for (&u, &v) in a.as_slice().iter().zip(b.as_slice()) {
            prop_assert!((u - v).abs() < 1e-3, "{} vs {}", u, v);
        }
    }

    #[test]
    fn size_accounting_matches_compaction(t in topology()) {
        let net = build(&t);
        let mut rng = XorShiftRng::new(t.seed ^ 0xCAFE);
        let mask = random_mask(&net, &mut rng);
        let predicted = model_size(&net, &mask).expect("size").total();
        let compacted = net.compact(&mask).expect("compacts");
        prop_assert_eq!(predicted, compacted.param_count());
    }

    #[test]
    fn serialization_roundtrip_any_topology(t in topology()) {
        let net = build(&t);
        let json = network_to_json(&net).expect("serialize");
        let back = network_from_json(&json).expect("deserialize");
        prop_assert_eq!(&net, &back);
        let mut rng = XorShiftRng::new(t.seed ^ 0xD00D);
        let x = input_for(&net, &mut rng);
        let out_orig = dense_forward(&net, &x);
        let out_back = dense_forward(&back, &x);
        prop_assert_eq!(out_orig.as_slice(), out_back.as_slice());
    }

    #[test]
    fn tail_replay_exact_for_any_tail(t in topology(), tail in 1usize..4) {
        let net = build(&t);
        let mut rng = XorShiftRng::new(t.seed ^ 0xACE);
        // mask only within the chosen tail so replay covers all masked layers
        let tail_layers = net.prunable_tail(tail);
        let mut mask = PruneMask::all_kept(&net);
        for &li in &tail_layers[..tail_layers.len().saturating_sub(1)] {
            let units = net.layers()[li].unit_count().unwrap_or(0);
            for u in 0..units {
                if rng.next_uniform() < 0.3 && mask.kept_in_layer(li) > 1 {
                    mask.prune(li, u).expect("in range");
                }
            }
        }
        let start = tail_layers.first().copied().unwrap_or(0);
        let x = input_for(&net, &mut rng);
        let trace = net.forward_trace(&x).expect("trace");
        let full = net.forward_masked_from(0, &x, &mask).expect("masked");
        let replay = net
            .forward_masked_from(start, &trace[start], &mask)
            .expect("replay");
        for (&u, &v) in full.as_slice().iter().zip(replay.as_slice()) {
            prop_assert!((u - v).abs() < 1e-4);
        }
    }

    #[test]
    fn compute_skipping_matches_reference(t in topology()) {
        let net = build(&t);
        let mut rng = XorShiftRng::new(t.seed ^ 0x5EED);
        let mask = random_mask(&net, &mut rng);
        let x = input_for(&net, &mut rng);
        let fast = net.forward_masked_from(0, &x, &mask).expect("engine");
        let reference = net
            .forward_masked_reference_from(0, &x, &mask)
            .expect("reference");
        prop_assert_eq!(fast.dims(), reference.dims());
        for (&u, &v) in fast.as_slice().iter().zip(reference.as_slice()) {
            prop_assert!((u - v).abs() < 1e-5, "{} vs {}", u, v);
        }
        // predictions must be bit-compatible
        prop_assert_eq!(fast.argmax(), reference.argmax());
    }

    #[test]
    fn compute_skipping_exact_without_pruning(t in topology()) {
        let net = build(&t);
        let mut rng = XorShiftRng::new(t.seed ^ 0xFACE);
        let mask = PruneMask::all_kept(&net);
        let x = input_for(&net, &mut rng);
        let fast = net.forward_masked_from(0, &x, &mask).expect("engine");
        let plain = dense_forward(&net, &x);
        prop_assert_eq!(fast.as_slice(), plain.as_slice());
    }

    #[test]
    fn batched_forward_matches_serial(t in topology(), batch in 1usize..6) {
        let net = build(&t);
        let mut rng = XorShiftRng::new(t.seed ^ 0xB00C);
        let mask = random_mask(&net, &mut rng);
        let inputs: Vec<Tensor> = (0..batch).map(|_| input_for(&net, &mut rng)).collect();
        let plain = Engine::new(&net)
            .run(InferenceRequest::new(&inputs))
            .expect("batch")
            .into_outputs();
        let masked = Engine::new(&net)
            .run(InferenceRequest::new(&inputs).masked(&mask))
            .expect("masked batch")
            .into_outputs();
        for (i, x) in inputs.iter().enumerate() {
            prop_assert_eq!(dense_forward(&net, x).as_slice(), plain[i].as_slice());
            prop_assert_eq!(
                net.forward_masked_from(0, x, &mask).expect("masked").as_slice(),
                masked[i].as_slice()
            );
        }
    }

    #[test]
    fn prunable_tail_is_suffix(t in topology(), n in 0usize..8) {
        let net = build(&t);
        let all = net.prunable_layers();
        let tail = net.prunable_tail(n);
        prop_assert!(tail.len() <= all.len().min(n));
        // tail is exactly the last `tail.len()` entries of `all`
        prop_assert_eq!(&tail[..], &all[all.len() - tail.len()..]);
    }
}
