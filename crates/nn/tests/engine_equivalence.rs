//! Property-based equivalence between the unified [`Engine`] strategies,
//! over randomized network topologies.
//!
//! The engine is routing, never numerics: every strategy must stay pinned
//! to the zero-after-dense reference semantics
//! ([`Network::forward_masked_reference_from`]), batching a request must be
//! bitwise identical to running its samples one at a time, and the plan
//! path must be bitwise identical to executing the compiled plan directly —
//! so deployed devices keep their ε guarantees across engine versions.

use capnn_nn::{
    Engine, ExecStrategy, InferenceRequest, Network, NetworkBuilder, Precision, PruneMask,
};
use capnn_tensor::{Tensor, XorShiftRng};
use proptest::prelude::*;

/// A small random-topology description proptest can shrink.
#[derive(Debug, Clone)]
struct Topology {
    conv_channels: Vec<usize>,
    dense_widths: Vec<usize>,
    classes: usize,
    image: usize,
    seed: u64,
}

fn topology() -> impl Strategy<Value = Topology> {
    (
        prop::collection::vec(2usize..6, 0..3),
        prop::collection::vec(4usize..12, 1..3),
        2usize..5,
        prop::sample::select(vec![8usize, 16]),
        any::<u64>(),
    )
        .prop_map(
            |(conv_channels, dense_widths, classes, image, seed)| Topology {
                conv_channels,
                dense_widths,
                classes,
                image,
                seed,
            },
        )
}

fn build(t: &Topology) -> Network {
    if t.conv_channels.is_empty() {
        let mut widths = vec![t.image]; // treat image as a flat input width
        widths.extend(&t.dense_widths);
        widths.push(t.classes);
        NetworkBuilder::mlp(&widths, t.seed)
            .build()
            .expect("mlp builds")
    } else {
        let blocks: Vec<(usize, usize)> = t.conv_channels.iter().map(|&c| (c, 1)).collect();
        NetworkBuilder::cnn(
            &[1, t.image, t.image],
            &blocks,
            &t.dense_widths,
            t.classes,
            t.seed,
        )
        .build()
        .expect("cnn builds")
    }
}

fn input_for(net: &Network, rng: &mut XorShiftRng) -> Tensor {
    Tensor::uniform(net.input_dims(), -1.0, 1.0, rng)
}

/// A random mask that never empties a layer and never touches the output
/// layer.
fn random_mask(net: &Network, rng: &mut XorShiftRng) -> PruneMask {
    let mut mask = PruneMask::all_kept(net);
    let prunable = net.prunable_layers();
    for &li in &prunable[..prunable.len().saturating_sub(1)] {
        let units = net.layers()[li].unit_count().unwrap_or(0);
        for u in 0..units {
            if rng.next_uniform() < 0.35 && mask.kept_in_layer(li) > 1 {
                mask.prune(li, u).expect("in range");
            }
        }
    }
    mask
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dense_strategy_matches_reference_and_batches_bitwise(t in topology(), batch in 1usize..5) {
        let net = build(&t);
        let mut rng = XorShiftRng::new(t.seed ^ 0xE1);
        let inputs: Vec<Tensor> = (0..batch).map(|_| input_for(&net, &mut rng)).collect();
        let batched = Engine::new(&net)
            .run(InferenceRequest::new(&inputs))
            .expect("engine")
            .into_outputs();
        prop_assert_eq!(batched.len(), inputs.len());
        for (x, b) in inputs.iter().zip(&batched) {
            // batching never perturbs a sample
            let single = Engine::new(&net)
                .run(InferenceRequest::single(x))
                .expect("engine")
                .into_single()
                .expect("single output");
            prop_assert_eq!(single.as_slice(), b.as_slice());
            // dense == zero-after-dense reference under an all-kept mask
            let reference = net
                .forward_masked_reference_from(0, x, &PruneMask::all_kept(&net))
                .expect("reference");
            prop_assert_eq!(reference.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn masked_skip_strategy_batches_bitwise_and_tracks_reference(
        t in topology(),
        batch in 1usize..5,
    ) {
        let net = build(&t);
        let mut rng = XorShiftRng::new(t.seed ^ 0xE2);
        let mask = random_mask(&net, &mut rng);
        let inputs: Vec<Tensor> = (0..batch).map(|_| input_for(&net, &mut rng)).collect();
        let batched = Engine::new(&net)
            .run(InferenceRequest::new(&inputs).masked(&mask))
            .expect("engine")
            .into_outputs();
        for (x, b) in inputs.iter().zip(&batched) {
            // the skip engine's public per-sample entrypoint, bitwise
            let single = net.forward_masked_from(0, x, &mask).expect("masked");
            prop_assert_eq!(single.as_slice(), b.as_slice());
            // and the serving guarantee against the reference semantics
            let reference = net
                .forward_masked_reference_from(0, x, &mask)
                .expect("reference");
            for (&u, &v) in b.as_slice().iter().zip(reference.as_slice()) {
                prop_assert!((u - v).abs() < 1e-5, "{} vs {}", u, v);
            }
            prop_assert_eq!(b.argmax(), reference.argmax());
        }
    }

    #[test]
    fn reference_strategy_matches_zero_after_dense(t in topology()) {
        let net = build(&t);
        let mut rng = XorShiftRng::new(t.seed ^ 0xE3);
        let mask = random_mask(&net, &mut rng);
        let x = input_for(&net, &mut rng);
        let direct = net
            .forward_masked_reference_from(0, &x, &mask)
            .expect("reference");
        let unified = Engine::new(&net)
            .run(
                InferenceRequest::single(&x)
                    .masked(&mask)
                    .strategy(ExecStrategy::Reference),
            )
            .expect("engine")
            .into_single()
            .expect("single output");
        prop_assert_eq!(direct.as_slice(), unified.as_slice());
    }

    #[test]
    fn compiled_plan_strategy_matches_plan_batch(t in topology(), batch in 1usize..5) {
        let net = build(&t);
        let mut rng = XorShiftRng::new(t.seed ^ 0xE4);
        let mask = random_mask(&net, &mut rng);
        let inputs: Vec<Tensor> = (0..batch).map(|_| input_for(&net, &mut rng)).collect();
        let plan = net.compile(&mask).expect("compiles");
        let legacy = plan.forward_batch(&inputs).expect("legacy plan");
        let unified = Engine::new(&net)
            .run(
                InferenceRequest::new(&inputs)
                    .masked(&mask)
                    .strategy(ExecStrategy::CompiledPlan),
            )
            .expect("engine")
            .into_outputs();
        for (a, b) in legacy.iter().zip(&unified) {
            prop_assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    /// An int8 request through the engine is bitwise identical to running
    /// the int8-compiled plan directly — the engine adds routing and
    /// caching, never numerics.
    #[test]
    fn int8_request_matches_int8_plan_batch(t in topology(), batch in 1usize..5) {
        let net = build(&t);
        let mut rng = XorShiftRng::new(t.seed ^ 0xE6);
        let mask = random_mask(&net, &mut rng);
        let inputs: Vec<Tensor> = (0..batch).map(|_| input_for(&net, &mut rng)).collect();
        let plan = net
            .compile_with_precision(&mask, Precision::Int8)
            .expect("compiles");
        let direct = plan.forward_batch(&inputs).expect("direct plan");
        let resp = Engine::new(&net)
            .run(
                InferenceRequest::new(&inputs)
                    .masked(&mask)
                    .precision(Precision::Int8),
            )
            .expect("engine");
        prop_assert_eq!(resp.strategy(), ExecStrategy::CompiledPlan);
        prop_assert_eq!(resp.precision(), Precision::Int8);
        for (a, b) in direct.iter().zip(resp.outputs()) {
            prop_assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn strategies_agree_on_argmax(t in topology()) {
        let net = build(&t);
        let mut rng = XorShiftRng::new(t.seed ^ 0xE5);
        let mask = random_mask(&net, &mut rng);
        let x = input_for(&net, &mut rng);
        let mut engine = Engine::new(&net);
        let mut preds = Vec::new();
        for strategy in [
            ExecStrategy::MaskedSkip,
            ExecStrategy::Reference,
            ExecStrategy::CompiledPlan,
        ] {
            let resp = engine
                .run(InferenceRequest::single(&x).masked(&mask).strategy(strategy))
                .expect("engine");
            preds.push(resp.argmaxes()[0]);
        }
        prop_assert_eq!(preds[0], preds[1]);
        prop_assert_eq!(preds[1], preds[2]);
    }
}
