//! Versioned (de)serialization of networks and prune masks.
//!
//! The cloud/device split moves models around: the cloud stores the trained
//! network, ships compacted personalized models to devices, and may persist
//! prune masks for re-use. This module wraps the serde representation in a
//! small versioned envelope so stored artifacts fail loudly (rather than
//! garbling) when the format evolves.

use crate::error::NnError;
use crate::mask::PruneMask;
use crate::network::Network;
use crate::plan::CompiledPlan;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Current on-disk format version.
///
/// Version history: 1 — initial envelope; 2 — compiled-plan conv steps
/// store register-tile `panels` (+ `fused_relu`) instead of row-major
/// `weights`; 3 — plans carry a `precision` tag and conv/dense steps may
/// store int8 quantized panels with per-channel scales; 4 — plan GEMM
/// steps reference a by-value `kernels` table (panels + bias + int8 twin
/// per entry) instead of embedding their buffers inline, mirroring the
/// in-memory `Arc`-shared kernel layout; 5 — plans carry a `sparsity`
/// tag and kernels may store N:M-compressed value+index panels (with
/// their own int8 twin) instead of dense register tiles.
pub const FORMAT_VERSION: u32 = 5;

#[derive(Debug, Serialize, Deserialize)]
struct Envelope<T> {
    format: String,
    version: u32,
    payload: T,
}

fn to_envelope<T>(kind: &str, payload: T) -> Envelope<T> {
    Envelope {
        format: format!("capnn-{kind}"),
        version: FORMAT_VERSION,
        payload,
    }
}

/// Parses a versioned envelope, checking `format` and `version` *before*
/// decoding the payload: the probe pass keeps the payload as a raw JSON
/// value, so an artifact written by an older build fails with the typed
/// [`NnError::UnsupportedFormatVersion`] (naming found and supported
/// versions) instead of whatever payload field mismatch the old schema
/// trips over first.
fn parse_envelope<T: serde::de::DeserializeOwned>(kind: &str, json: &str) -> Result<T, NnError> {
    let probe: Envelope<serde_json::Value> =
        serde_json::from_str(json).map_err(|e| NnError::Config(format!("parse {kind}: {e}")))?;
    let expected = format!("capnn-{kind}");
    if probe.format != expected {
        return Err(NnError::Config(format!(
            "expected a {expected} artifact, found {}",
            probe.format
        )));
    }
    if probe.version != FORMAT_VERSION {
        return Err(NnError::UnsupportedFormatVersion {
            kind: expected,
            found: probe.version,
            supported: FORMAT_VERSION,
        });
    }
    serde_json::from_value(probe.payload).map_err(|e| NnError::Config(format!("parse {kind}: {e}")))
}

/// Serializes a network to a versioned JSON string.
///
/// # Errors
///
/// Returns [`NnError::Config`] if serialization fails (practically
/// impossible for in-memory networks).
pub fn network_to_json(net: &Network) -> Result<String, NnError> {
    serde_json::to_string(&to_envelope("network", net))
        .map_err(|e| NnError::Config(format!("serialize network: {e}")))
}

/// Parses a network from [`network_to_json`] output.
///
/// # Errors
///
/// Returns [`NnError::Config`] on malformed JSON or wrong artifact kind,
/// and [`NnError::UnsupportedFormatVersion`] if the envelope was written
/// by a different format version.
pub fn network_from_json(json: &str) -> Result<Network, NnError> {
    parse_envelope("network", json)
}

/// Writes a network to a file (creating parent directories).
///
/// # Errors
///
/// Returns [`NnError::Config`] on serialization or I/O failure.
pub fn save_network(net: &Network, path: impl AsRef<Path>) -> Result<(), NnError> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)
            .map_err(|e| NnError::Config(format!("create {}: {e}", dir.display())))?;
    }
    std::fs::write(path, network_to_json(net)?)
        .map_err(|e| NnError::Config(format!("write {}: {e}", path.display())))
}

/// Reads a network written by [`save_network`].
///
/// # Errors
///
/// Returns [`NnError::Config`] on I/O or format failure.
pub fn load_network(path: impl AsRef<Path>) -> Result<Network, NnError> {
    let path = path.as_ref();
    let json = std::fs::read_to_string(path)
        .map_err(|e| NnError::Config(format!("read {}: {e}", path.display())))?;
    network_from_json(&json)
}

/// Serializes a prune mask to a versioned JSON string.
///
/// # Errors
///
/// Returns [`NnError::Config`] if serialization fails.
pub fn mask_to_json(mask: &PruneMask) -> Result<String, NnError> {
    serde_json::to_string(&to_envelope("mask", mask))
        .map_err(|e| NnError::Config(format!("serialize mask: {e}")))
}

/// Parses a prune mask from [`mask_to_json`] output.
///
/// # Errors
///
/// Returns [`NnError::Config`] on malformed JSON or wrong artifact kind,
/// and [`NnError::UnsupportedFormatVersion`] if the envelope was written
/// by a different format version.
pub fn mask_from_json(json: &str) -> Result<PruneMask, NnError> {
    parse_envelope("mask", json)
}

/// Serializes a compiled plan to a versioned JSON string, so a device can
/// persist its packed personalized model across restarts without
/// re-compiling.
///
/// # Errors
///
/// Returns [`NnError::Config`] if serialization fails.
pub fn plan_to_json(plan: &CompiledPlan) -> Result<String, NnError> {
    serde_json::to_string(&to_envelope("plan", plan.to_wire()))
        .map_err(|e| NnError::Config(format!("serialize plan: {e}")))
}

/// Parses a compiled plan from [`plan_to_json`] output.
///
/// # Errors
///
/// Returns [`NnError::Config`] on malformed JSON or wrong artifact kind,
/// and [`NnError::UnsupportedFormatVersion`] if the envelope was written
/// by a different format version.
pub fn plan_from_json(json: &str) -> Result<CompiledPlan, NnError> {
    CompiledPlan::from_wire(parse_envelope("plan", json)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use capnn_tensor::Tensor;

    fn net() -> Network {
        NetworkBuilder::cnn(&[1, 8, 8], &[(4, 1)], &[10], 3, 5)
            .build()
            .unwrap()
    }

    #[test]
    fn network_roundtrip_preserves_function() {
        let n = net();
        let json = network_to_json(&n).unwrap();
        let back = network_from_json(&json).unwrap();
        assert_eq!(n, back);
        let x = Tensor::ones(&[1, 8, 8]);
        assert_eq!(
            n.forward_impl(&x).unwrap().as_slice(),
            back.forward_impl(&x).unwrap().as_slice()
        );
    }

    #[test]
    fn mask_roundtrip() {
        let n = net();
        let mut mask = PruneMask::all_kept(&n);
        mask.prune(0, 1).unwrap();
        let back = mask_from_json(&mask_to_json(&mask).unwrap()).unwrap();
        assert_eq!(mask, back);
    }

    #[test]
    fn plan_roundtrip_preserves_function() {
        let n = net();
        let mut mask = PruneMask::all_kept(&n);
        mask.prune(0, 1).unwrap();
        let plan = n.compile(&mask).unwrap();
        let back = plan_from_json(&plan_to_json(&plan).unwrap()).unwrap();
        assert_eq!(plan, back);
        let x = Tensor::ones(&[1, 8, 8]);
        assert_eq!(
            plan.forward(&x).unwrap().as_slice(),
            back.forward(&x).unwrap().as_slice()
        );
    }

    #[test]
    fn nm_plan_roundtrip_preserves_function() {
        use crate::plan::{CompiledPlan, Precision, Sparsity};
        let n = net();
        let mut mask = PruneMask::all_kept(&n);
        mask.prune(0, 1).unwrap();
        let plan =
            CompiledPlan::compile_sparse(&n, &mask, Precision::Int8, Sparsity::NM(2, 4), None)
                .unwrap();
        let back = plan_from_json(&plan_to_json(&plan).unwrap()).unwrap();
        assert_eq!(plan, back);
        assert_eq!(back.sparsity(), Sparsity::NM(2, 4));
        let x = Tensor::ones(&[1, 8, 8]);
        assert_eq!(
            plan.forward(&x).unwrap().as_slice(),
            back.forward(&x).unwrap().as_slice()
        );
    }

    #[test]
    fn kind_confusion_rejected() {
        let n = net();
        let mask_json = mask_to_json(&PruneMask::all_kept(&n)).unwrap();
        assert!(network_from_json(&mask_json).is_err());
        let net_json = network_to_json(&n).unwrap();
        assert!(mask_from_json(&net_json).is_err());
    }

    #[test]
    fn version_mismatch_rejected() {
        let n = net();
        let json = network_to_json(&n)
            .unwrap()
            .replace(&format!("\"version\":{FORMAT_VERSION}"), "\"version\":99");
        let err = network_from_json(&json).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn old_version_gives_typed_error_before_payload_decode() {
        // An old artifact has a payload schema this build cannot decode.
        // The probe-first parse must reject on the version number alone —
        // exercised here with a payload that would itself fail to decode.
        for found in [1u32, 2, 3, 4] {
            let json = format!(
                "{{\"format\":\"capnn-plan\",\"version\":{found},\"payload\":{{\"legacy\":true}}}}"
            );
            match plan_from_json(&json).unwrap_err() {
                NnError::UnsupportedFormatVersion {
                    kind,
                    found: f,
                    supported,
                } => {
                    assert_eq!(kind, "capnn-plan");
                    assert_eq!(f, found);
                    assert_eq!(supported, FORMAT_VERSION);
                }
                other => panic!("expected UnsupportedFormatVersion, got {other:?}"),
            }
        }
        // wrong-kind errors still win over version errors (format checked
        // first, so the message names the artifact confusion)
        let json = "{\"format\":\"capnn-mask\",\"version\":1,\"payload\":null}";
        assert!(matches!(
            network_from_json(json).unwrap_err(),
            NnError::Config(_)
        ));
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(network_from_json("{not json").is_err());
        assert!(mask_from_json("42").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let n = net();
        let dir = std::env::temp_dir().join("capnn-io-test");
        let path = dir.join("model.json");
        save_network(&n, &path).unwrap();
        let back = load_network(&path).unwrap();
        assert_eq!(n, back);
        let _ = std::fs::remove_dir_all(&dir);
        assert!(load_network(dir.join("missing.json")).is_err());
    }
}
